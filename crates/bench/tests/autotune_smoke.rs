//! Smoke test for the two autotuners the evaluation leans on: the
//! baseline (vendor-library stand-in) sweep in `cypress-baselines` and
//! the runtime's space tuner, both on GEMM 512 on the paper's H100.
//!
//! The baseline sweep must be invariant to sharing one [`Simulator`]
//! across candidates (the `autotune_with` path the figures use), and
//! the two tuners' winners must land in the same performance regime —
//! they time different schedule encodings of the same computation
//! through the same simulator.

use cypress_baselines::{autotune, autotune_with, cublas, hand};
use cypress_core::kernels::gemm;
use cypress_core::Shape;
use cypress_runtime::{Program, Session};
use cypress_sim::{MachineConfig, Simulator};
use std::sync::Arc;

const N: usize = 512;

/// The cuBLAS-style candidate list at 512^3 (mirrors `cublas::gemm`).
fn cublas_candidates() -> Vec<cypress_sim::Kernel> {
    [
        (128, 256, 2),
        (256, 128, 2),
        (128, 128, 2),
        (128, 128, 1),
        (64, 256, 1),
    ]
    .into_iter()
    .map(|(tm, tn, wgs)| {
        let s = hand::GemmSchedule {
            tm,
            tn,
            wgs,
            ..hand::GemmSchedule::expert()
        };
        hand::gemm_kernel("cublas_gemm", 1, N, N, N, s)
    })
    .collect()
}

#[test]
fn baseline_autotune_shares_one_simulator_and_tracks_the_runtime_tuner() {
    let machine = MachineConfig::h100_sxm5();
    let sim = Simulator::new(machine.clone());

    // Sharing a simulator across candidates must not change the winner.
    let owned = autotune(&machine, cublas_candidates());
    let shared = autotune_with(&sim, cublas_candidates());
    let owned_cycles = sim.run_timing(&owned).unwrap().cycles;
    let shared_cycles = sim.run_timing(&shared).unwrap().cycles;
    assert_eq!(
        owned_cycles, shared_cycles,
        "winner depends on simulator sharing"
    );

    // The public entry point goes through the shared-simulator path.
    let public = cublas::gemm_with(N, N, N, &sim);
    assert_eq!(sim.run_timing(&public).unwrap().cycles, shared_cycles);

    // The runtime tuner sweeps the paper's GEMM mapping space on the
    // same shape; its winner and the baseline's must be in the same
    // regime (same simulator, same computation, different schedules).
    let program =
        Program::from_space(Arc::new(gemm::GemmSpace), Shape::of(&[N, N, N]), &machine).unwrap();
    let mut session = Session::new(machine);
    let tuned = session.autotune(&program).unwrap();
    assert!(tuned.tuned_cycles > 0.0);
    let ratio = tuned.tuned_cycles / shared_cycles;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "tuner winner {} vs baseline winner {shared_cycles} cycles (ratio {ratio})",
        tuned.tuned_cycles
    );
}
