//! Criterion benches for the compiler itself: per-pass cost on the GEMM
//! program (the paper's compiler is offline, but pass cost still matters
//! for the mapping-exploration workflow of §5.4).

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm;
use cypress_core::passes::{copyelim, depan, vectorize};
use cypress_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let (reg, mapping, args) =
        gemm::build(8192, 8192, 8192, &machine).expect("paper kernel builds");
    let mut g = c.benchmark_group("compiler");

    g.bench_function("depan", |b| {
        b.iter(|| depan::analyze(&reg, &mapping, "gemm", &args).unwrap())
    });
    g.bench_function("depan_vectorize", |b| {
        b.iter(|| {
            let mut p = depan::analyze(&reg, &mapping, "gemm", &args).unwrap();
            vectorize::run(&mut p);
            vectorize::normalize_ranks(&mut p);
            p
        })
    });
    g.bench_function("depan_vectorize_copyelim", |b| {
        b.iter(|| {
            let mut p = depan::analyze(&reg, &mapping, "gemm", &args).unwrap();
            vectorize::run(&mut p);
            vectorize::normalize_ranks(&mut p);
            copyelim::run(&mut p, copyelim::Options::default()).unwrap()
        })
    });
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    g.bench_function("full_compile", |b| {
        b.iter(|| compiler.compile(&reg, &mapping, "gemm", &args).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
