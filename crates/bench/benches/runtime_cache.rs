//! Cold-compile vs cache-hit cost of the runtime's kernel cache: a cold
//! `Session::compile` runs the full Fig. 6 pass pipeline; a warm one is a
//! fingerprint hash plus a map lookup. The gap is the per-launch compile
//! cost the runtime removes from steady-state serving.

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_core::kernels::gemm;
use cypress_runtime::{Program, Session};
use cypress_sim::MachineConfig;

fn program(machine: &MachineConfig) -> Program {
    Program::from_parts(
        gemm::build(4096, 4096, 4096, machine).expect("paper kernel builds"),
        "gemm",
    )
}

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let mut g = c.benchmark_group("runtime_cache");
    g.sample_size(10);

    g.bench_function("cold_compile", |b| {
        b.iter(|| {
            // Fresh session per iteration: every compile is a miss.
            let mut session = Session::new(machine.clone());
            session.compile(&program(&machine)).unwrap()
        })
    });

    let mut warm = Session::new(machine.clone());
    warm.compile(&program(&machine)).unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| warm.compile(&program(&machine)).unwrap())
    });

    // The hit rate a steady-state serving loop sees.
    let stats = warm.cache_stats();
    println!(
        "  cache: {} hits / {} misses ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
