//! Host-side cost of graph timing under both schedule policies, plus the
//! simulated speedup multi-stream scheduling buys. The serial and
//! concurrent runs share one warm session, so the numbers isolate the
//! scheduler itself: solo kernel timing is simulated once per distinct
//! compiled kernel and the fluid contention pass is pure arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_bench::{overlap_graph, OVERLAP_WIDTH};
use cypress_runtime::{SchedulePolicy, Session};
use cypress_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let graph = overlap_graph(OVERLAP_WIDTH, 512, &machine);
    let mut g = c.benchmark_group("graph_overlap");
    g.sample_size(10);

    let mut session = Session::new(machine.clone());
    session.launch_timing(&graph).unwrap(); // warm the kernel cache
    g.bench_function("launch_timing_serial", |b| {
        b.iter(|| session.launch_timing(&graph).unwrap())
    });

    let mut concurrent = Session::new(machine).with_policy(SchedulePolicy::Concurrent {
        streams: OVERLAP_WIDTH,
    });
    concurrent.launch_timing(&graph).unwrap();
    g.bench_function("launch_timing_concurrent8", |b| {
        b.iter(|| concurrent.launch_timing(&graph).unwrap())
    });

    let serial_report = session.launch_timing(&graph).unwrap();
    let conc_report = concurrent.launch_timing(&graph).unwrap();
    println!(
        "  simulated: serial {:.0} cycles, 8 streams {:.0} cycles ({:.2}x overlap, critical path {:.0})",
        serial_report.makespan,
        conc_report.makespan,
        conc_report.overlap_speedup(),
        conc_report.critical_path
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
