//! Criterion benches for Fig. 13a-13d: wall-clock cost of compiling each
//! Cypress program and simulating the resulting schedule (one size per
//! variant; the `figures` binary sweeps the full size range).

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_bench::{fig13a, fig13b, fig13c, fig13d};
use cypress_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("13a_gemm", |b| b.iter(|| fig13a(&machine)));
    g.bench_function("13b_batched", |b| b.iter(|| fig13b(&machine)));
    g.bench_function("13c_dual", |b| b.iter(|| fig13c(&machine)));
    g.bench_function("13d_reduction", |b| b.iter(|| fig13d(&machine)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
