//! Host-side cost of mapping autotuning, and proof that a tuned session
//! amortizes: the first `autotune` call compiles and times every
//! candidate of the kernel's mapping space; every later call (and every
//! `MappingPolicy::Autotune` launch) is served from the session's
//! tuning table and the fingerprint-keyed kernel cache. The `--smoke`
//! CI run exercises the full sweep once at a small problem size.

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_core::kernels::gemm;
use cypress_core::kernels::space::Shape;
use cypress_runtime::{MappingPolicy, Program, Session, TunerBudget};
use cypress_sim::MachineConfig;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    // Small enough for a smoke sweep, big enough that the H100 default
    // mapping (128x256 tiles) applies.
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[512, 512, 512]),
        &machine,
    )
    .expect("gemm builds at the hand-tuned default");

    let mut g = c.benchmark_group("autotune");
    g.sample_size(10);

    // Cold: a fresh session per iteration sweeps the whole space, one
    // candidate at a time.
    g.bench_function("gemm_512_cold_sweep", |b| {
        b.iter(|| {
            let mut session = Session::new(machine.clone()).with_parallelism(1);
            session
                .autotune(&program)
                .expect("space candidates compile")
        })
    });

    // Cold, parallel: the same sweep with candidates compiled and timed
    // on the session's worker pool (the winner is identical — picked by
    // candidate index, not completion order).
    let workers = cypress_sim::par::available();
    g.bench_function(format!("gemm_512_cold_sweep_parallel_{workers}w"), |b| {
        b.iter(|| {
            let mut session = Session::new(machine.clone()).with_parallelism(workers);
            session
                .autotune(&program)
                .expect("space candidates compile")
        })
    });

    let mut warm = Session::new(machine.clone()).with_mapping_policy(MappingPolicy::Autotune);
    let tuned = warm.autotune(&program).expect("space candidates compile");

    // Cold, guided: the analytical cost model ranks the space first and
    // only the predicted top half is compiled and timed
    // (`TunerBudget::TopK`; the winner stays within 5% of exhaustive —
    // gated in `check_figures`).
    let top_k = (tuned.candidates / 2).max(1);
    g.bench_function(format!("gemm_512_cold_sweep_guided_top{top_k}"), |b| {
        b.iter(|| {
            let mut session = Session::new(machine.clone()).with_parallelism(1);
            session
                .autotune_with(&program, TunerBudget::TopK(top_k))
                .expect("guided candidates compile")
        })
    });

    // Warm: the tuning table answers without touching the compiler.
    g.bench_function("gemm_512_table_hit", |b| {
        b.iter(|| warm.autotune(&program).expect("served from the table"))
    });

    // Tuned launch: compile is a cache hit, timing reuses the winner.
    g.bench_function("gemm_512_tuned_launch", |b| {
        b.iter(|| warm.run_timing(&program).expect("tuned launch times"))
    });

    println!(
        "  tuned mapping: {} ({} candidates, {:.2}x over hand-tuned)",
        tuned.config.label(),
        tuned.candidates,
        tuned.speedup()
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
