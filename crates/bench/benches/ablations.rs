//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! pipeline depth, warp specialization on/off, and copy-elimination
//! pattern ordering — each also printed as simulated GEMM cycles, the
//! number that shows the effect (criterion itself measures host time).

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm::{self, GemmConfig};
use cypress_sim::{MachineConfig, Simulator};

fn simulated_cycles(machine: &MachineConfig, cfg: GemmConfig, spill_first: bool) -> f64 {
    let (reg, mapping, args) = gemm::build_with(4096, 4096, 4096, cfg).unwrap();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        spill_first,
        dump_ir: false,
    });
    let compiled = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
    Simulator::new(machine.clone())
        .run_timing(&compiled.kernel)
        .unwrap()
        .cycles
}

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for pipe in [1usize, 2, 3] {
        let cfg = GemmConfig {
            pipeline: pipe,
            ..GemmConfig::h100()
        };
        g.bench_function(format!("pipeline_depth_{pipe}"), |b| {
            b.iter(|| simulated_cycles(&machine, cfg, true))
        });
    }
    let no_ws = GemmConfig {
        warpspecialize: false,
        ..GemmConfig::h100()
    };
    g.bench_function("no_warp_specialization", |b| {
        b.iter(|| simulated_cycles(&machine, no_ws, true))
    });
    g.bench_function("spill_patterns_last", |b| {
        b.iter(|| simulated_cycles(&machine, GemmConfig::h100(), false))
    });
    g.finish();

    println!("\nablation: simulated GEMM 4096^3 cycles");
    for pipe in [1usize, 2, 3] {
        let cfg = GemmConfig {
            pipeline: pipe,
            ..GemmConfig::h100()
        };
        println!(
            "  pipeline={pipe}: {:.0}",
            simulated_cycles(&machine, cfg, true)
        );
    }
    println!(
        "  no warp specialization: {:.0}",
        simulated_cycles(&machine, no_ws, true)
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
