//! Criterion bench for Fig. 14: the full attention comparison sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_bench::fig14;
use cypress_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::h100_sxm5();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("attention_sweep", |b| b.iter(|| fig14(&machine)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
