//! Host-side throughput of the functional engine: the fast resolved-view
//! data path against the retained scalar reference interpreter
//! (`--features scalar-oracle` path of `cypress-sim`), and the parallel
//! graph executor against the serial walk. The `--smoke` CI run proves
//! both paths still execute; full runs track the speedups the data-path
//! rewrite is responsible for.

use criterion::{criterion_group, criterion_main, Criterion};
use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm;
use cypress_runtime::{Binding, Program, Session, TaskGraph};
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const D: usize = 128;
const WIDTH: usize = 8;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::test_gpu();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let (reg, mapping, args) = gemm::build(D, D, D, &machine).expect("gemm builds");
    let kernel = compiler
        .compile(&reg, &mapping, "gemm", &args)
        .expect("gemm compiles")
        .kernel;
    let sim = Simulator::new(machine.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let a = Tensor::random(DType::F16, &[D, D], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[D, D], &mut rng, -1.0, 1.0);
    let out = Tensor::zeros(DType::F16, &[D, D]);

    let mut g = c.benchmark_group("functional_throughput");
    g.sample_size(10);

    g.bench_function(format!("gemm_{D}_fast"), |bch| {
        bch.iter(|| {
            sim.run_functional(&kernel, vec![out.clone(), a.clone(), b.clone()])
                .expect("functional gemm runs")
        })
    });
    g.bench_function(format!("gemm_{D}_scalar_oracle"), |bch| {
        bch.iter(|| {
            sim.run_functional_scalar(&kernel, vec![out.clone(), a.clone(), b.clone()])
                .expect("scalar functional gemm runs")
        })
    });

    // A fan-out graph of independent GEMMs: serial executor vs the
    // scoped worker pool.
    let program = Program::from_parts(gemm::build(D, D, D, &machine).expect("gemm builds"), "gemm");
    let mut graph = TaskGraph::new();
    let mut inputs = HashMap::new();
    for i in 0..WIDTH {
        graph
            .add_node(
                &format!("gemm{i}"),
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::External(format!("A{i}")),
                    Binding::External(format!("B{i}")),
                ],
            )
            .expect("independent nodes insert");
        for name in [format!("A{i}"), format!("B{i}")] {
            inputs.insert(
                name,
                Tensor::random(DType::F16, &[D, D], &mut rng, -1.0, 1.0),
            );
        }
    }
    let mut serial = Session::new(machine.clone()).with_parallelism(1);
    g.bench_function(format!("graph_{WIDTH}x{D}_serial"), |bch| {
        bch.iter(|| {
            serial
                .launch_functional(&graph, &inputs)
                .expect("serial graph runs")
        })
    });
    let workers = cypress_sim::par::available();
    let mut parallel = Session::new(machine.clone()).with_parallelism(workers);
    g.bench_function(format!("graph_{WIDTH}x{D}_parallel_{workers}w"), |bch| {
        bch.iter(|| {
            parallel
                .launch_functional(&graph, &inputs)
                .expect("parallel graph runs")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
