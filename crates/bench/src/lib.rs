//! Benchmark harness regenerating every table and figure of the Cypress
//! evaluation (paper §5). Each `figNN` function returns the series the
//! paper plots; the `figures` binary prints them side by side with the
//! paper's reported ratios.

use cypress_baselines::{cublas, cudnn, fa3, thunderkittens, triton};
use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::space::{MappingSpace, Shape};
use cypress_core::kernels::{
    attention, batched, chain, dual_gemm, gemm, gemm_reduction, reduction,
};
use cypress_runtime::{
    Binding, FaultPlan, FaultPolicy, FusionPolicy, PlacementPolicy, Program, SchedulePolicy,
    Session, TaskGraph, TunerBudget,
};
use cypress_sim::{Kernel, MachineConfig, Simulator};
use std::sync::Arc;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name (Cypress, Triton, cuBLAS, ...).
    pub system: String,
    /// Problem size label (M=N=K or sequence length).
    pub size: usize,
    /// Measured throughput.
    pub tflops: f64,
}

/// Simulate `kernel` and convert to TFLOP/s for `flops`.
fn measure(machine: &MachineConfig, kernel: &Kernel, flops: f64) -> f64 {
    let sim = Simulator::new(machine.clone());
    let report = sim.run_timing(kernel).expect("kernel must simulate");
    report.tflops_for(flops)
}

fn compile_cypress(
    machine: &MachineConfig,
    reg: &cypress_core::TaskRegistry,
    mapping: &cypress_core::MappingSpec,
    name: &str,
    args: &[cypress_core::EntryArg],
) -> Kernel {
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    compiler
        .compile(reg, mapping, name, args)
        .expect("evaluation kernels compile")
        .kernel
}

/// The evaluation sizes of Fig. 13.
pub const GEMM_SIZES: [usize; 3] = [4096, 6144, 8192];
/// The evaluation sequence lengths of Fig. 14.
pub const SEQ_LENS: [usize; 4] = [2048, 4096, 8192, 16384];
/// Heads used for Fig. 14 (batch x heads at head dim 128).
pub const HEADS: usize = 16;
/// Head dimension of Fig. 14.
pub const HEAD_DIM: usize = 128;

/// Fig. 13a: GEMM — Cypress vs Triton vs cuBLAS.
#[must_use]
pub fn fig13a(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let sim = Simulator::new(machine.clone());
    for size in GEMM_SIZES {
        let fl = gemm::flops(size, size, size);
        let (reg, mapping, args) =
            gemm::build(size, size, size, machine).expect("paper kernel builds");
        let cy = compile_cypress(machine, &reg, &mapping, "gemm", &args);
        rows.push(Row {
            system: "Cypress".into(),
            size,
            tflops: measure(machine, &cy, fl),
        });
        let tr = triton::gemm(size, size, size);
        rows.push(Row {
            system: "Triton".into(),
            size,
            tflops: measure(machine, &tr, fl),
        });
        let cb = cublas::gemm_with(size, size, size, &sim);
        rows.push(Row {
            system: "cuBLAS".into(),
            size,
            tflops: measure(machine, &cb, fl),
        });
    }
    rows
}

/// Fig. 13b: Batched-GEMM (L = 4).
#[must_use]
pub fn fig13b(machine: &MachineConfig) -> Vec<Row> {
    let l = 4;
    let mut rows = Vec::new();
    for size in GEMM_SIZES {
        let fl = batched::flops(l, size, size, size);
        let (reg, mapping, args) =
            batched::build(l, size, size, size, machine).expect("paper kernel builds");
        let cy = compile_cypress(machine, &reg, &mapping, "bgemm", &args);
        rows.push(Row {
            system: "Cypress".into(),
            size,
            tflops: measure(machine, &cy, fl),
        });
        let tr = triton::batched_gemm(l, size, size, size);
        rows.push(Row {
            system: "Triton".into(),
            size,
            tflops: measure(machine, &tr, fl),
        });
        let cb = cublas::batched_gemm(l, size, size, size);
        rows.push(Row {
            system: "cuBLAS".into(),
            size,
            tflops: measure(machine, &cb, fl),
        });
    }
    rows
}

/// Fig. 13c: Dual-GEMM — Cypress vs Triton.
#[must_use]
pub fn fig13c(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for size in GEMM_SIZES {
        let fl = dual_gemm::flops(size, size, size);
        let (reg, mapping, args) =
            dual_gemm::build(size, size, size, machine).expect("paper kernel builds");
        let cy = compile_cypress(machine, &reg, &mapping, "dual", &args);
        rows.push(Row {
            system: "Cypress".into(),
            size,
            tflops: measure(machine, &cy, fl),
        });
        let tr = triton::dual_gemm(size, size, size);
        rows.push(Row {
            system: "Triton".into(),
            size,
            tflops: measure(machine, &tr, fl),
        });
    }
    rows
}

/// Fig. 13d: GEMM+Reduction — Cypress vs Triton.
#[must_use]
pub fn fig13d(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for size in GEMM_SIZES {
        let fl = gemm_reduction::flops(size, size, size);
        let (reg, mapping, args) =
            gemm_reduction::build(size, size, size, machine).expect("paper kernel builds");
        let cy = compile_cypress(machine, &reg, &mapping, "gr", &args);
        rows.push(Row {
            system: "Cypress".into(),
            size,
            tflops: measure(machine, &cy, fl),
        });
        let tr = triton::gemm_reduction(size, size, size);
        rows.push(Row {
            system: "Triton".into(),
            size,
            tflops: measure(machine, &tr, fl),
        });
    }
    rows
}

/// Fig. 14: FlashAttention (FP16, head dim 128).
#[must_use]
pub fn fig14(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let sim = Simulator::new(machine.clone());
    for seq in SEQ_LENS {
        let fl = attention::flops(HEADS, seq, HEAD_DIM);
        for (name, alg) in [
            ("Cypress (FA2)", attention::Algorithm::Fa2),
            ("Cypress (FA3)", attention::Algorithm::Fa3),
        ] {
            let (reg, mapping, args) =
                attention::build(alg, HEADS, seq, HEAD_DIM, machine).expect("paper kernel builds");
            let k = compile_cypress(machine, &reg, &mapping, "fa", &args);
            rows.push(Row {
                system: name.into(),
                size: seq,
                tflops: measure(machine, &k, fl),
            });
        }
        let tr = triton::attention(HEADS, seq, HEAD_DIM, machine.sms);
        rows.push(Row {
            system: "Triton (FA2)".into(),
            size: seq,
            tflops: measure(machine, &tr, fl),
        });
        let tk = thunderkittens::attention(HEADS, seq, HEAD_DIM, machine.sms);
        rows.push(Row {
            system: "ThunderKittens (FA2)".into(),
            size: seq,
            tflops: measure(machine, &tk, fl),
        });
        let f3 = fa3::attention(HEADS, seq, HEAD_DIM, machine.sms);
        rows.push(Row {
            system: "Flash Attention 3".into(),
            size: seq,
            tflops: measure(machine, &f3, fl),
        });
        let cd = cudnn::attention_with(HEADS, seq, HEAD_DIM, &sim);
        rows.push(Row {
            system: "cuDNN".into(),
            size: seq,
            tflops: measure(machine, &cd, fl),
        });
    }
    rows
}

/// Problem sizes of the graph-overlap figure: small GEMMs that occupy a
/// fraction of the device, where multi-stream overlap pays off (the
/// batched-tensor regime of Shi et al.).
pub const OVERLAP_SIZES: [usize; 3] = [256, 512, 1024];
/// Independent kernels per graph (and streams in the concurrent run).
pub const OVERLAP_WIDTH: usize = 8;
/// Row label of the serial graph-overlap series.
pub const OVERLAP_SERIAL_SYSTEM: &str = "Graph (serial)";

/// Row label of the concurrent graph-overlap series (derived from
/// [`OVERLAP_WIDTH`] so the label always matches the measurement).
#[must_use]
pub fn overlap_concurrent_system() -> String {
    format!("Graph ({OVERLAP_WIDTH} streams)")
}

/// A width-`width` fan-out graph of independent `size`-cubed GEMMs.
#[must_use]
pub fn overlap_graph(width: usize, size: usize, machine: &MachineConfig) -> TaskGraph {
    let program = Program::from_parts(
        gemm::build(size, size, size, machine).expect("paper kernel builds"),
        "gemm",
    );
    let mut graph = TaskGraph::new();
    for i in 0..width {
        graph
            .add_node(
                &format!("gemm{i}"),
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::External(format!("A{i}")),
                    Binding::External(format!("B{i}")),
                ],
            )
            .expect("independent nodes always insert");
    }
    graph
}

/// Graph overlap: `OVERLAP_WIDTH` independent GEMMs scheduled serially
/// vs concurrently on `OVERLAP_WIDTH` streams. The concurrent rows show
/// the makespan-level speedup multi-stream scheduling buys for small
/// kernels; at sizes that fill the device the two converge.
#[must_use]
pub fn fig_graph_overlap(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for size in OVERLAP_SIZES {
        let graph = overlap_graph(OVERLAP_WIDTH, size, machine);
        let fl = OVERLAP_WIDTH as f64 * gemm::flops(size, size, size);
        let mut session = Session::new(machine.clone());
        let serial = session.launch_timing(&graph).expect("graph times");
        rows.push(Row {
            system: OVERLAP_SERIAL_SYSTEM.into(),
            size,
            tflops: serial.tflops_for(fl),
        });
        session.set_policy(SchedulePolicy::Concurrent {
            streams: OVERLAP_WIDTH,
        });
        let conc = session.launch_timing(&graph).expect("graph times");
        rows.push(Row {
            system: overlap_concurrent_system(),
            size,
            tflops: conc.tflops_for(fl),
        });
    }
    rows
}

/// Device counts of the multi-GPU figure (powers of two behind
/// NVLink-class all-to-all links; 1 is the single-device control).
pub const MULTI_GPU_DEVICES: [usize; 3] = [1, 2, 4];

/// Problem sizes of the multi-GPU figure: the device-filling regime
/// where eight concurrent GEMMs oversubscribe one simulated H100, so
/// spreading them across devices shortens the makespan (below ~1024 the
/// fan-out fits on one device and every placement ties).
pub const MULTI_GPU_SIZES: [usize; 3] = [1024, 2048, 4096];

/// Row label of the sharded graph-overlap series at `devices` devices.
#[must_use]
pub fn multi_gpu_system(devices: usize) -> String {
    let plural = if devices == 1 { "" } else { "s" };
    format!("Sharded ({devices} device{plural})")
}

/// Row label of the comm-vs-compute overlap series (fraction of link
/// transfer cycles hidden under concurrent compute, 2-device shard).
pub const MULTI_GPU_OVERLAP_SYSTEM: &str = "Comm overlap (2 devices)";

/// A two-layer graph forcing cross-device traffic under round-robin
/// root placement: `width` independent GEMM producers feed `width / 2`
/// consumers, each reading a producer pair `(2j, 2j + 1)` that lands on
/// different devices whenever the shard uses more than one. Producer
/// pairs deepen geometrically in K (`size / 2^(pairs - 1 - j)` up to
/// `size`), so early pairs retire while late pairs still compute and
/// their cross-device transfers have compute to hide under.
#[must_use]
pub fn multi_gpu_comm_graph(width: usize, size: usize, machine: &MachineConfig) -> TaskGraph {
    let join = Program::from_parts(
        gemm::build(size, size, size, machine).expect("paper kernel builds"),
        "gemm",
    );
    let pairs = width / 2;
    let mut graph = TaskGraph::new();
    let mut producers = Vec::new();
    for i in 0..width {
        let k = (size >> (pairs - 1 - i / 2)).max(64);
        let program = Program::from_parts(
            gemm::build(size, size, k, machine).expect("paper kernel builds"),
            "gemm",
        );
        producers.push(
            graph
                .add_node(
                    &format!("gemm{i}"),
                    program,
                    vec![
                        Binding::Zeros,
                        Binding::External(format!("A{i}")),
                        Binding::External(format!("B{i}")),
                    ],
                )
                .expect("independent nodes always insert"),
        );
    }
    for j in 0..pairs {
        graph
            .add_node(
                &format!("join{j}"),
                join.clone(),
                vec![
                    Binding::Zeros,
                    Binding::output(producers[2 * j], 0),
                    Binding::output(producers[2 * j + 1], 0),
                ],
            )
            .expect("consumer nodes always insert");
    }
    graph
}

/// Fraction of transfer-node cycles in `report` that overlap at least
/// one compute node's span (transfer nodes are the `xfer:`-prefixed
/// nodes the graph sharder inserts). `NaN` when the report has no
/// transfers.
#[must_use]
pub fn comm_overlap_ratio(report: &cypress_runtime::GraphReport) -> f64 {
    let is_xfer = |n: &cypress_runtime::NodeTiming| n.node.starts_with("xfer:");
    let mut total = 0.0;
    let mut hidden = 0.0;
    for xfer in report.nodes.iter().filter(|n| is_xfer(n)) {
        total += xfer.end - xfer.start;
        // Merge the compute intervals clipped to this transfer's span;
        // completion order is not start order, so sort before sweeping.
        let mut clips: Vec<(f64, f64)> = report
            .nodes
            .iter()
            .filter(|n| !is_xfer(n))
            .map(|n| (n.start.max(xfer.start), n.end.min(xfer.end)))
            .filter(|(s, e)| e > s)
            .collect();
        clips.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cursor = xfer.start;
        for (s, e) in clips {
            let s = s.max(cursor);
            if e > s {
                hidden += e - s;
                cursor = e;
            }
        }
    }
    hidden / total
}

/// Multi-GPU figure: the 8-wide fan-out graph sharded across 1/2/4
/// simulated devices ([`PlacementPolicy::Sharded`], concurrent
/// streams), plus the fraction of cross-device transfer cycles the
/// 2-device schedule hides under compute on [`multi_gpu_comm_graph`].
/// `check_figures` gates 2 devices strictly beating 1 at every size and
/// the overlap ratio staying a valid fraction.
#[must_use]
pub fn fig_multi_gpu(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for size in MULTI_GPU_SIZES {
        let graph = overlap_graph(OVERLAP_WIDTH, size, machine);
        let fl = OVERLAP_WIDTH as f64 * gemm::flops(size, size, size);
        for devices in MULTI_GPU_DEVICES {
            let mut session = Session::new(machine.clone())
                .with_placement_policy(PlacementPolicy::Sharded { devices })
                .with_policy(SchedulePolicy::Concurrent {
                    streams: OVERLAP_WIDTH,
                });
            let report = session.launch_timing(&graph).expect("graph times");
            rows.push(Row {
                system: multi_gpu_system(devices),
                size,
                tflops: report.tflops_for(fl),
            });
        }
        let comm = multi_gpu_comm_graph(OVERLAP_WIDTH, size, machine);
        let mut session = Session::new(machine.clone())
            .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
            .with_policy(SchedulePolicy::Concurrent {
                streams: OVERLAP_WIDTH,
            });
        let report = session.launch_timing(&comm).expect("comm graph times");
        rows.push(Row {
            system: MULTI_GPU_OVERLAP_SYSTEM.into(),
            size,
            tflops: comm_overlap_ratio(&report),
        });
    }
    rows
}

/// Problem sizes of the fusion figure: the launch-bound small/medium
/// regime where collapsing a producer→consumer pair into one fused
/// kernel pays (at device-filling sizes the simulator gate simply
/// leaves the graph unfused, so fused can never lose).
pub const FUSION_SIZES: [usize; 3] = [256, 512, 1024];

/// A two-node GEMM→GEMM chain: `C1 = A·W1`, `C = C1·W2`, the dead
/// intermediate making it a `dual_chain` fusion candidate.
#[must_use]
pub fn chained_gemm_graph(size: usize, machine: &MachineConfig) -> TaskGraph {
    let program = Program::from_parts(
        gemm::build(size, size, size, machine).expect("paper kernel builds"),
        "gemm",
    );
    let mut graph = TaskGraph::new();
    let up = graph
        .add_node(
            "up",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("W1"),
            ],
        )
        .expect("chain graph builds");
    graph
        .add_node(
            "down",
            program,
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::external("W2"),
            ],
        )
        .expect("chain graph builds");
    graph
}

/// A GEMM and a standalone row-reduction over the same input — the
/// Fig. 13d dataflow as two primitive nodes, a `gemm_reduction` fusion
/// candidate.
#[must_use]
pub fn gemm_reduction_pair_graph(size: usize, machine: &MachineConfig) -> TaskGraph {
    let mut graph = TaskGraph::new();
    graph
        .add_node(
            "proj",
            Program::from_parts(
                gemm::build(size, size, size, machine).expect("paper kernel builds"),
                "gemm",
            ),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("W"),
            ],
        )
        .expect("pair graph builds");
    graph
        .add_node(
            "stat",
            Program::from_parts(
                reduction::build(size, size, machine).expect("reduction builds"),
                "reduce",
            ),
            vec![Binding::Zeros, Binding::external("A")],
        )
        .expect("pair graph builds");
    graph
}

/// The fusion figure: each candidate graph launched with
/// `FusionPolicy::Off` vs `FusionPolicy::Auto` (serial schedule). The
/// fused series can never lose — the session's simulator gate applies a
/// rewrite only when the fused kernel beats the launches it replaces —
/// and `check_figures` gates that in CI.
#[must_use]
pub fn fig_fusion(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for size in FUSION_SIZES {
        let workloads: [(&str, TaskGraph, f64); 2] = [
            (
                "Chained GEMM",
                chained_gemm_graph(size, machine),
                chain::flops(size, size, size, size),
            ),
            (
                "GEMM+Reduction pair",
                gemm_reduction_pair_graph(size, machine),
                gemm::flops(size, size, size) + reduction::flops(size, size),
            ),
        ];
        for (name, graph, fl) in workloads {
            let mut off = Session::new(machine.clone());
            let unfused = off.launch_timing(&graph).expect("graph times");
            rows.push(Row {
                system: format!("{name} (unfused)"),
                size,
                tflops: unfused.tflops_for(fl),
            });
            let mut auto = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
            let fused = auto.launch_timing(&graph).expect("graph times");
            rows.push(Row {
                system: format!("{name} (fused)"),
                size,
                tflops: fused.tflops_for(fl),
            });
        }
    }
    rows
}

/// Problem sizes of the autotune figure: a small size where the
/// hand-tuned H100 tiles underfill the device (the regime the tuner
/// wins — e.g. GEMM picks 64-column tiles for 4x the CTAs), and the
/// paper's evaluation size where the hand-tuned mappings are already
/// optimal in the space (the tuner must tie, never lose). Attention
/// runs `seq = size` at [`HEADS`]×[`HEAD_DIM`].
pub const AUTOTUNE_SIZES: [usize; 2] = [512, 4096];

/// The five paper kernels' mapping spaces with their `fig_autotune`
/// shapes at `size` (batched GEMM at L=4, attention FA3 at
/// [`HEADS`]/[`HEAD_DIM`]).
#[must_use]
pub fn autotune_entries(size: usize) -> Vec<(&'static str, Arc<dyn MappingSpace>, Shape, f64)> {
    vec![
        (
            "gemm",
            Arc::new(gemm::GemmSpace) as Arc<dyn MappingSpace>,
            Shape::of(&[size, size, size]),
            gemm::flops(size, size, size),
        ),
        (
            "batched_gemm",
            Arc::new(batched::BatchedGemmSpace),
            Shape::of(&[4, size, size, size]),
            batched::flops(4, size, size, size),
        ),
        (
            "dual_gemm",
            Arc::new(dual_gemm::DualGemmSpace),
            Shape::of(&[size, size, size]),
            dual_gemm::flops(size, size, size),
        ),
        (
            "gemm_reduction",
            Arc::new(gemm_reduction::GemmReductionSpace),
            Shape::of(&[size, size, size]),
            gemm_reduction::flops(size, size, size),
        ),
        (
            "attention_fa3",
            Arc::new(attention::AttentionSpace {
                algorithm: attention::Algorithm::Fa3,
            }),
            Shape::of(&[HEADS, size, HEAD_DIM]),
            attention::flops(HEADS, size, HEAD_DIM),
        ),
    ]
}

/// Suffix of the hand-tuned series in [`fig_autotune`] rows.
pub const AUTOTUNE_HAND_SYSTEM: &str = "hand-tuned";
/// Suffix of the autotuned (exhaustive-sweep) series in
/// [`fig_autotune`] rows.
pub const AUTOTUNE_TUNED_SYSTEM: &str = "autotuned";
/// Suffix of the cost-model-guided series in [`fig_autotune`] rows
/// (`TunerBudget::TopK(candidates / 2)` on a cold table).
pub const AUTOTUNE_GUIDED_SYSTEM: &str = "guided";
/// Suffix of the guided sweep's timed-candidate-count series. These
/// rows reuse the `tflops` value slot for a **count**, not a
/// throughput — `check_figures` gates it against the exhaustive count.
pub const AUTOTUNE_TIMED_GUIDED_SYSTEM: &str = "candidates timed (guided)";
/// Suffix of the exhaustive sweep's timed-candidate-count series (see
/// [`AUTOTUNE_TIMED_GUIDED_SYSTEM`]).
pub const AUTOTUNE_TIMED_EXHAUSTIVE_SYSTEM: &str = "candidates timed (exhaustive)";

/// Wall time of one kernel's exhaustive and guided cold sweeps — the
/// host-measured side of the autotune figure. Kept out of
/// `BENCH_figures.json` (which regenerates bit-identically in CI) and
/// printed by the `figures` binary instead.
#[derive(Debug, Clone)]
pub struct SweepTime {
    /// Kernel name (matches [`autotune_entries`]).
    pub name: String,
    /// Problem size.
    pub size: usize,
    /// Exhaustive cold-sweep wall time, in seconds.
    pub exhaustive_s: f64,
    /// Guided (`TopK(candidates / 2)`) cold-sweep wall time, in seconds.
    pub guided_s: f64,
}

/// The autotune figure: for each paper kernel at each
/// [`AUTOTUNE_SIZES`] shape, the hand-tuned H100 mapping's throughput,
/// the mapping the exhaustive simulator-driven tuner picked from the
/// kernel's `MappingSpace`, the winner of a cost-model-guided sweep
/// that times only the predicted top half ([`TunerBudget::TopK`]), and
/// the number of candidates each sweep actually simulated. The tuned
/// row can never lose — the hand-tuned mapping is one of the
/// candidates — and `check_figures` gates `tuned >= hand`,
/// `guided >= 0.95 x tuned`, and `timed(guided) < timed(exhaustive)`
/// in CI. Alongside the rows, returns each sweep's wall time for the
/// `figures` stdout report.
#[must_use]
pub fn fig_autotune_with_times(machine: &MachineConfig) -> (Vec<Row>, Vec<SweepTime>) {
    let mut session = Session::new(machine.clone());
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for size in AUTOTUNE_SIZES {
        for (name, space, shape, fl) in autotune_entries(size) {
            let program = Program::from_space(space, shape, machine)
                .expect("paper kernels build at the hand-tuned default");
            let t0 = std::time::Instant::now();
            let before = session.metrics().tuner.candidates_timed;
            let tuned = session.autotune(&program).expect("paper kernels autotune");
            let exhaustive_s = t0.elapsed().as_secs_f64();
            let exhaustive_timed = session.metrics().tuner.candidates_timed - before;

            // The guided sweep runs cold (fresh session, empty table)
            // under a half-size budget, so the comparison is cold sweep
            // vs cold sweep.
            let mut guided_session = Session::new(machine.clone());
            let top_k = (tuned.candidates / 2).max(1);
            let t0 = std::time::Instant::now();
            let guided = guided_session
                .autotune_with(&program, TunerBudget::TopK(top_k))
                .expect("paper kernels autotune under a guided budget");
            let guided_s = t0.elapsed().as_secs_f64();
            let guided_timed = guided_session.metrics().tuner.candidates_timed;

            let tflops_at = |cycles: f64| {
                let seconds = machine.cycles_to_seconds(cycles);
                fl / seconds / 1e12
            };
            rows.push(Row {
                system: format!("{name} {AUTOTUNE_HAND_SYSTEM}"),
                size,
                tflops: tflops_at(tuned.default_cycles),
            });
            rows.push(Row {
                system: format!("{name} {AUTOTUNE_TUNED_SYSTEM}"),
                size,
                tflops: tflops_at(tuned.tuned_cycles),
            });
            rows.push(Row {
                system: format!("{name} {AUTOTUNE_GUIDED_SYSTEM}"),
                size,
                tflops: tflops_at(guided.tuned_cycles),
            });
            rows.push(Row {
                system: format!("{name} {AUTOTUNE_TIMED_GUIDED_SYSTEM}"),
                size,
                tflops: guided_timed as f64,
            });
            rows.push(Row {
                system: format!("{name} {AUTOTUNE_TIMED_EXHAUSTIVE_SYSTEM}"),
                size,
                tflops: exhaustive_timed as f64,
            });
            times.push(SweepTime {
                name: name.to_string(),
                size,
                exhaustive_s,
                guided_s,
            });
        }
    }
    (rows, times)
}

/// [`fig_autotune_with_times`] without the wall-clock sweep times.
#[must_use]
pub fn fig_autotune(machine: &MachineConfig) -> Vec<Row> {
    fig_autotune_with_times(machine).0
}

/// Problem size of the functional data-path figure (`M = N = K`, and the
/// attention sequence length).
pub const FUNCTIONAL_SIZE: usize = 256;
/// Attention heads of the functional figure (head dim is [`HEAD_DIM`]).
pub const FUNCTIONAL_HEADS: usize = 2;
/// Independent GEMM nodes of the functional fan-out graph.
pub const FUNCTIONAL_FAN_OUT: usize = 8;

/// Minimum wall time over `runs` calls of `f` (best-of discards cold
/// compiles and scheduler noise).
fn best_seconds(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The functional data-path figure — the only **host-measured** figure:
/// element throughput of functional GEMM and attention on the fast
/// resolved-view data path versus the retained scalar reference
/// interpreter (`Simulator::run_functional_scalar`), the pre-lowered
/// bytecode frontend (`Simulator::run_functional_lowered`) versus the
/// fast-apply IR walk it replaced on GEMM, plus whole-graph functional
/// wall time of a [`FUNCTIONAL_FAN_OUT`]-wide fan-out under the serial
/// executor versus the parallel worker pool.
///
/// Row values are millions of multiply-accumulates per second for the
/// kernels and graph launches per second for the fan-out rows — higher
/// is better in both, and `check_figures` gates fast ≥ 3× scalar on
/// GEMM and speedup ≥ 1 (with wall-clock jitter slack) on the rest.
/// Because these rows are wall-clock measurements they are *not*
/// covered by the bit-identical regeneration check that guards every
/// simulated figure.
#[must_use]
pub fn fig_functional(machine: &MachineConfig) -> Vec<Row> {
    use cypress_tensor::{DType, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    let mut rows = Vec::new();
    let size = FUNCTIONAL_SIZE;
    let sim = Simulator::new(machine.clone());
    let mut rng = StdRng::seed_from_u64(20_26);

    // GEMM: bytecode vs fast-apply walk vs scalar data path. The fast
    // row pins the IR-walk frontend explicitly so it keeps measuring
    // what it always measured now that `run_functional` dispatches
    // through the bytecode VM.
    let (reg, mapping, args) = gemm::build(size, size, size, machine).expect("paper kernel builds");
    let kernel = compile_cypress(machine, &reg, &mapping, "gemm", &args);
    let lowered = cypress_sim::bytecode::lower(&kernel).expect("paper kernel lowers");
    let a = Tensor::random(DType::F16, &[size, size], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[size, size], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[size, size]);
    let macs = (size * size * size) as f64;
    // Warm up once, then interleave the two frontends' timed runs so
    // load drift on a contended host hits both equally — the gate
    // compares these two wall-clock numbers against each other.
    sim.run_functional_walk(&kernel, vec![c.clone(), a.clone(), b.clone()])
        .expect("functional gemm runs");
    let mut bytecode = f64::INFINITY;
    let mut fast = f64::INFINITY;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        sim.run_functional_lowered(&kernel, &lowered, vec![c.clone(), a.clone(), b.clone()])
            .expect("bytecode functional gemm runs");
        bytecode = bytecode.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        sim.run_functional_walk(&kernel, vec![c.clone(), a.clone(), b.clone()])
            .expect("functional gemm runs");
        fast = fast.min(t0.elapsed().as_secs_f64());
    }
    let scalar = best_seconds(2, || {
        sim.run_functional_scalar(&kernel, vec![c.clone(), a.clone(), b.clone()])
            .expect("scalar functional gemm runs");
    });
    rows.push(Row {
        system: "GEMM functional (bytecode)".into(),
        size,
        tflops: macs / bytecode / 1e6,
    });
    rows.push(Row {
        system: "GEMM functional (fast)".into(),
        size,
        tflops: macs / fast / 1e6,
    });
    rows.push(Row {
        system: "GEMM functional (scalar)".into(),
        size,
        tflops: macs / scalar / 1e6,
    });

    // Attention (FA2): the SIMT-heavy softmax path.
    let heads = FUNCTIONAL_HEADS;
    let (reg, mapping, args) =
        attention::build(attention::Algorithm::Fa2, heads, size, HEAD_DIM, machine)
            .expect("paper kernel builds");
    let kernel = compile_cypress(machine, &reg, &mapping, "fa", &args);
    let mk =
        |rng: &mut StdRng| Tensor::random(DType::F16, &[heads * size, HEAD_DIM], rng, -1.0, 1.0);
    let (q, k, v) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
    let o = Tensor::zeros(DType::F16, &[heads * size, HEAD_DIM]);
    let macs = attention::flops(heads, size, HEAD_DIM) / 2.0;
    let fast = best_seconds(2, || {
        sim.run_functional_walk(&kernel, vec![o.clone(), q.clone(), k.clone(), v.clone()])
            .expect("functional attention runs");
    });
    let scalar = best_seconds(2, || {
        sim.run_functional_scalar(&kernel, vec![o.clone(), q.clone(), k.clone(), v.clone()])
            .expect("scalar functional attention runs");
    });
    rows.push(Row {
        system: "Attention functional (fast)".into(),
        size,
        tflops: macs / fast / 1e6,
    });
    rows.push(Row {
        system: "Attention functional (scalar)".into(),
        size,
        tflops: macs / scalar / 1e6,
    });

    // Fan-out graph: serial executor vs the scoped worker pool.
    let graph = overlap_graph(FUNCTIONAL_FAN_OUT, size, machine);
    let mut inputs = HashMap::new();
    for i in 0..FUNCTIONAL_FAN_OUT {
        for name in [format!("A{i}"), format!("B{i}")] {
            inputs.insert(
                name,
                Tensor::random(DType::F16, &[size, size], &mut rng, -1.0, 1.0),
            );
        }
    }
    let mut serial_session = Session::new(machine.clone()).with_parallelism(1);
    let serial = best_seconds(5, || {
        serial_session
            .launch_functional(&graph, &inputs)
            .expect("serial functional graph runs");
    });
    let workers = cypress_sim::par::available();
    let parallel = if workers <= 1 {
        // With one worker the parallel executor *is* the serial walk
        // (byte for byte), so re-measuring it would only add noise to
        // the `parallel >= serial` gate on single-core hosts.
        serial
    } else {
        let mut parallel_session = Session::new(machine.clone()).with_parallelism(workers);
        best_seconds(5, || {
            parallel_session
                .launch_functional(&graph, &inputs)
                .expect("parallel functional graph runs");
        })
    };
    rows.push(Row {
        system: "Fan-out graph (serial)".into(),
        size,
        tflops: 1.0 / serial,
    });
    rows.push(Row {
        system: "Fan-out graph (parallel)".into(),
        size,
        tflops: 1.0 / parallel,
    });
    rows
}

/// Problem size of the fault-tolerance figure (the device-filling
/// regime of [`MULTI_GPU_SIZES`], where losing a device actually
/// costs).
pub const FAULT_SIZE: usize = 1024;
/// Device counts of the fault-tolerance figure (1 is the
/// single-device retry control; the loss rows need survivors, so they
/// run at 2 and 4 only).
pub const FAULT_DEVICES: [usize; 3] = [1, 2, 4];
/// Transient-fault counts per retry row (0 is the zero-fault control —
/// gated to cost *exactly* nothing).
pub const FAULT_TRANSIENTS: [usize; 3] = [0, 1, 2];

/// Row label of the transient-retry series at `devices` devices with
/// `transients` injected faults.
#[must_use]
pub fn fault_retry_system(devices: usize, transients: usize) -> String {
    let dev = if devices == 1 { "device" } else { "devices" };
    let tr = if transients == 1 {
        "transient"
    } else {
        "transients"
    };
    format!("Retry ({devices} {dev}, {transients} {tr})")
}

/// Row label of the device-loss recovery series at `devices` devices.
#[must_use]
pub fn fault_loss_system(devices: usize) -> String {
    format!("Device loss ({devices} devices)")
}

/// The fault-tolerance figure: recovery overhead of the 8-wide fan-out
/// graph under [`cypress_runtime::FaultPolicy::Retry`]. Row values are
/// the **makespan ratio** of the faulted run over the fault-free run
/// (1.0 = free recovery; higher = overhead), not a throughput. Three
/// regimes per device count: a zero-fault control (gated to exactly
/// 1.0 — the fault machinery is bit-free when nothing fires), 1–2
/// transient kernel faults retried in place, and — at 2 and 4 devices
/// — a permanent device loss at half the clean makespan, recovered by
/// degraded re-sharding onto the survivors. `check_figures` gates
/// every ratio's bounds and `figures` regenerates the rows
/// bit-identically in CI.
#[must_use]
pub fn fig_fault_tolerance(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let size = FAULT_SIZE;
    let graph = overlap_graph(OVERLAP_WIDTH, size, machine);
    for devices in FAULT_DEVICES {
        let mut session = Session::new(machine.clone())
            .with_placement_policy(PlacementPolicy::Sharded { devices })
            .with_policy(SchedulePolicy::Concurrent {
                streams: OVERLAP_WIDTH,
            });
        let clean = session.launch_timing(&graph).expect("graph times").makespan;
        session.set_fault_policy(FaultPolicy::Retry {
            max_attempts: 3,
            backoff: 0.0,
        });
        for transients in FAULT_TRANSIENTS {
            let mut plan = FaultPlan::new();
            for launch in 0..transients {
                plan = plan.with_transient(0, launch as u64);
            }
            session.set_fault_plan(Some(plan));
            let faulted = session
                .launch_timing(&graph)
                .expect("transient faults recover under Retry")
                .makespan;
            rows.push(Row {
                system: fault_retry_system(devices, transients),
                size,
                tflops: faulted / clean,
            });
        }
        if devices > 1 {
            session.set_fault_plan(Some(
                FaultPlan::new().with_device_loss(devices - 1, clean * 0.5),
            ));
            let faulted = session
                .launch_timing(&graph)
                .expect("device loss recovers by re-sharding onto survivors")
                .makespan;
            rows.push(Row {
                system: fault_loss_system(devices),
                size,
                tflops: faulted / clean,
            });
        }
    }
    rows
}

/// Helper: the measured ratio of `a` over `b` at `size`.
#[must_use]
pub fn ratio(rows: &[Row], a: &str, b: &str, size: usize) -> f64 {
    let get = |s: &str| {
        rows.iter()
            .find(|r| r.system == s && r.size == size)
            .map(|r| r.tflops)
            .unwrap_or(f64::NAN)
    };
    get(a) / get(b)
}
