//! CI gate over an exported Chrome trace (see
//! `cypress_runtime::telemetry::TraceSink`): the file must parse, carry
//! the `cypress_graph` metadata event, contain at least one span, keep
//! its timestamps monotone (the exporter sorts by start time), keep
//! every span inside the declared makespan, and only use stream ids the
//! metadata declares. Host-side spans (`cat == "host"` — compile
//! passes and tuner ranking from `chrome_json_with_host`) run on a
//! wall-clock timeline, so they are only checked for finite
//! non-negative bounds, not against the stream/makespan invariants.
//! A broken exporter fails the build instead of shipping a file
//! Perfetto rejects.
//!
//! Run with `cargo run --release -p cypress-bench --bin check_trace --
//! <trace.json>` (after `cargo run --example graph_overlap <trace.json>`
//! has written it).

use cypress_runtime::TraceSink;
use std::process::ExitCode;

fn check(json: &str) -> Result<String, String> {
    let trace = TraceSink::parse_chrome_json(json)?;
    let streams = trace
        .streams
        .ok_or("missing `cypress_graph` metadata: no stream count")?;
    let makespan = trace
        .makespan
        .ok_or("missing `cypress_graph` metadata: no makespan")?;
    // Traces from before the multi-device exporter carry no `devices`
    // key; they are single-device by construction.
    let devices = trace.devices.unwrap_or(1);
    if streams == 0 {
        return Err("metadata declares 0 streams".to_string());
    }
    if devices == 0 {
        return Err("metadata declares 0 devices".to_string());
    }
    if !makespan.is_finite() || makespan <= 0.0 {
        return Err(format!(
            "metadata makespan {makespan} is not a positive cycle count"
        ));
    }
    if trace.spans.is_empty() {
        return Err("trace has no spans".to_string());
    }
    let mut hosts = 0usize;
    let mut prev = f64::NEG_INFINITY;
    for (i, span) in trace.spans.iter().enumerate() {
        if !span.ts.is_finite() || span.ts < 0.0 || !span.dur.is_finite() || span.dur < 0.0 {
            return Err(format!(
                "span {i} `{}`: ts {} dur {} — both must be finite and non-negative",
                span.name, span.ts, span.dur
            ));
        }
        // Host-side spans (compile passes, tuner ranking — see
        // `TraceSink::chrome_json_with_host`) live on a separate
        // nanosecond timeline: exempt from the stream/makespan/monotone
        // checks, like `EventClass::Host` in determinism comparisons.
        if span.cat == "host" {
            hosts += 1;
            continue;
        }
        if span.ts < prev {
            return Err(format!(
                "span {i} `{}`: ts {} < previous span's ts {} — timestamps must be monotone",
                span.name, span.ts, prev
            ));
        }
        prev = span.ts;
        // The exporter bands tids per device: `tid = device * streams +
        // stream`, so a valid tid lives in `0..devices * streams`.
        if span.tid >= devices * streams {
            return Err(format!(
                "span {i} `{}`: lane id {} but metadata declares {devices} device(s) x \
                 {streams} streams ({} lanes)",
                span.name,
                span.tid,
                devices * streams
            ));
        }
        // The exporter emits exact sim cycles; tolerate only rounding in
        // the sum itself.
        if span.ts + span.dur > makespan * (1.0 + 1e-9) {
            return Err(format!(
                "span {i} `{}`: ends at {} (ts {} + dur {}), past the declared makespan {makespan}",
                span.name,
                span.ts + span.dur,
                span.ts,
                span.dur
            ));
        }
    }
    // Fault-recovery spans: every failed attempt (`retry:X`) must be
    // followed by the re-execution that retired `X`, and a re-shard
    // boundary (`reshard:dN`) only makes sense when the trace has a
    // surviving device to re-plan onto.
    let mut recoveries = 0usize;
    for span in trace.spans.iter().filter(|s| s.cat != "host") {
        if let Some(node) = span.name.strip_prefix("retry:") {
            recoveries += 1;
            let reran = trace
                .spans
                .iter()
                .any(|other| other.cat != "host" && other.name == node && other.ts >= span.ts);
            if !reran {
                return Err(format!(
                    "span `{}`: no successful `{node}` span at or after ts {} — every \
                     retried attempt must be followed by the re-execution that retired it",
                    span.name, span.ts
                ));
            }
        }
        if span.name.starts_with("reshard:") {
            recoveries += 1;
            if devices < 2 {
                return Err(format!(
                    "span `{}` on a {devices}-device trace — evicting a device \
                     requires at least one survivor to re-shard onto",
                    span.name
                ));
            }
        }
        if span.name.starts_with("xfer:recover:") {
            recoveries += 1;
        }
    }
    Ok(format!(
        "{} spans on {devices} device(s) x {streams} streams ({hosts} host, \
         {recoveries} recovery), makespan {makespan} cycles",
        trace.spans.len() - hosts
    ))
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/graph_overlap_trace.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "check_trace: cannot read {path}: {e} \
                 (run `cargo run --example graph_overlap {path}` first)"
            );
            return ExitCode::FAILURE;
        }
    };
    match check(&json) {
        Ok(summary) => {
            println!("check_trace: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_trace: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    fn trace(meta: &str, spans: &[&str]) -> String {
        let mut events = vec![meta.to_string()];
        events.extend(spans.iter().map(|s| (*s).to_string()));
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    const META: &str = "{\"name\":\"cypress_graph\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                        \"args\":{\"streams\":2,\"makespan\":1000,\"unit\":\"cycles\"}}";

    fn span(name: &str, ts: f64, dur: f64, tid: usize) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"node\",\"ph\":\"X\",\
             \"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{}}}}"
        )
    }

    #[test]
    fn valid_trace_passes() {
        let json = trace(
            META,
            &[&span("a", 0.0, 600.0, 0), &span("b", 100.0, 900.0, 1)],
        );
        let summary = check(&json).unwrap();
        assert!(summary.contains("2 spans"), "{summary}");
    }

    #[test]
    fn missing_metadata_fails() {
        let json = trace(&span("a", 0.0, 10.0, 0), &[]);
        assert!(check(&json).unwrap_err().contains("cypress_graph"));
    }

    #[test]
    fn empty_trace_fails() {
        assert!(check(&trace(META, &[])).unwrap_err().contains("no spans"));
    }

    #[test]
    fn non_monotone_timestamps_fail() {
        let json = trace(
            META,
            &[&span("a", 500.0, 100.0, 0), &span("b", 0.0, 100.0, 1)],
        );
        assert!(check(&json).unwrap_err().contains("monotone"));
    }

    #[test]
    fn out_of_range_stream_fails() {
        let json = trace(META, &[&span("a", 0.0, 100.0, 7)]);
        let err = check(&json).unwrap_err();
        assert!(err.contains("lane id 7"), "{err}");
        assert!(err.contains("1 device(s) x 2 streams"), "{err}");
    }

    const MULTI_META: &str = "{\"name\":\"cypress_graph\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                              \"args\":{\"streams\":2,\"devices\":2,\"makespan\":1000,\
                              \"unit\":\"cycles\"}}";

    #[test]
    fn device_banded_lanes_pass() {
        // tid 3 = device 1, stream 1 — out of range for a 1-device
        // trace but valid once the metadata declares 2 devices.
        let json = trace(
            MULTI_META,
            &[&span("a", 0.0, 600.0, 0), &span("xfer:b", 100.0, 900.0, 3)],
        );
        let summary = check(&json).unwrap();
        assert!(summary.contains("2 device(s) x 2 streams"), "{summary}");
    }

    #[test]
    fn lane_past_device_band_fails() {
        let json = trace(MULTI_META, &[&span("a", 0.0, 100.0, 4)]);
        let err = check(&json).unwrap_err();
        assert!(err.contains("lane id 4"), "{err}");
        assert!(err.contains("4 lanes"), "{err}");
    }

    #[test]
    fn zero_devices_fails() {
        let meta = MULTI_META.replace("\"devices\":2", "\"devices\":0");
        let json = trace(&meta, &[&span("a", 0.0, 100.0, 0)]);
        assert!(check(&json).unwrap_err().contains("0 devices"));
    }

    #[test]
    fn span_past_makespan_fails() {
        let json = trace(META, &[&span("a", 900.0, 200.0, 0)]);
        assert!(check(&json)
            .unwrap_err()
            .contains("past the declared makespan"));
    }

    fn host_span(name: &str, ts: f64, dur: f64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"host\",\"ph\":\"X\",\
             \"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":0,\"args\":{{\"unit\":\"ns\"}}}}"
        )
    }

    #[test]
    fn host_spans_are_exempt_from_stream_invariants() {
        // The host timeline restarts at 0 after the node spans and may
        // outlast the makespan — both fine for `cat == "host"`.
        let json = trace(
            META,
            &[
                &span("a", 0.0, 600.0, 0),
                &span("b", 100.0, 900.0, 1),
                &host_span("compile:lower", 0.0, 5000.0),
                &host_span("rank:gemm", 5000.0, 42.0),
            ],
        );
        let summary = check(&json).unwrap();
        assert!(summary.contains("2 spans"), "{summary}");
        assert!(summary.contains("2 host"), "{summary}");
    }

    #[test]
    fn host_spans_still_need_finite_bounds() {
        let json = trace(
            META,
            &[
                &span("a", 0.0, 600.0, 0),
                &host_span("rank:gemm", -1.0, 7.0),
            ],
        );
        assert!(check(&json)
            .unwrap_err()
            .contains("finite and non-negative"));
    }

    #[test]
    fn malformed_json_fails() {
        assert!(check("{\"traceEvents\":").is_err());
    }

    #[test]
    fn retry_followed_by_rerun_passes_and_is_counted() {
        let json = trace(
            MULTI_META,
            &[
                &span("retry:a", 0.0, 300.0, 0),
                &span("reshard:d1", 300.0, 0.0, 2),
                &span("a", 300.0, 500.0, 0),
                &span("xfer:recover:b.0->d0", 400.0, 100.0, 0),
            ],
        );
        let summary = check(&json).unwrap();
        assert!(summary.contains("3 recovery"), "{summary}");
    }

    #[test]
    fn retry_without_rerun_fails() {
        let json = trace(
            META,
            &[&span("retry:a", 0.0, 300.0, 0), &span("b", 300.0, 500.0, 1)],
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("retry:a"), "{err}");
        assert!(err.contains("re-execution"), "{err}");
    }

    #[test]
    fn rerun_before_the_failed_attempt_fails() {
        // A successful `a` span strictly before the failed attempt
        // cannot be the retry's re-execution.
        let json = trace(
            META,
            &[&span("a", 0.0, 100.0, 0), &span("retry:a", 200.0, 300.0, 0)],
        );
        assert!(check(&json).unwrap_err().contains("re-execution"));
    }

    #[test]
    fn reshard_on_a_single_device_trace_fails() {
        let json = trace(
            META,
            &[
                &span("a", 0.0, 100.0, 0),
                &span("reshard:d0", 100.0, 0.0, 0),
            ],
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("reshard:d0"), "{err}");
        assert!(err.contains("survivor"), "{err}");
    }
}
