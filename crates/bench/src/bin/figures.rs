//! Regenerate every evaluation figure of the paper as text tables, with
//! the paper's reported ratio bands printed next to the measured ratios.
//! Alongside the tables, writes `BENCH_figures.json` — one
//! `{figure, system, size, tflops}` row per measurement — so the perf
//! trajectory can be tracked across PRs by machines, not eyeballs.
//!
//! Run with `cargo run --release -p cypress-bench --bin figures`.

use cypress_bench::{
    autotune_entries, fault_loss_system, fault_retry_system, fig13a, fig13b, fig13c, fig13d, fig14,
    fig_autotune_with_times, fig_fault_tolerance, fig_functional, fig_fusion, fig_graph_overlap,
    fig_multi_gpu, multi_gpu_system, overlap_concurrent_system, ratio, Row, AUTOTUNE_GUIDED_SYSTEM,
    AUTOTUNE_HAND_SYSTEM, AUTOTUNE_SIZES, AUTOTUNE_TIMED_EXHAUSTIVE_SYSTEM,
    AUTOTUNE_TIMED_GUIDED_SYSTEM, AUTOTUNE_TUNED_SYSTEM, FAULT_DEVICES, FAULT_SIZE,
    FAULT_TRANSIENTS, FUNCTIONAL_FAN_OUT, FUNCTIONAL_SIZE, FUSION_SIZES, GEMM_SIZES,
    MULTI_GPU_OVERLAP_SYSTEM, MULTI_GPU_SIZES, OVERLAP_SERIAL_SYSTEM, OVERLAP_SIZES, OVERLAP_WIDTH,
    SEQ_LENS,
};
use cypress_sim::MachineConfig;

/// Render `(figure, rows)` pairs as a JSON array (no serde in the
/// offline build; the format is four flat fields per row).
fn rows_to_json(figures: &[(&str, &[Row])], machine: &MachineConfig) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"machine\": \"{}\",\n  \"peak_tflops\": {:.1},\n  \"rows\": [\n",
        machine.name,
        machine.peak_tflops()
    ));
    let mut first = true;
    for (figure, rows) in figures {
        for r in *rows {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"figure\": \"{figure}\", \"system\": \"{}\", \"size\": {}, \"tflops\": {:.3}}}",
                r.system, r.size, r.tflops
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One row's value (the autotune count rows carry counts, not TFLOP/s).
fn find(rows: &[Row], system: &str, size: usize) -> f64 {
    rows.iter()
        .find(|r| r.system == system && r.size == size)
        .map(|r| r.tflops)
        .unwrap_or(f64::NAN)
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut systems: Vec<&str> = Vec::new();
    for r in rows {
        if !systems.contains(&r.system.as_str()) {
            systems.push(&r.system);
        }
    }
    print!("{:>24}", "size");
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = rows.iter().map(|r| r.size).collect();
        s.dedup();
        s
    };
    for s in &sizes {
        print!("{s:>10}");
    }
    println!();
    for sys in systems {
        print!("{sys:>24}");
        for s in &sizes {
            let t = rows
                .iter()
                .find(|r| r.system == sys && r.size == *s)
                .map(|r| r.tflops)
                .unwrap_or(f64::NAN);
            print!("{t:>10.0}");
        }
        println!("  TFLOP/s");
    }
}

fn main() {
    let machine = MachineConfig::h100_sxm5();
    println!(
        "Cypress evaluation on simulated {} ({:.0} TFLOP/s FP16 peak)",
        machine.name,
        machine.peak_tflops()
    );

    let a = fig13a(&machine);
    print_rows("Fig. 13a: GEMM (FP16, M=N=K)", &a);
    for s in GEMM_SIZES {
        println!(
            "  size {s}: Cypress/cuBLAS = {:.2} (paper band 0.88-1.06), Cypress/Triton = {:.2} (paper band 1.05-1.11)",
            ratio(&a, "Cypress", "cuBLAS", s),
            ratio(&a, "Cypress", "Triton", s)
        );
    }

    let b = fig13b(&machine);
    print_rows("Fig. 13b: Batched-GEMM (L=4)", &b);
    println!(
        "  largest size: Cypress/cuBLAS = {:.2} (paper: Cypress slightly ahead at the largest size)",
        ratio(&b, "Cypress", "cuBLAS", 8192)
    );

    let c = fig13c(&machine);
    print_rows("Fig. 13c: Dual-GEMM", &c);
    for s in GEMM_SIZES {
        println!(
            "  size {s}: Cypress/Triton = {:.2} (paper band 1.36-1.40)",
            ratio(&c, "Cypress", "Triton", s)
        );
    }

    let d = fig13d(&machine);
    print_rows("Fig. 13d: GEMM+Reduction", &d);
    for s in GEMM_SIZES {
        println!(
            "  size {s}: Cypress/Triton = {:.2} (paper band 2.02-2.18)",
            ratio(&d, "Cypress", "Triton", s)
        );
    }

    let f = fig14(&machine);
    print_rows("Fig. 14: FlashAttention (FP16, head dim 128)", &f);
    for s in SEQ_LENS {
        println!(
            "  seq {s}: CypressFA3/FA3ref = {:.2} (paper band 0.80-0.98), CypressFA2/TK = {:.2} (paper band 0.87-1.06)",
            ratio(&f, "Cypress (FA3)", "Flash Attention 3", s),
            ratio(&f, "Cypress (FA2)", "ThunderKittens (FA2)", s)
        );
    }

    let g = fig_graph_overlap(&machine);
    let concurrent_system = overlap_concurrent_system();
    print_rows(
        &format!(
            "Graph overlap: {OVERLAP_WIDTH} independent GEMMs, serial vs {OVERLAP_WIDTH} streams"
        ),
        &g,
    );
    for s in OVERLAP_SIZES {
        println!(
            "  size {s}: {OVERLAP_WIDTH} streams / serial = {:.2}x makespan speedup",
            ratio(&g, &concurrent_system, OVERLAP_SERIAL_SYSTEM, s)
        );
    }

    let mg = fig_multi_gpu(&machine);
    print_rows(
        &format!("Multi-GPU: {OVERLAP_WIDTH} independent GEMMs sharded across 1/2/4 devices"),
        &mg,
    );
    for s in MULTI_GPU_SIZES {
        println!(
            "  size {s}: 2 devices / 1 device = {:.2}x, 4 devices / 1 device = {:.2}x makespan \
             speedup (2 > 1 gated in CI), comm hidden under compute = {:.0}%",
            ratio(&mg, &multi_gpu_system(2), &multi_gpu_system(1), s),
            ratio(&mg, &multi_gpu_system(4), &multi_gpu_system(1), s),
            100.0 * find(&mg, MULTI_GPU_OVERLAP_SYSTEM, s)
        );
    }

    let fu = fig_fusion(&machine);
    print_rows(
        "Graph fusion: producer->consumer pairs, unfused vs FusionPolicy::Auto",
        &fu,
    );
    for s in FUSION_SIZES {
        println!(
            "  size {s}: chained-GEMM fused/unfused = {:.2}x, GEMM+Reduction fused/unfused = {:.2}x \
             (>= 1.00 by construction; gated in CI)",
            ratio(&fu, "Chained GEMM (fused)", "Chained GEMM (unfused)", s),
            ratio(
                &fu,
                "GEMM+Reduction pair (fused)",
                "GEMM+Reduction pair (unfused)",
                s
            )
        );
    }

    let (t, sweep_times) = fig_autotune_with_times(&machine);
    print_rows("Mapping autotune: hand-tuned H100 vs tuned vs guided", &t);
    for size in AUTOTUNE_SIZES {
        for (name, _, _, _) in autotune_entries(size) {
            println!(
                "  {name} @ {size}: autotuned/hand-tuned = {:.2}x (>= 1.00 by construction; gated in CI), \
                 guided/autotuned = {:.2}x (gated >= 0.95), candidates timed {:.0} vs {:.0} (gated <)",
                ratio(
                    &t,
                    &format!("{name} {AUTOTUNE_TUNED_SYSTEM}"),
                    &format!("{name} {AUTOTUNE_HAND_SYSTEM}"),
                    size
                ),
                ratio(
                    &t,
                    &format!("{name} {AUTOTUNE_GUIDED_SYSTEM}"),
                    &format!("{name} {AUTOTUNE_TUNED_SYSTEM}"),
                    size
                ),
                find(&t, &format!("{name} {AUTOTUNE_TIMED_GUIDED_SYSTEM}"), size),
                find(
                    &t,
                    &format!("{name} {AUTOTUNE_TIMED_EXHAUSTIVE_SYSTEM}"),
                    size
                ),
            );
        }
    }
    println!("\n  cold-sweep wall time (host-measured, not part of BENCH_figures.json):");
    for st in &sweep_times {
        println!(
            "  {:<16} @ {:>5}: exhaustive {:>7.1} ms, guided {:>7.1} ms ({:.2}x)",
            st.name,
            st.size,
            st.exhaustive_s * 1e3,
            st.guided_s * 1e3,
            st.exhaustive_s / st.guided_s
        );
    }

    let ft = fig_fault_tolerance(&machine);
    println!("\n=== Fault tolerance: recovery overhead (faulted/clean makespan ratio) ===");
    for r in &ft {
        println!("  {:<28} {:>8.3}x", r.system, r.tflops);
    }
    for devices in FAULT_DEVICES {
        let retry: Vec<String> = FAULT_TRANSIENTS
            .iter()
            .map(|&t| {
                format!(
                    "{t} transient = {:.3}x",
                    find(&ft, &fault_retry_system(devices, t), FAULT_SIZE)
                )
            })
            .collect();
        if devices > 1 {
            println!(
                "  {devices} devices: {} | device loss at 50% = {:.3}x (zero-fault == 1.000 and \
                 loss < 4x gated in CI)",
                retry.join(", "),
                find(&ft, &fault_loss_system(devices), FAULT_SIZE)
            );
        } else {
            println!("  {devices} device:  {}", retry.join(", "));
        }
    }

    let fun = fig_functional(&machine);
    println!("\n=== Functional data path (host-measured, Melem/s and graphs/s) ===");
    for r in &fun {
        println!("  {:<28} {:>12.1}", r.system, r.tflops);
    }
    println!(
        "  GEMM bytecode/fast-apply = {:.2}x (gated, jitter-tolerant), GEMM fast/scalar = {:.1}x (gated >= 3x), \
         attention fast/scalar = {:.1}x, \
         {FUNCTIONAL_FAN_OUT}-wide graph parallel/serial = {:.2}x (gated, jitter-tolerant)",
        ratio(
            &fun,
            "GEMM functional (bytecode)",
            "GEMM functional (fast)",
            FUNCTIONAL_SIZE
        ),
        ratio(
            &fun,
            "GEMM functional (fast)",
            "GEMM functional (scalar)",
            FUNCTIONAL_SIZE
        ),
        ratio(
            &fun,
            "Attention functional (fast)",
            "Attention functional (scalar)",
            FUNCTIONAL_SIZE
        ),
        ratio(
            &fun,
            "Fan-out graph (parallel)",
            "Fan-out graph (serial)",
            FUNCTIONAL_SIZE
        )
    );

    let json = rows_to_json(
        &[
            ("13a_gemm", &a),
            ("13b_batched_gemm", &b),
            ("13c_dual_gemm", &c),
            ("13d_gemm_reduction", &d),
            ("14_attention", &f),
            ("graph_overlap", &g),
            ("fig_multi_gpu", &mg),
            ("fig_fusion", &fu),
            ("fig_autotune", &t),
            ("fig_fault_tolerance", &ft),
            // Host-measured rows; excluded from the bit-identical
            // regeneration check in CI (see the workflow's sync step).
            ("fig_functional", &fun),
        ],
        &machine,
    );
    match std::fs::write("BENCH_figures.json", &json) {
        Ok(()) => println!(
            "\nwrote BENCH_figures.json ({} rows)",
            json.matches("\"figure\"").count()
        ),
        Err(e) => eprintln!("\nfailed to write BENCH_figures.json: {e}"),
    }
}
