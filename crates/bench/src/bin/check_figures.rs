//! CI gate over `BENCH_figures.json`: every figure must be present with
//! its full row count, every measured `tflops` value must be a finite,
//! positive number, and the autotune figure's tuned series must never
//! lose to the hand-tuned H100 mappings (`tuned_speedup >= 1.0` on
//! every paper kernel — the tuner's contract, since the hand-tuned
//! mapping is one of its candidates). A refactor that silently drops a
//! series, produces NaN, or regresses the tuner fails the build instead
//! of the perf trajectory.
//!
//! Run with `cargo run --release -p cypress-bench --bin check_figures`
//! (after the `figures` binary has written the file).

use std::process::ExitCode;

/// `(figure id, expected row count)` — sizes x systems per figure.
const EXPECTED: [(&str, usize); 11] = [
    ("13a_gemm", 9),             // 3 sizes x {Cypress, Triton, cuBLAS}
    ("13b_batched_gemm", 9),     // 3 sizes x {Cypress, Triton, cuBLAS}
    ("13c_dual_gemm", 6),        // 3 sizes x {Cypress, Triton}
    ("13d_gemm_reduction", 6),   // 3 sizes x {Cypress, Triton}
    ("14_attention", 24),        // 4 seqs x 6 systems
    ("graph_overlap", 6),        // 3 sizes x {serial, 8 streams}
    ("fig_multi_gpu", 12),       // 3 sizes x {1, 2, 4 devices, comm overlap}
    ("fig_fusion", 12),          // 3 sizes x 2 workloads x {unfused, fused}
    ("fig_autotune", 50), // 5 paper kernels x 2 sizes x {hand, tuned, guided, 2 timed counts}
    ("fig_functional", 7), // {GEMM, attention, fan-out graph} x {fast/parallel, scalar/serial} + GEMM bytecode
    ("fig_fault_tolerance", 11), // 3 device counts x 3 transient rates + device loss at 2 and 4
];

/// The functional data-path gates: `(winner, loser, minimum ratio)` per
/// measured size. GEMM must beat the retained scalar interpreter by at
/// least 3x (the acceptance bar of the data-path rewrite), the
/// pre-lowered bytecode frontend must never lose to the fast-apply IR
/// walk it replaced (it runs the same apply kernels and skips the
/// per-launch flatten, so it is structurally never slower); the rest
/// must never lose. The bytecode and graph gates carry a small
/// tolerance because their rows are independent wall-clock
/// measurements on a possibly contended runner, so the slack only
/// absorbs scheduler jitter, never a real regression (one executor
/// worker *is* the serial walk, and the bytecode VM replays the exact
/// applies the walk issues).
const FUNCTIONAL_GATES: [(&str, &str, f64); 4] = [
    ("GEMM functional (fast)", "GEMM functional (scalar)", 3.0),
    ("GEMM functional (bytecode)", "GEMM functional (fast)", 0.95),
    (
        "Attention functional (fast)",
        "Attention functional (scalar)",
        1.0,
    ),
    ("Fan-out graph (parallel)", "Fan-out graph (serial)", 0.95),
];

/// The fused workloads of the fusion figure.
const FUSION_WORKLOADS: [&str; 2] = ["Chained GEMM", "GEMM+Reduction pair"];

/// The sharded series of the multi-GPU figure (labels from
/// `cypress_bench::multi_gpu_system`).
const MULTI_GPU_SYSTEMS: [&str; 3] = [
    "Sharded (1 device)",
    "Sharded (2 devices)",
    "Sharded (4 devices)",
];

/// The comm-overlap series of the multi-GPU figure.
const MULTI_GPU_OVERLAP: &str = "Comm overlap (2 devices)";

/// Minimum `guided / autotuned` throughput ratio of the autotune
/// figure: the cost-model-guided sweep times only the predicted top
/// half, so its winner may trail the exhaustive winner by at most 5%.
const GUIDED_QUALITY_FLOOR: f64 = 0.95;

/// The five paper kernels of the autotune figure.
const AUTOTUNE_KERNELS: [&str; 5] = [
    "gemm",
    "batched_gemm",
    "dual_gemm",
    "gemm_reduction",
    "attention_fa3",
];

/// Ceiling on every fault-tolerance recovery ratio: retrying a couple
/// of transients or losing one of the devices halfway may cost up to —
/// but never reach — this factor of the clean makespan.
const FAULT_OVERHEAD_CEILING: f64 = 4.0;

/// Row label of the fault figure's transient-retry series (mirrors
/// `cypress_bench::fault_retry_system`).
fn fault_retry_label(devices: usize, transients: usize) -> String {
    let dev = if devices == 1 { "device" } else { "devices" };
    let tr = if transients == 1 {
        "transient"
    } else {
        "transients"
    };
    format!("Retry ({devices} {dev}, {transients} {tr})")
}

/// The fault-tolerance gate: the zero-fault control costs *exactly*
/// nothing (the fault machinery must be bit-free when no fault fires),
/// transient retries cost something but stay bounded, and device-loss
/// recovery completes within the overhead ceiling.
fn check_fault_tolerance(json: &str) -> Result<(), String> {
    let rows = figure_rows(json, "fig_fault_tolerance");
    if rows.is_empty() {
        return Err("fig_fault_tolerance: no rows found".to_string());
    }
    let find = |system: &str| {
        rows.iter()
            .find(|(s, _, _)| s == system)
            .map(|(_, _, t)| *t)
            .ok_or_else(|| format!("fig_fault_tolerance: missing series `{system}`"))
    };
    for devices in [1usize, 2, 4] {
        for transients in [0usize, 1, 2] {
            let label = fault_retry_label(devices, transients);
            let v = find(&label)?;
            if transients == 0 {
                if v != 1.0 {
                    return Err(format!(
                        "fig_fault_tolerance: `{label}` is {v:.3} (gate: exactly 1.0) — \
                         an attached-but-silent fault plan must not change the schedule \
                         by a single bit"
                    ));
                }
            } else if v <= 1.0 || v > FAULT_OVERHEAD_CEILING {
                return Err(format!(
                    "fig_fault_tolerance: `{label}` is {v:.3} (gate: within \
                     (1.0, {FAULT_OVERHEAD_CEILING:.1}]) — a retried transient must cost \
                     something and recovery must stay bounded"
                ));
            }
        }
        if devices > 1 {
            let label = format!("Device loss ({devices} devices)");
            let v = find(&label)?;
            if !(1.0..FAULT_OVERHEAD_CEILING).contains(&v) {
                return Err(format!(
                    "fig_fault_tolerance: `{label}` is {v:.3} (gate: within \
                     [1.0, {FAULT_OVERHEAD_CEILING:.1})) — re-sharding onto survivors \
                     must complete without blowing the overhead ceiling"
                ));
            }
        }
    }
    Ok(())
}

/// Extract `(system, size, tflops)` triples of one figure's rows.
fn figure_rows(json: &str, figure: &str) -> Vec<(String, u64, f64)> {
    let needle = format!("\"figure\": \"{figure}\"");
    json.split('{')
        .filter(|chunk| chunk.contains(&needle))
        .filter_map(|chunk| {
            let system = chunk.split("\"system\": \"").nth(1)?.split('"').next()?;
            let size = chunk
                .split("\"size\": ")
                .nth(1)?
                .split(['}', ','])
                .next()?
                .trim()
                .parse()
                .ok()?;
            let tflops = chunk
                .split("\"tflops\": ")
                .nth(1)?
                .split(['}', ','])
                .next()?
                .trim()
                .parse()
                .ok()?;
            Some((system.to_string(), size, tflops))
        })
        .collect()
}

/// The autotune gate: for every paper kernel at every measured size,
/// `autotuned >= hand-tuned`.
fn check_autotune(json: &str) -> Result<(), String> {
    let rows = figure_rows(json, "fig_autotune");
    let sizes: std::collections::BTreeSet<u64> = rows.iter().map(|(_, s, _)| *s).collect();
    if sizes.is_empty() {
        return Err("fig_autotune: no rows found".to_string());
    }
    for &size in &sizes {
        for kernel in AUTOTUNE_KERNELS {
            let find = |suffix: &str| {
                let system = format!("{kernel} {suffix}");
                rows.iter()
                    .find(|(s, sz, _)| *s == system && *sz == size)
                    .map(|(_, _, t)| *t)
                    .ok_or_else(|| {
                        format!("fig_autotune: missing series `{system}` at size {size}")
                    })
            };
            let hand = find("hand-tuned")?;
            let tuned = find("autotuned")?;
            if tuned < hand {
                return Err(format!(
                    "fig_autotune: `{kernel}` at size {size} has tuned_speedup {:.4} < 1.0 \
                     ({tuned:.3} vs hand-tuned {hand:.3} TFLOP/s) — the tuner must never \
                     lose, the hand-tuned mapping is one of its candidates",
                    tuned / hand
                ));
            }
            let guided = find("guided")?;
            if guided < GUIDED_QUALITY_FLOOR * tuned {
                return Err(format!(
                    "fig_autotune: `{kernel}` at size {size} has guided_quality {:.4} < \
                     {GUIDED_QUALITY_FLOOR} ({guided:.3} vs autotuned {tuned:.3} TFLOP/s) — \
                     the cost model's top half no longer contains a near-best candidate",
                    guided / tuned
                ));
            }
            let timed_guided = find("candidates timed (guided)")?;
            let timed_exhaustive = find("candidates timed (exhaustive)")?;
            if timed_guided >= timed_exhaustive {
                return Err(format!(
                    "fig_autotune: `{kernel}` at size {size} timed {timed_guided:.0} candidates \
                     under the guided budget but {timed_exhaustive:.0} exhaustively — the guided \
                     sweep must simulate strictly fewer candidates"
                ));
            }
        }
    }
    Ok(())
}

/// The multi-GPU gate: at every measured size the 2-device shard
/// strictly beats the 1-device control on the 8-wide fan-out graph (the
/// roots are independent, so splitting them across devices must shorten
/// the makespan), and the comm-overlap series stays a valid fraction.
fn check_multi_gpu(json: &str) -> Result<(), String> {
    let rows = figure_rows(json, "fig_multi_gpu");
    let sizes: std::collections::BTreeSet<u64> = rows.iter().map(|(_, s, _)| *s).collect();
    if sizes.is_empty() {
        return Err("fig_multi_gpu: no rows found".to_string());
    }
    for &size in &sizes {
        let find = |system: &str| {
            rows.iter()
                .find(|(s, sz, _)| s == system && *sz == size)
                .map(|(_, _, t)| *t)
                .ok_or_else(|| format!("fig_multi_gpu: missing series `{system}` at size {size}"))
        };
        let [one, two, four] = MULTI_GPU_SYSTEMS.map(&find);
        let (one, two) = (one?, two?);
        four?;
        if two <= one {
            return Err(format!(
                "fig_multi_gpu: `{}` at size {size} does not beat `{}` \
                 ({two:.3} vs {one:.3} TFLOP/s, gate: strictly greater) — sharding the \
                 independent fan-out across two devices must shorten the makespan",
                MULTI_GPU_SYSTEMS[1], MULTI_GPU_SYSTEMS[0]
            ));
        }
        let overlap = find(MULTI_GPU_OVERLAP)?;
        if overlap > 1.0 {
            return Err(format!(
                "fig_multi_gpu: `{MULTI_GPU_OVERLAP}` at size {size} is {overlap:.3} — \
                 the hidden fraction of transfer cycles cannot exceed 1"
            ));
        }
    }
    Ok(())
}

/// The fusion gate: for every workload at every measured size, the
/// fused series never loses to the unfused one — the session's
/// simulator gate only applies rewrites that win, so a regression here
/// means the gate (or a fused kernel) broke.
fn check_fusion(json: &str) -> Result<(), String> {
    let rows = figure_rows(json, "fig_fusion");
    let sizes: std::collections::BTreeSet<u64> = rows.iter().map(|(_, s, _)| *s).collect();
    if sizes.is_empty() {
        return Err("fig_fusion: no rows found".to_string());
    }
    for &size in &sizes {
        for workload in FUSION_WORKLOADS {
            let find = |suffix: &str| {
                let system = format!("{workload} ({suffix})");
                rows.iter()
                    .find(|(s, sz, _)| *s == system && *sz == size)
                    .map(|(_, _, t)| *t)
                    .ok_or_else(|| format!("fig_fusion: missing series `{system}` at size {size}"))
            };
            let unfused = find("unfused")?;
            let fused = find("fused")?;
            if fused < unfused {
                return Err(format!(
                    "fig_fusion: `{workload}` at size {size} lost under fusion \
                     ({fused:.3} vs {unfused:.3} TFLOP/s, gate: fused >= unfused) — \
                     the simulator gate must leave losing rewrites unfused"
                ));
            }
        }
    }
    Ok(())
}

/// The functional gate: the fast data path and the parallel executor
/// never lose to the scalar/serial baselines they replaced, and GEMM
/// clears the 3x acceptance bar.
fn check_functional(json: &str) -> Result<(), String> {
    let rows = figure_rows(json, "fig_functional");
    let sizes: std::collections::BTreeSet<u64> = rows.iter().map(|(_, s, _)| *s).collect();
    if sizes.is_empty() {
        return Err("fig_functional: no rows found".to_string());
    }
    for &size in &sizes {
        for (winner, loser, floor) in FUNCTIONAL_GATES {
            let find = |system: &str| {
                rows.iter()
                    .find(|(s, sz, _)| s == system && *sz == size)
                    .map(|(_, _, t)| *t)
                    .ok_or_else(|| {
                        format!("fig_functional: missing series `{system}` at size {size}")
                    })
            };
            let won = find(winner)?;
            let lost = find(loser)?;
            if won < floor * lost {
                return Err(format!(
                    "fig_functional: `{winner}` at size {size} is only {:.2}x of \
                     `{loser}` ({won:.1} vs {lost:.1}), below the {floor:.1}x gate",
                    won / lost
                ));
            }
        }
    }
    Ok(())
}

fn check(json: &str) -> Result<usize, String> {
    let mut total = 0;
    for (figure, expected) in EXPECTED {
        let needle = format!("\"figure\": \"{figure}\"");
        let count = json.matches(&needle).count();
        if count != expected {
            return Err(format!(
                "figure `{figure}`: expected {expected} rows, found {count}"
            ));
        }
        total += count;
    }
    let rows = json.matches("\"figure\"").count();
    if rows != total {
        return Err(format!(
            "{rows} rows in file but only {total} accounted for by known figures"
        ));
    }
    // Every tflops value must parse as a finite, positive number. NaN and
    // infinity are not valid JSON numbers, so they would also corrupt the
    // file — catch them by name, and name the offending row so the CI log
    // says *which* measurement went bad, not just that one did.
    let field = |chunk: &str, key: &str| {
        chunk
            .split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|rest| rest.split(['}', ',']).next())
            .unwrap_or("?")
            .trim()
            .trim_matches('"')
            .to_string()
    };
    let mut values = 0;
    for chunk in json.split('{').filter(|c| c.contains("\"tflops\": ")) {
        let raw = field(chunk, "tflops");
        let row = format!(
            "row {{figure: {}, system: {}, size: {}}}",
            field(chunk, "figure"),
            field(chunk, "system"),
            field(chunk, "size")
        );
        let v: f64 = raw
            .parse()
            .map_err(|e| format!("{row}: tflops `{raw}` does not parse: {e}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "{row}: tflops `{raw}` is not a finite positive number \
                 (gate: finite and > 0)"
            ));
        }
        values += 1;
    }
    if values != rows {
        return Err(format!("{rows} rows but {values} tflops values"));
    }
    check_autotune(json)?;
    check_multi_gpu(json)?;
    check_fusion(json)?;
    check_functional(json)?;
    check_fault_tolerance(json)?;
    Ok(rows)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_figures.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check_figures: cannot read {path}: {e} (run the `figures` binary first)");
            return ExitCode::FAILURE;
        }
    };
    match check(&json) {
        Ok(rows) => {
            println!("check_figures: {path} ok ({rows} rows, all figures present, no NaN)");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_figures: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{check, AUTOTUNE_KERNELS};

    fn row_with_system(figure: &str, system: &str, size: usize, tflops: &str) -> String {
        format!(
            "    {{\"figure\": \"{figure}\", \"system\": \"{system}\", \"size\": {size}, \"tflops\": {tflops}}}"
        )
    }

    fn row(figure: &str, tflops: &str) -> String {
        row_with_system(figure, "s", 1, tflops)
    }

    fn full_file(overrides: &[(usize, &str)]) -> String {
        let mut rows = Vec::new();
        for (figure, count) in super::EXPECTED {
            if figure == "fig_autotune" {
                for size in [512, 4096] {
                    for kernel in AUTOTUNE_KERNELS {
                        for (suffix, tflops) in [
                            ("hand-tuned", "100.0"),
                            ("autotuned", "110.0"),
                            ("guided", "110.0"),
                            ("candidates timed (guided)", "6.0"),
                            ("candidates timed (exhaustive)", "12.0"),
                        ] {
                            rows.push(row_with_system(
                                figure,
                                &format!("{kernel} {suffix}"),
                                size,
                                tflops,
                            ));
                        }
                    }
                }
            } else if figure == "fig_fusion" {
                for size in [256, 512, 1024] {
                    for workload in super::FUSION_WORKLOADS {
                        rows.push(row_with_system(
                            figure,
                            &format!("{workload} (unfused)"),
                            size,
                            "50.0",
                        ));
                        rows.push(row_with_system(
                            figure,
                            &format!("{workload} (fused)"),
                            size,
                            "75.0",
                        ));
                    }
                }
            } else if figure == "fig_multi_gpu" {
                for size in [256, 512, 1024] {
                    for (system, tflops) in [
                        ("Sharded (1 device)", "50.0"),
                        ("Sharded (2 devices)", "90.0"),
                        ("Sharded (4 devices)", "150.0"),
                        ("Comm overlap (2 devices)", "0.8"),
                    ] {
                        rows.push(row_with_system(figure, system, size, tflops));
                    }
                }
            } else if figure == "fig_fault_tolerance" {
                for devices in [1usize, 2, 4] {
                    for (transients, tflops) in [(0, "1.000"), (1, "1.150"), (2, "1.300")] {
                        rows.push(row_with_system(
                            figure,
                            &super::fault_retry_label(devices, transients),
                            1024,
                            tflops,
                        ));
                    }
                    if devices > 1 {
                        rows.push(row_with_system(
                            figure,
                            &format!("Device loss ({devices} devices)"),
                            1024,
                            "1.800",
                        ));
                    }
                }
            } else if figure == "fig_functional" {
                // One row per distinct system ("GEMM functional (fast)"
                // appears in two gates); values satisfy every gate:
                // bytecode >= fast >= 3x scalar, parallel >= serial.
                for (system, tflops) in [
                    ("GEMM functional (bytecode)", "410.0"),
                    ("GEMM functional (fast)", "400.0"),
                    ("GEMM functional (scalar)", "100.0"),
                    ("Attention functional (fast)", "400.0"),
                    ("Attention functional (scalar)", "100.0"),
                    ("Fan-out graph (parallel)", "400.0"),
                    ("Fan-out graph (serial)", "100.0"),
                ] {
                    rows.push(row_with_system(figure, system, 256, tflops));
                }
            } else {
                for _ in 0..count {
                    rows.push(row(figure, "123.456"));
                }
            }
        }
        for &(i, tflops) in overrides {
            rows[i] = row(super::EXPECTED[0].0, tflops);
        }
        format!("{{\n  \"rows\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }

    #[test]
    fn complete_file_passes() {
        assert_eq!(check(&full_file(&[])), Ok(152));
    }

    #[test]
    fn nonfree_zero_fault_control_fails() {
        // 1.001: a silent fault plan that perturbs the schedule at all.
        let json = full_file(&[]).replacen(
            "\"system\": \"Retry (2 devices, 0 transients)\", \"size\": 1024, \"tflops\": 1.000",
            "\"system\": \"Retry (2 devices, 0 transients)\", \"size\": 1024, \"tflops\": 1.001",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Retry (2 devices, 0 transients)"), "{err}");
        assert!(err.contains("exactly 1.0"), "{err}");
    }

    #[test]
    fn free_transient_retry_fails() {
        // A retried transient consumes its failed attempt's cycles, so
        // a ratio of exactly 1.0 means the fault never fired.
        let json = full_file(&[]).replacen(
            "\"system\": \"Retry (1 device, 1 transient)\", \"size\": 1024, \"tflops\": 1.150",
            "\"system\": \"Retry (1 device, 1 transient)\", \"size\": 1024, \"tflops\": 1.000",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Retry (1 device, 1 transient)"), "{err}");
        assert!(err.contains("must cost something"), "{err}");
    }

    #[test]
    fn unbounded_device_loss_recovery_fails() {
        let json = full_file(&[]).replacen(
            "\"system\": \"Device loss (4 devices)\", \"size\": 1024, \"tflops\": 1.800",
            "\"system\": \"Device loss (4 devices)\", \"size\": 1024, \"tflops\": 4.500",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Device loss (4 devices)"), "{err}");
        assert!(err.contains("overhead ceiling"), "{err}");
    }

    #[test]
    fn two_device_shard_not_beating_one_fails() {
        // A tie is already a failure: the gate is strictly greater.
        let json = full_file(&[]).replacen(
            "\"system\": \"Sharded (2 devices)\", \"size\": 512, \"tflops\": 90.0",
            "\"system\": \"Sharded (2 devices)\", \"size\": 512, \"tflops\": 50.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Sharded (2 devices)"), "{err}");
        assert!(err.contains("512"), "{err}");
        assert!(err.contains("strictly greater"), "{err}");
    }

    #[test]
    fn comm_overlap_above_one_fails() {
        let json = full_file(&[]).replacen(
            "\"system\": \"Comm overlap (2 devices)\", \"size\": 1024, \"tflops\": 0.8",
            "\"system\": \"Comm overlap (2 devices)\", \"size\": 1024, \"tflops\": 1.2",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Comm overlap"), "{err}");
        assert!(err.contains("cannot exceed 1"), "{err}");
    }

    #[test]
    fn missing_multi_gpu_series_fails() {
        let json = full_file(&[]).replacen(
            "\"system\": \"Sharded (4 devices)\", \"size\": 256",
            "\"system\": \"Sharded (5 devices)\", \"size\": 256",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(
            err.contains("missing series `Sharded (4 devices)`"),
            "{err}"
        );
    }

    #[test]
    fn guided_quality_below_floor_fails() {
        // 0.90x of the exhaustive winner: below the 0.95 gate.
        let json = full_file(&[]).replacen(
            "\"system\": \"gemm guided\", \"size\": 4096, \"tflops\": 110.0",
            "\"system\": \"gemm guided\", \"size\": 4096, \"tflops\": 99.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("guided_quality"), "{err}");
        assert!(err.contains("`gemm`"), "{err}");
    }

    #[test]
    fn guided_quality_at_floor_passes() {
        let json = full_file(&[]).replacen(
            "\"system\": \"gemm guided\", \"size\": 4096, \"tflops\": 110.0",
            "\"system\": \"gemm guided\", \"size\": 4096, \"tflops\": 104.5",
            1,
        );
        assert!(check(&json).is_ok());
    }

    #[test]
    fn guided_timing_as_many_candidates_fails() {
        // Equal counts mean the guided sweep saved nothing.
        let json = full_file(&[]).replacen(
            "\"system\": \"dual_gemm candidates timed (guided)\", \"size\": 512, \"tflops\": 6.0",
            "\"system\": \"dual_gemm candidates timed (guided)\", \"size\": 512, \"tflops\": 12.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("strictly fewer"), "{err}");
        assert!(err.contains("`dual_gemm`"), "{err}");
    }

    #[test]
    fn functional_gemm_below_3x_fails() {
        // 2.5x over the scalar path: above 1 but below the 3x gate.
        let json = full_file(&[]).replacen(
            "\"system\": \"GEMM functional (fast)\", \"size\": 256, \"tflops\": 400.0",
            "\"system\": \"GEMM functional (fast)\", \"size\": 256, \"tflops\": 250.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("below the 3.0x gate"), "{err}");
    }

    #[test]
    fn functional_bytecode_regression_fails() {
        // Bytecode dipping below the fast-apply walk it replaced (past
        // the jitter slack) fails.
        let json = full_file(&[]).replacen(
            "\"system\": \"GEMM functional (bytecode)\", \"size\": 256, \"tflops\": 410.0",
            "\"system\": \"GEMM functional (bytecode)\", \"size\": 256, \"tflops\": 360.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("GEMM functional (bytecode)"), "{err}");
        assert!(err.contains("gate"), "{err}");
    }

    #[test]
    fn parallel_graph_regression_fails() {
        let json = full_file(&[]).replacen(
            "\"system\": \"Fan-out graph (parallel)\", \"size\": 256, \"tflops\": 400.0",
            "\"system\": \"Fan-out graph (parallel)\", \"size\": 256, \"tflops\": 90.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("Fan-out graph (parallel)"), "{err}");
    }

    #[test]
    fn fusion_regression_fails() {
        // Flip one workload's fused row below its unfused row.
        let json = full_file(&[]).replacen(
            "\"system\": \"Chained GEMM (fused)\", \"size\": 512, \"tflops\": 75.0",
            "\"system\": \"Chained GEMM (fused)\", \"size\": 512, \"tflops\": 40.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("lost under fusion"), "{err}");
        assert!(err.contains("512"), "{err}");
    }

    #[test]
    fn missing_rows_fail() {
        let json = full_file(&[]).replacen("\"figure\": \"13a_gemm\"", "\"figure\": \"gone\"", 1);
        assert!(check(&json).unwrap_err().contains("13a_gemm"));
    }

    #[test]
    fn nan_fails_and_names_the_row() {
        let json = full_file(&[(0, "NaN")]);
        let err = check(&json).unwrap_err();
        assert!(err.contains("NaN"), "{err}");
        assert!(err.contains("figure: 13a_gemm"), "{err}");
        assert!(err.contains("system: s"), "{err}");
    }

    #[test]
    fn zero_fails() {
        let json = full_file(&[(1, "0.000")]);
        assert!(check(&json).is_err());
    }

    #[test]
    fn tuned_regression_fails() {
        // Flip one kernel's tuned row below its hand-tuned row.
        let json = full_file(&[]).replacen(
            "\"system\": \"gemm autotuned\", \"size\": 4096, \"tflops\": 110.0",
            "\"system\": \"gemm autotuned\", \"size\": 4096, \"tflops\": 90.0",
            1,
        );
        let err = check(&json).unwrap_err();
        assert!(err.contains("tuned_speedup"), "{err}");
        assert!(err.contains("`gemm`"), "{err}");
        assert!(err.contains("4096"), "{err}");
    }

    #[test]
    fn tuned_tie_passes() {
        // Hand-tuned already optimal: equal rows are fine.
        let json = full_file(&[]).replacen(
            "\"system\": \"gemm autotuned\", \"size\": 4096, \"tflops\": 110.0",
            "\"system\": \"gemm autotuned\", \"size\": 4096, \"tflops\": 100.0",
            1,
        );
        assert!(check(&json).is_ok());
    }
}
