//! CI gate over `BENCH_figures.json`: every figure must be present with
//! its full row count, and every measured `tflops` value must be a
//! finite, positive number. A refactor that silently drops a series or
//! produces NaN fails the build instead of the perf trajectory.
//!
//! Run with `cargo run --release -p cypress-bench --bin check_figures`
//! (after the `figures` binary has written the file).

use std::process::ExitCode;

/// `(figure id, expected row count)` — sizes x systems per figure.
const EXPECTED: [(&str, usize); 6] = [
    ("13a_gemm", 9),           // 3 sizes x {Cypress, Triton, cuBLAS}
    ("13b_batched_gemm", 9),   // 3 sizes x {Cypress, Triton, cuBLAS}
    ("13c_dual_gemm", 6),      // 3 sizes x {Cypress, Triton}
    ("13d_gemm_reduction", 6), // 3 sizes x {Cypress, Triton}
    ("14_attention", 24),      // 4 seqs x 6 systems
    ("graph_overlap", 6),      // 3 sizes x {serial, 8 streams}
];

fn check(json: &str) -> Result<usize, String> {
    let mut total = 0;
    for (figure, expected) in EXPECTED {
        let needle = format!("\"figure\": \"{figure}\"");
        let count = json.matches(&needle).count();
        if count != expected {
            return Err(format!(
                "figure `{figure}`: expected {expected} rows, found {count}"
            ));
        }
        total += count;
    }
    let rows = json.matches("\"figure\"").count();
    if rows != total {
        return Err(format!(
            "{rows} rows in file but only {total} accounted for by known figures"
        ));
    }
    // Every tflops value must parse as a finite, positive number. NaN and
    // infinity are not valid JSON numbers, so they would also corrupt the
    // file — catch them by name.
    let mut values = 0;
    for chunk in json.split("\"tflops\": ").skip(1) {
        let end = chunk
            .find(['}', ','])
            .ok_or_else(|| "unterminated tflops value".to_string())?;
        let raw = chunk[..end].trim();
        let v: f64 = raw
            .parse()
            .map_err(|e| format!("tflops `{raw}` does not parse: {e}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("tflops `{raw}` is not a finite positive number"));
        }
        values += 1;
    }
    if values != rows {
        return Err(format!("{rows} rows but {values} tflops values"));
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_figures.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check_figures: cannot read {path}: {e} (run the `figures` binary first)");
            return ExitCode::FAILURE;
        }
    };
    match check(&json) {
        Ok(rows) => {
            println!("check_figures: {path} ok ({rows} rows, all figures present, no NaN)");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_figures: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    fn row(figure: &str, tflops: &str) -> String {
        format!("    {{\"figure\": \"{figure}\", \"system\": \"s\", \"size\": 1, \"tflops\": {tflops}}}")
    }

    fn full_file(overrides: &[(usize, &str)]) -> String {
        let mut rows = Vec::new();
        for (figure, count) in super::EXPECTED {
            for _ in 0..count {
                rows.push(row(figure, "123.456"));
            }
        }
        for &(i, tflops) in overrides {
            rows[i] = row(super::EXPECTED[0].0, tflops);
        }
        format!("{{\n  \"rows\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }

    #[test]
    fn complete_file_passes() {
        assert_eq!(check(&full_file(&[])), Ok(60));
    }

    #[test]
    fn missing_rows_fail() {
        let json = full_file(&[]).replacen("\"figure\": \"13a_gemm\"", "\"figure\": \"gone\"", 1);
        assert!(check(&json).unwrap_err().contains("13a_gemm"));
    }

    #[test]
    fn nan_fails() {
        let json = full_file(&[(0, "NaN")]);
        assert!(check(&json).unwrap_err().contains("NaN"));
    }

    #[test]
    fn zero_fails() {
        let json = full_file(&[(1, "0.000")]);
        assert!(check(&json).is_err());
    }
}
