//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small subset of the `rand` API the repo actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over
//! half-open numeric ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across runs and platforms, which is exactly
//! what reproducible tests and the runtime's determinism guarantees need.

use std::ops::Range;

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Sample a value of type `T` (only `f32`/`f64` in `[0,1)` supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types that can be sampled from the "standard" distribution.
pub trait Standard: Sized {
    /// Sample from the standard distribution (`[0,1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform double in [0,1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (unit_f64(rng) as f32) * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + unit_f64(rng) * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
        }
    }
}
