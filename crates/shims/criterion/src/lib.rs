//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the repo's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: a short warm-up, then `sample_size`
//! timed iterations reported as mean ns/iter on stdout.
//!
//! **Smoke mode**: invoking a bench binary with `--smoke` (i.e.
//! `cargo bench -p cypress-bench -- --smoke`) or with
//! `CYPRESS_BENCH_SMOKE` set runs every benchmark exactly once with no
//! warm-up — enough for CI to prove benches compile and execute without
//! paying for full iterations.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            samples: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.samples, f);
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// `true` when the bench binary should run each benchmark once, without
/// warm-up or repeated samples (CI compile-and-run verification).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke") || std::env::var_os("CYPRESS_BENCH_SMOKE").is_some()
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let smoke = smoke_mode();
    let samples = if smoke { 1 } else { samples };
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    if !smoke {
        // Warm-up pass (also primes lazy setup in the closure).
        f(&mut b);
    }
    b.iters = samples as u64;
    b.elapsed_ns = 0.0;
    f(&mut b);
    let mean = b.elapsed_ns / samples as f64;
    let tag = if smoke { ", smoke" } else { "" };
    println!("  {id:<40} {mean:>14.0} ns/iter ({samples} samples{tag})");
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine`, running it once per configured sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u64;
        g.sample_size(3)
            .bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up (1) + samples (3), for each of the two bench_function passes
        assert_eq!(runs, 4);
    }
}
