//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the repo's property tests use: the `proptest!`
//! macro over functions whose arguments are drawn from half-open numeric
//! ranges, plus `prop_assert!` / `prop_assert_eq!`. Each property runs a
//! fixed number of deterministic cases (no shrinking); failures panic with
//! the offending inputs via the assertion message.

use rand::rngs::StdRng;

/// Cases run per property.
pub const NUM_CASES: usize = 128;

/// A source of values for one property argument.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.start..self.end)
    }
}

/// A strategy that always yields the same value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                use rand::SeedableRng;
                let mut prop_rng = rand::rngs::StdRng::seed_from_u64(0xC1_9E55u64);
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use crate::prelude::*;

    proptest! {
        /// Ranges produce in-bounds values for every case.
        #[test]
        fn range_strategy_in_bounds(x in 3usize..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "{} out of range", f);
        }
    }

    #[test]
    fn runs_all_cases() {
        range_strategy_in_bounds();
    }
}
