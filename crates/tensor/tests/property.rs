//! Property-based tests of the tensor substrate's core invariants.

use cypress_tensor::partition::{MmaLevel, MmaOperand};
use cypress_tensor::{blocks, f16, mma, Layout, MmaInstr, Swizzle};
use proptest::prelude::*;

proptest! {
    /// Every f32 that is exactly a half value round-trips bit-exactly.
    #[test]
    fn f16_round_trip_is_identity_on_halfs(bits in 0u16..0x7C00u16) {
        let h = f16::from_bits(bits);
        let back = f16::from_f32(h.to_f32());
        prop_assert_eq!(back.to_bits(), bits);
    }

    /// Conversion is monotone on positive finite values.
    #[test]
    fn f16_conversion_is_monotone(a in 0.0f32..60000.0, b in 0.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16::from_f32(lo).to_f32() <= f16::from_f32(hi).to_f32());
    }

    /// Rounding error is within half a ULP of the binary16 format.
    #[test]
    fn f16_error_is_bounded(x in -60000.0f32..60000.0) {
        let h = f16::from_f32(x).to_f32();
        prop_assert!((h - x).abs() <= x.abs() * 0.001 + 6e-8, "{} -> {}", x, h);
    }

    /// XOR swizzles permute any power-of-two address range.
    #[test]
    fn swizzle_is_a_permutation(bits in 1u8..4, base in 0u8..4, shift in 1u8..4) {
        let sw = Swizzle::new(bits, base, shift);
        let n = 1usize << (bits + base + shift + 2);
        let mut seen = vec![false; n];
        for o in 0..n {
            let s = sw.apply(o);
            prop_assert!(s < n);
            prop_assert!(!seen[s]);
            seen[s] = true;
        }
    }

    /// Row-major layouts enumerate every offset exactly once.
    #[test]
    fn layout_is_bijective(r in 1usize..12, c in 1usize..12) {
        let l = Layout::row_major(&[r, c]);
        let mut seen = vec![false; r * c];
        for i in 0..r {
            for j in 0..c {
                let o = l.offset(&[i, j]).unwrap();
                prop_assert!(!seen[o]);
                seen[o] = true;
            }
        }
    }

    /// Blocks partitions are always disjoint and complete when they divide.
    #[test]
    fn blocks_partition_disjoint_complete(
        gr in 1usize..5, gc in 1usize..5, tr in 1usize..5, tc in 1usize..5
    ) {
        let shape = [gr * tr, gc * tc];
        let p = blocks(&shape, &[tr, tc]).unwrap();
        prop_assert!(p.is_disjoint());
        prop_assert!(p.is_complete());
        prop_assert_eq!(p.num_pieces(), gr * gc);
    }

    /// The thread-level WGMMA accumulator partition is disjoint, complete,
    /// and gives every lane the same number of elements, for every legal
    /// instruction width.
    #[test]
    fn mma_thread_partition_invariants(nmul in 1usize..32) {
        let n = nmul * 8;
        let instr = MmaInstr::wgmma(n).unwrap();
        let p = mma(&[16, n], instr, MmaLevel::Thread, MmaOperand::C).unwrap();
        prop_assert!(p.is_disjoint());
        prop_assert!(p.is_complete());
        let per_lane = 16 * n / 32;
        for piece in p.iter() {
            prop_assert_eq!(piece.num_elements(), per_lane);
        }
    }
}
