//! Sub-tensor views with compacted coordinate systems.
//!
//! Partitioning operators (paper §3.2) produce sub-tensors that "need not
//! contain contiguous sets of elements in the original tensor as each
//! sub-tensor is given a new compacted, origin-based coordinate system".
//! [`TensorView`] captures exactly that: a compacted shape plus an
//! [`IndexMap`] from compacted coordinates to parent coordinates.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Map from a view's compacted coordinates to parent-tensor coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexMap {
    /// `parent[d] = offset[d] + coord[d]` — produced by the `blocks`
    /// partitioning operator and by warp-level MMA row groups.
    Affine {
        /// Per-dimension offset into the parent.
        offset: Vec<usize>,
    },
    /// Arbitrary per-element mapping — produced by the thread-level `mma`
    /// partitioning swizzle of Fig. 4. `table[i]` is the parent coordinate
    /// of the view element with row-major linear index `i`.
    Gather {
        /// Parent coordinate per linearized view element.
        table: Vec<Vec<usize>>,
    },
}

/// A logically non-contiguous sub-tensor with origin-based coordinates.
///
/// # Example
///
/// ```
/// use cypress_tensor::{TensorView, IndexMap};
///
/// let v = TensorView::affine(vec![2, 2], vec![4, 8]);
/// assert_eq!(v.to_parent(&[1, 1]).unwrap(), vec![5, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorView {
    shape: Vec<usize>,
    map: IndexMap,
}

impl TensorView {
    /// An affine view of `shape` rooted at `offset` in the parent.
    #[must_use]
    pub fn affine(shape: Vec<usize>, offset: Vec<usize>) -> Self {
        debug_assert_eq!(shape.len(), offset.len());
        TensorView {
            shape,
            map: IndexMap::Affine { offset },
        }
    }

    /// A gather view; `table` must have exactly `shape.iter().product()`
    /// entries, one parent coordinate per linearized view element.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the table length disagrees with the shape.
    #[must_use]
    pub fn gather(shape: Vec<usize>, table: Vec<Vec<usize>>) -> Self {
        debug_assert_eq!(shape.iter().product::<usize>(), table.len());
        TensorView {
            shape,
            map: IndexMap::Gather { table },
        }
    }

    /// A view covering an entire parent of shape `shape` (identity map).
    #[must_use]
    pub fn identity(shape: Vec<usize>) -> Self {
        let offset = vec![0; shape.len()];
        TensorView::affine(shape, offset)
    }

    /// The compacted, origin-based shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The index map.
    #[must_use]
    pub fn index_map(&self) -> &IndexMap {
        &self.map
    }

    /// Number of elements in the view.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// `true` if the view is affine (a contiguous box in the parent).
    #[must_use]
    pub fn is_affine(&self) -> bool {
        matches!(self.map, IndexMap::Affine { .. })
    }

    /// Translate a compacted coordinate to the parent coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for coordinates outside the
    /// view and [`TensorError::RankMismatch`] on rank disagreement.
    pub fn to_parent(&self, coord: &[usize]) -> Result<Vec<usize>, TensorError> {
        if coord.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                actual: coord.len(),
            });
        }
        for (c, s) in coord.iter().zip(self.shape.iter()) {
            if c >= s {
                return Err(TensorError::IndexOutOfBounds {
                    index: coord.to_vec(),
                    bounds: self.shape.clone(),
                });
            }
        }
        match &self.map {
            IndexMap::Affine { offset } => Ok(coord
                .iter()
                .zip(offset.iter())
                .map(|(c, o)| c + o)
                .collect()),
            IndexMap::Gather { table } => {
                let mut lin = 0usize;
                for (c, s) in coord.iter().zip(self.shape.iter()) {
                    lin = lin * s + c;
                }
                Ok(table[lin].clone())
            }
        }
    }

    /// Iterate all `(view_coord, parent_coord)` pairs in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        CoordIter::new(&self.shape).map(move |c| {
            let p = self.to_parent(&c).expect("iterator stays in bounds");
            (c, p)
        })
    }

    /// Copy the viewed elements out of `parent` into a fresh dense tensor
    /// with the compacted shape (an explicit "copy-in" in the compiler's
    /// copy-in/copy-out discipline, §4.2.1).
    ///
    /// # Errors
    ///
    /// Propagates indexing errors if the view exceeds the parent.
    pub fn read_from(&self, parent: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::zeros(parent.dtype(), &self.shape);
        for (vc, pc) in self.iter_coords() {
            let v = parent.get(&pc)?;
            out.set(&vc, v)?;
        }
        Ok(out)
    }

    /// Scatter `values` (with the compacted shape) back into `parent`
    /// through the view (an explicit "copy-out").
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `values` does not have the
    /// compacted shape, and propagates indexing errors.
    pub fn write_to(&self, values: &Tensor, parent: &mut Tensor) -> Result<(), TensorError> {
        if values.shape() != self.shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: values.shape().to_vec(),
            });
        }
        for (vc, pc) in self.iter_coords() {
            let v = values.get(&vc)?;
            parent.set(&pc, v)?;
        }
        Ok(())
    }
}

/// Row-major coordinate iterator over a shape.
struct CoordIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl CoordIter {
    fn new(shape: &[usize]) -> Self {
        let start = if shape.contains(&0) {
            None
        } else {
            Some(vec![0; shape.len()])
        };
        CoordIter {
            shape: shape.to_vec(),
            next: start,
        }
    }
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance odometer-style.
        let mut n = cur.clone();
        let mut d = self.shape.len();
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            n[d] += 1;
            if n[d] < self.shape[d] {
                self.next = Some(n);
                break;
            }
            n[d] = 0;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn affine_translation() {
        let v = TensorView::affine(vec![2, 3], vec![10, 20]);
        assert_eq!(v.to_parent(&[1, 2]).unwrap(), vec![11, 22]);
        assert!(v.to_parent(&[2, 0]).is_err());
        assert!(v.to_parent(&[0]).is_err());
    }

    #[test]
    fn gather_translation() {
        let v = TensorView::gather(vec![2], vec![vec![5, 5], vec![0, 1]]);
        assert_eq!(v.to_parent(&[0]).unwrap(), vec![5, 5]);
        assert_eq!(v.to_parent(&[1]).unwrap(), vec![0, 1]);
        assert!(!v.is_affine());
    }

    #[test]
    fn iter_coords_row_major() {
        let v = TensorView::identity(vec![2, 2]);
        let coords: Vec<_> = v.iter_coords().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn read_write_round_trip() {
        let mut parent = Tensor::zeros(DType::F32, &[4, 4]);
        for i in 0..4 {
            for j in 0..4 {
                parent.set(&[i, j], (i * 4 + j) as f32).unwrap();
            }
        }
        let v = TensorView::affine(vec![2, 2], vec![1, 1]);
        let sub = v.read_from(&parent).unwrap();
        assert_eq!(sub.data(), &[5.0, 6.0, 9.0, 10.0]);

        let repl = Tensor::full(DType::F32, &[2, 2], -1.0);
        let mut parent2 = parent.clone();
        v.write_to(&repl, &mut parent2).unwrap();
        assert_eq!(parent2.get(&[1, 1]).unwrap(), -1.0);
        assert_eq!(parent2.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn write_validates_shape() {
        let v = TensorView::identity(vec![2, 2]);
        let bad = Tensor::zeros(DType::F32, &[3, 3]);
        let mut parent = Tensor::zeros(DType::F32, &[2, 2]);
        assert!(v.write_to(&bad, &mut parent).is_err());
    }
}
