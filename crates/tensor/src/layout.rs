//! Shape/stride layouts and shared-memory swizzles.
//!
//! Layouts map logical multi-dimensional coordinates to linear element
//! offsets, in the style of CuTe's layout algebra (paper §6, CuTe is used by
//! Cypress's generated code). A [`Swizzle`] additionally permutes the linear
//! offset to model the XOR-based shared-memory bank-conflict-avoidance
//! patterns Hopper kernels rely on.

use crate::error::TensorError;
use std::fmt;

/// A dense shape/stride layout.
///
/// # Example
///
/// ```
/// use cypress_tensor::Layout;
///
/// let l = Layout::row_major(&[4, 8]);
/// assert_eq!(l.offset(&[1, 2]).unwrap(), 10);
/// let c = Layout::col_major(&[4, 8]);
/// assert_eq!(c.offset(&[1, 2]).unwrap(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    shape: Vec<usize>,
    strides: Vec<usize>,
    swizzle: Swizzle,
}

impl Layout {
    /// Row-major (C-order) layout for `shape`.
    #[must_use]
    pub fn row_major(shape: &[usize]) -> Self {
        let mut strides = vec![1usize; shape.len()];
        for i in (0..shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        Layout {
            shape: shape.to_vec(),
            strides,
            swizzle: Swizzle::none(),
        }
    }

    /// Column-major (Fortran-order) layout for `shape`.
    #[must_use]
    pub fn col_major(shape: &[usize]) -> Self {
        let mut strides = vec![1usize; shape.len()];
        for i in 1..shape.len() {
            strides[i] = strides[i - 1] * shape[i - 1];
        }
        Layout {
            shape: shape.to_vec(),
            strides,
            swizzle: Swizzle::none(),
        }
    }

    /// Layout with explicit strides.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `shape` and `strides` have
    /// different lengths.
    pub fn strided(shape: &[usize], strides: &[usize]) -> Result<Self, TensorError> {
        if shape.len() != strides.len() {
            return Err(TensorError::RankMismatch {
                expected: shape.len(),
                actual: strides.len(),
            });
        }
        Ok(Layout {
            shape: shape.to_vec(),
            strides: strides.to_vec(),
            swizzle: Swizzle::none(),
        })
    }

    /// Attach a swizzle to this layout, returning the swizzled layout.
    #[must_use]
    pub fn with_swizzle(mut self, swizzle: Swizzle) -> Self {
        self.swizzle = swizzle;
        self
    }

    /// The logical shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The element strides.
    #[must_use]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The attached swizzle (identity by default).
    #[must_use]
    pub fn swizzle(&self) -> Swizzle {
        self.swizzle
    }

    /// Number of logical elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Rank (number of dimensions).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Linear element offset of `coord`, after applying the swizzle.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any coordinate exceeds
    /// its extent, or [`TensorError::RankMismatch`] on rank disagreement.
    pub fn offset(&self, coord: &[usize]) -> Result<usize, TensorError> {
        if coord.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                actual: coord.len(),
            });
        }
        let mut off = 0usize;
        for (i, (&c, (&s, &st))) in coord
            .iter()
            .zip(self.shape.iter().zip(self.strides.iter()))
            .enumerate()
        {
            if c >= s {
                let _ = i;
                return Err(TensorError::IndexOutOfBounds {
                    index: coord.to_vec(),
                    bounds: self.shape.to_vec(),
                });
            }
            off += c * st;
        }
        Ok(self.swizzle.apply(off))
    }

    /// `true` if iterating coordinates in row-major order visits strictly
    /// increasing consecutive offsets (i.e. the layout is contiguous
    /// row-major and unswizzled). TMA-style bulk copies require this of
    /// global-memory tiles.
    #[must_use]
    pub fn is_contiguous_row_major(&self) -> bool {
        self.swizzle.is_identity() && *self == Layout::row_major(&self.shape)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{:?}", self.shape, self.strides)?;
        if !self.swizzle.is_identity() {
            write!(f, " ^{}", self.swizzle)?;
        }
        Ok(())
    }
}

/// An XOR-based offset swizzle, `Swizzle<B, M, S>` in CuTe notation.
///
/// The linear offset's bits `[M+B, M)` are XORed with bits `[M+B+S, M+S)`.
/// Hopper shared-memory tiles use e.g. `Swizzle::new(3, 3, 3)` (the 128-byte
/// swizzle) so that column accesses from a warp hit distinct banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Swizzle {
    bits: u8,
    base: u8,
    shift: u8,
}

impl Swizzle {
    /// The identity swizzle.
    #[must_use]
    pub fn none() -> Self {
        Swizzle::default()
    }

    /// `Swizzle<B, M, S>`: XOR `bits` bits at position `base` with the bits
    /// `shift` positions above.
    #[must_use]
    pub fn new(bits: u8, base: u8, shift: u8) -> Self {
        Swizzle { bits, base, shift }
    }

    /// `true` for the identity swizzle.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self.bits == 0
    }

    /// Apply the swizzle to a linear offset.
    #[must_use]
    pub fn apply(self, offset: usize) -> usize {
        if self.bits == 0 {
            return offset;
        }
        let mask = ((1usize << self.bits) - 1) << (self.base + self.shift);
        offset ^ ((offset & mask) >> self.shift)
    }
}

impl fmt::Display for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Swizzle<{},{},{}>", self.bits, self.base, self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_strides() {
        let l = Layout::row_major(&[2, 3, 4]);
        assert_eq!(l.strides(), &[12, 4, 1]);
        assert_eq!(l.num_elements(), 24);
    }

    #[test]
    fn col_major_strides() {
        let l = Layout::col_major(&[2, 3, 4]);
        assert_eq!(l.strides(), &[1, 2, 6]);
    }

    #[test]
    fn offsets_cover_dense_range_exactly_once() {
        let l = Layout::row_major(&[3, 5]);
        let mut seen = [false; 15];
        for i in 0..3 {
            for j in 0..5 {
                let o = l.offset(&[i, j]).unwrap();
                assert!(!seen[o]);
                seen[o] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn out_of_bounds_is_error() {
        let l = Layout::row_major(&[2, 2]);
        assert!(matches!(
            l.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            l.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn swizzle_is_an_involution_permutation() {
        let sw = Swizzle::new(3, 3, 3);
        let n = 1 << 10;
        let mut seen = vec![false; n];
        for o in 0..n {
            let s = sw.apply(o);
            assert!(s < n);
            assert!(!seen[s], "swizzle must be a permutation");
            seen[s] = true;
            assert_eq!(sw.apply(s), o, "xor swizzle is an involution");
        }
    }

    #[test]
    fn swizzled_layout_not_contiguous() {
        let l = Layout::row_major(&[8, 8]).with_swizzle(Swizzle::new(3, 0, 3));
        assert!(!l.is_contiguous_row_major());
        assert!(Layout::row_major(&[8, 8]).is_contiguous_row_major());
        assert!(!Layout::col_major(&[8, 8]).is_contiguous_row_major());
    }

    #[test]
    fn display_formats() {
        let l = Layout::row_major(&[2, 2]).with_swizzle(Swizzle::new(1, 0, 1));
        assert_eq!(l.to_string(), "[2, 2]:[2, 1] ^Swizzle<1,0,1>");
    }
}
