//! The paper's two partitioning operators: `blocks` and `mma` (§3.2, Fig. 4).
//!
//! Both produce a [`Partition`]: an indexed family of [`TensorView`]s over a
//! parent tensor. `blocks` tiles a tensor into equally-sized boxes. `mma`
//! reproduces the data distributions the Hopper Tensor Core mandates for its
//! operands — 16-row groups per warp and the per-thread column swizzle of
//! Fig. 4 for the accumulator, and collective (replicated) access for the
//! shared-memory `B` operand.

use crate::error::TensorError;
use crate::view::TensorView;
use std::fmt;

/// An indexed family of sub-tensor views produced by a partitioning operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    grid: Vec<usize>,
    pieces: Vec<TensorView>,
    parent_shape: Vec<usize>,
    kind: PartitionKind,
}

/// Which operator produced a partition (paper Fig. 3: `pk ::= blocks | mma`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Tiling partition.
    Blocks,
    /// Tensor-Core-mandated partition.
    Mma,
}

impl Partition {
    /// The partition's index-space extents (e.g. `[4, 2]` for a 4×2 tiling).
    #[must_use]
    pub fn grid(&self) -> &[usize] {
        &self.grid
    }

    /// Shape of the partitioned parent tensor.
    #[must_use]
    pub fn parent_shape(&self) -> &[usize] {
        &self.parent_shape
    }

    /// The operator that created this partition.
    #[must_use]
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    /// Total number of pieces.
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// The piece at a multi-dimensional partition index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for indices outside the
    /// grid and [`TensorError::RankMismatch`] on rank disagreement.
    pub fn piece(&self, index: &[usize]) -> Result<&TensorView, TensorError> {
        if index.len() != self.grid.len() {
            return Err(TensorError::RankMismatch {
                expected: self.grid.len(),
                actual: index.len(),
            });
        }
        let mut lin = 0usize;
        for (i, g) in index.iter().zip(self.grid.iter()) {
            if i >= g {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    bounds: self.grid.clone(),
                });
            }
            lin = lin * g + i;
        }
        Ok(&self.pieces[lin])
    }

    /// The piece at a linearized (row-major) partition index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` exceeds
    /// [`Partition::num_pieces`].
    pub fn piece_linear(&self, index: usize) -> Result<&TensorView, TensorError> {
        self.pieces
            .get(index)
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: vec![index],
                bounds: vec![self.pieces.len()],
            })
    }

    /// Iterate over the pieces in linearized order.
    pub fn iter(&self) -> impl Iterator<Item = &TensorView> {
        self.pieces.iter()
    }

    /// `true` if every parent element is covered by at most one piece
    /// (writes through this partition cannot race). Replicated `B`-operand
    /// MMA partitions are *not* disjoint — they are read-only by contract.
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        let total: usize = self.parent_shape.iter().product();
        let mut seen = vec![false; total];
        for p in &self.pieces {
            for (_, pc) in p.iter_coords() {
                let mut lin = 0usize;
                for (c, s) in pc.iter().zip(self.parent_shape.iter()) {
                    lin = lin * s + c;
                }
                if seen[lin] {
                    return false;
                }
                seen[lin] = true;
            }
        }
        true
    }

    /// `true` if every parent element is covered by at least one piece.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        let total: usize = self.parent_shape.iter().product();
        let mut seen = vec![false; total];
        for p in &self.pieces {
            for (_, pc) in p.iter_coords() {
                let mut lin = 0usize;
                for (c, s) in pc.iter().zip(self.parent_shape.iter()) {
                    lin = lin * s + c;
                }
                seen[lin] = true;
            }
        }
        seen.iter().all(|&b| b)
    }
}

/// Tile `shape` into boxes of `tile` (`partition_by_blocks` in the paper).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when ranks differ and
/// [`TensorError::IndivisibleTiling`] when a tile extent does not divide the
/// corresponding tensor extent. The paper's kernels use `cdiv` and divisible
/// problem sizes; partial tiles are intentionally rejected rather than
/// silently padded.
///
/// # Example
///
/// ```
/// use cypress_tensor::partition::blocks;
///
/// let p = blocks(&[128, 256], &[64, 64])?;
/// assert_eq!(p.grid(), &[2, 4]);
/// assert_eq!(p.piece(&[1, 3])?.to_parent(&[0, 0])?, vec![64, 192]);
/// # Ok::<(), cypress_tensor::TensorError>(())
/// ```
pub fn blocks(shape: &[usize], tile: &[usize]) -> Result<Partition, TensorError> {
    if shape.len() != tile.len() {
        return Err(TensorError::RankMismatch {
            expected: shape.len(),
            actual: tile.len(),
        });
    }
    if tile.contains(&0) {
        return Err(TensorError::InvalidShape {
            shape: tile.to_vec(),
        });
    }
    for (s, t) in shape.iter().zip(tile.iter()) {
        if s % t != 0 {
            return Err(TensorError::IndivisibleTiling {
                shape: shape.to_vec(),
                tile: tile.to_vec(),
            });
        }
    }
    let grid: Vec<usize> = shape.iter().zip(tile.iter()).map(|(s, t)| s / t).collect();
    let mut pieces = Vec::with_capacity(grid.iter().product());
    let mut idx = vec![0usize; grid.len()];
    loop {
        let offset: Vec<usize> = idx.iter().zip(tile.iter()).map(|(i, t)| i * t).collect();
        pieces.push(TensorView::affine(tile.to_vec(), offset));
        // Odometer advance.
        let mut d = grid.len();
        loop {
            if d == 0 {
                return Ok(Partition {
                    grid,
                    pieces,
                    parent_shape: shape.to_vec(),
                    kind: PartitionKind::Blocks,
                });
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < grid[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// A Hopper warpgroup MMA instruction shape (`wgmma.mma_async.m64nNk16`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmaInstr {
    m: usize,
    n: usize,
    k: usize,
}

impl MmaInstr {
    /// The `m64nNk16` WGMMA family; `n` must be a multiple of 8 up to 256
    /// (the PTX-architected set).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnsupportedMmaShape`] for unsupported `n`.
    pub fn wgmma(n: usize) -> Result<Self, TensorError> {
        if n == 0 || !n.is_multiple_of(8) || n > 256 {
            return Err(TensorError::UnsupportedMmaShape {
                shape: vec![64, n, 16],
                requirement: "wgmma n must be a positive multiple of 8, at most 256",
            });
        }
        Ok(MmaInstr { m: 64, n, k: 16 })
    }

    /// The `m64n256k16` instruction used throughout the paper's GEMM (Fig. 5).
    #[must_use]
    pub fn wgmma_64x256x16() -> Self {
        MmaInstr {
            m: 64,
            n: 256,
            k: 16,
        }
    }

    /// Rows of the accumulator.
    #[must_use]
    pub fn m(self) -> usize {
        self.m
    }

    /// Columns of the accumulator.
    #[must_use]
    pub fn n(self) -> usize {
        self.n
    }

    /// Reduction depth of one instruction.
    #[must_use]
    pub fn k(self) -> usize {
        self.k
    }

    /// FLOPs performed by one instruction (2·m·n·k).
    #[must_use]
    pub fn flops(self) -> usize {
        2 * self.m * self.n * self.k
    }
}

impl fmt::Display for MmaInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wgmma.m{}n{}k{}", self.m, self.n, self.k)
    }
}

/// Which MMA operand a tensor plays (`"A"`, `"B"`, `"C"` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmaOperand {
    /// Left operand (rows distributed like the accumulator).
    A,
    /// Right operand (shared-memory resident, accessed collectively).
    B,
    /// Accumulator / output.
    C,
}

/// Processor level an MMA partition targets (`PROC` tunable in Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmaLevel {
    /// Distribute across the 4 warps of a warpgroup (16-row groups).
    Warp,
    /// Distribute across the 32 threads of a warp (Fig. 4 swizzle).
    Thread,
}

/// `partition_by_mma`: the Tensor-Core-mandated partition of an operand.
///
/// For operands `A` and `C` at [`MmaLevel::Warp`], rows are split into four
/// 16-row groups (the colouring of Fig. 4). At [`MmaLevel::Thread`], each of
/// the 32 lanes receives the swizzled gather of Fig. 4: for lane `l`, rows
/// `{l/4, l/4 + 8}` of the 16-row group and column pairs `2·(l mod 4) + 8k`
/// for every group `k` of 8 columns, replicated across the instruction's
/// column extent. Operand `B` lives in shared memory and is accessed
/// collectively by the whole warpgroup, so its "partition" is replication.
///
/// # Errors
///
/// Returns [`TensorError::UnsupportedMmaShape`] if the tensor shape is not
/// compatible with the instruction (e.g. `A`/`C` rows not equal to 16·pieces
/// at warp level, columns not a multiple of 8 at thread level).
pub fn mma(
    shape: &[usize],
    instr: MmaInstr,
    level: MmaLevel,
    operand: MmaOperand,
) -> Result<Partition, TensorError> {
    if shape.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: shape.len(),
        });
    }
    let (rows, cols) = (shape[0], shape[1]);
    match (level, operand) {
        (MmaLevel::Warp, MmaOperand::A | MmaOperand::C) => {
            // Four 16-row groups per 64-row instruction block.
            if rows != instr.m() {
                return Err(TensorError::UnsupportedMmaShape {
                    shape: shape.to_vec(),
                    requirement: "warp-level A/C rows must equal the instruction m (64)",
                });
            }
            let group = instr.m() / 4;
            let pieces = (0..4)
                .map(|w| TensorView::affine(vec![group, cols], vec![w * group, 0]))
                .collect();
            Ok(Partition {
                grid: vec![4],
                pieces,
                parent_shape: shape.to_vec(),
                kind: PartitionKind::Mma,
            })
        }
        (MmaLevel::Thread, MmaOperand::A | MmaOperand::C) => {
            // Fig. 4: lane l of the warp holds rows {l/4, l/4+8} and columns
            // {2(l%4)+8k, 2(l%4)+8k+1} for k in 0..cols/8. Compacted shape is
            // [2, cols/4]: (row-group, column) in thread-local order.
            if rows != 16 {
                return Err(TensorError::UnsupportedMmaShape {
                    shape: shape.to_vec(),
                    requirement: "thread-level A/C rows must equal the 16-row warp group",
                });
            }
            if cols % 8 != 0 {
                return Err(TensorError::UnsupportedMmaShape {
                    shape: shape.to_vec(),
                    requirement: "thread-level A/C columns must be a multiple of 8",
                });
            }
            let mut pieces = Vec::with_capacity(32);
            for lane in 0..32usize {
                let r0 = lane / 4;
                let cbase = 2 * (lane % 4);
                let mut table = Vec::with_capacity(2 * cols / 4);
                for rg in 0..2usize {
                    for k in 0..cols / 8 {
                        for j in 0..2usize {
                            table.push(vec![r0 + 8 * rg, cbase + 8 * k + j]);
                        }
                    }
                }
                pieces.push(TensorView::gather(vec![2, cols / 4], table));
            }
            Ok(Partition {
                grid: vec![32],
                pieces,
                parent_shape: shape.to_vec(),
                kind: PartitionKind::Mma,
            })
        }
        (level, MmaOperand::B) => {
            // B stays in shared memory; every warp (or lane) sees all of it.
            if rows % instr.k() != 0 {
                return Err(TensorError::UnsupportedMmaShape {
                    shape: shape.to_vec(),
                    requirement: "B rows must be a multiple of the instruction k (16)",
                });
            }
            let n = match level {
                MmaLevel::Warp => 4,
                MmaLevel::Thread => 32,
            };
            let pieces = (0..n)
                .map(|_| TensorView::identity(shape.to_vec()))
                .collect();
            Ok(Partition {
                grid: vec![n],
                pieces,
                parent_shape: shape.to_vec(),
                kind: PartitionKind::Mma,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_grid_and_offsets() {
        let p = blocks(&[128, 256], &[64, 64]).unwrap();
        assert_eq!(p.grid(), &[2, 4]);
        assert_eq!(p.num_pieces(), 8);
        assert_eq!(
            p.piece(&[1, 3]).unwrap().to_parent(&[0, 0]).unwrap(),
            vec![64, 192]
        );
        assert!(p.is_disjoint());
        assert!(p.is_complete());
    }

    #[test]
    fn blocks_rejects_indivisible() {
        assert!(matches!(
            blocks(&[100, 100], &[64, 64]),
            Err(TensorError::IndivisibleTiling { .. })
        ));
        assert!(blocks(&[4], &[2, 2]).is_err());
        assert!(blocks(&[4], &[0]).is_err());
    }

    #[test]
    fn blocks_piece_bounds_checked() {
        let p = blocks(&[4, 4], &[2, 2]).unwrap();
        assert!(p.piece(&[2, 0]).is_err());
        assert!(p.piece(&[0]).is_err());
        assert!(p.piece_linear(4).is_err());
    }

    #[test]
    fn warp_level_c_is_16_row_groups() {
        let instr = MmaInstr::wgmma_64x256x16();
        let p = mma(&[64, 256], instr, MmaLevel::Warp, MmaOperand::C).unwrap();
        assert_eq!(p.num_pieces(), 4);
        assert_eq!(
            p.piece(&[2]).unwrap().to_parent(&[0, 0]).unwrap(),
            vec![32, 0]
        );
        assert!(p.is_disjoint());
        assert!(p.is_complete());
    }

    #[test]
    fn thread_level_swizzle_matches_figure_4() {
        // Fig. 4 (first warp, rows 0..8 block): thread 0 holds (0,0),(0,1);
        // thread 1 holds (0,2),(0,3); thread 3 holds (0,6),(0,7); thread 4
        // holds (1,0),(1,1); thread 28 holds (7,0),(7,1). The pattern
        // repeats at column 8 and at row 8.
        let instr = MmaInstr::wgmma(8).unwrap();
        let p = mma(&[16, 8], instr, MmaLevel::Thread, MmaOperand::C).unwrap();
        assert_eq!(p.num_pieces(), 32);
        let t0 = p.piece(&[0]).unwrap();
        assert_eq!(t0.to_parent(&[0, 0]).unwrap(), vec![0, 0]);
        assert_eq!(t0.to_parent(&[0, 1]).unwrap(), vec![0, 1]);
        assert_eq!(t0.to_parent(&[1, 0]).unwrap(), vec![8, 0]);
        let t1 = p.piece(&[1]).unwrap();
        assert_eq!(t1.to_parent(&[0, 0]).unwrap(), vec![0, 2]);
        let t28 = p.piece(&[28]).unwrap();
        assert_eq!(t28.to_parent(&[0, 0]).unwrap(), vec![7, 0]);
        assert!(p.is_disjoint());
        assert!(p.is_complete());
    }

    #[test]
    fn thread_level_swizzle_wide_accumulator() {
        // With n=256 each lane holds 2*64 = 128 elements — exactly the
        // register budget the paper describes for a 64x256 f32 accumulator.
        let instr = MmaInstr::wgmma_64x256x16();
        let p = mma(&[16, 256], instr, MmaLevel::Thread, MmaOperand::C).unwrap();
        for lane in 0..32 {
            assert_eq!(p.piece(&[lane]).unwrap().num_elements(), 128);
        }
        assert!(p.is_disjoint());
        assert!(p.is_complete());
    }

    #[test]
    fn b_operand_is_replicated() {
        let instr = MmaInstr::wgmma_64x256x16();
        let p = mma(&[64, 256], instr, MmaLevel::Warp, MmaOperand::B).unwrap();
        assert_eq!(p.num_pieces(), 4);
        assert!(!p.is_disjoint());
        assert!(p.is_complete());
        for piece in p.iter() {
            assert_eq!(piece.shape(), &[64, 256]);
        }
    }

    #[test]
    fn mma_shape_validation() {
        let instr = MmaInstr::wgmma_64x256x16();
        assert!(mma(&[63, 256], instr, MmaLevel::Warp, MmaOperand::C).is_err());
        assert!(mma(&[64], instr, MmaLevel::Warp, MmaOperand::C).is_err());
        assert!(mma(&[17, 8], instr, MmaLevel::Thread, MmaOperand::C).is_err());
        assert!(mma(&[16, 9], instr, MmaLevel::Thread, MmaOperand::C).is_err());
        assert!(mma(&[15, 8], instr, MmaLevel::Warp, MmaOperand::B).is_err());
    }

    #[test]
    fn wgmma_instruction_family() {
        assert!(MmaInstr::wgmma(0).is_err());
        assert!(MmaInstr::wgmma(12).is_err());
        assert!(MmaInstr::wgmma(264).is_err());
        let i = MmaInstr::wgmma(128).unwrap();
        assert_eq!(i.flops(), 2 * 64 * 128 * 16);
        assert_eq!(MmaInstr::wgmma_64x256x16().to_string(), "wgmma.m64n256k16");
    }
}
