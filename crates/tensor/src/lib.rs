//! Dense tensor substrate for the Cypress reproduction.
//!
//! This crate provides everything the Cypress programming model (see
//! `cypress-core`) and the GPU simulator (see `cypress-sim`) need to talk
//! about data:
//!
//! - [`DType`] and software-emulated `f16`/[`bf16`] element types, so that
//!   functional simulation reproduces Tensor Core numerics (FP16 operands,
//!   FP32 accumulation) without hardware support,
//! - [`Layout`]: shape/stride layouts with the shared-memory swizzles used to
//!   avoid bank conflicts on real hardware,
//! - [`Tensor`]: an owned dense tensor with host-side reference operations
//!   (matmul, softmax, reductions) used as oracles by the test suite,
//! - [`TensorView`] and [`IndexMap`]: logically non-contiguous sub-tensors
//!   with compacted origin-based coordinates (paper §3.2),
//! - [`partition`]: the paper's two partitioning operators, `blocks` (tiling)
//!   and `mma` (the Hopper WGMMA operand/accumulator swizzles of Fig. 4).
//!
//! # Example
//!
//! ```
//! use cypress_tensor::{Tensor, DType, partition::blocks};
//!
//! let a = Tensor::zeros(DType::F16, &[128, 64]);
//! let p = blocks(a.shape(), &[64, 64]).expect("tile shape divides tensor");
//! assert_eq!(p.num_pieces(), 2);
//! ```

pub mod dtype;
pub mod error;
pub mod layout;
pub mod partition;
pub mod tensor;
pub mod view;

pub use dtype::{bf16, f16, DType};
pub use error::TensorError;
pub use layout::{Layout, Swizzle};
pub use partition::{blocks, mma, MmaInstr, MmaOperand, Partition};
pub use tensor::Tensor;
pub use view::{IndexMap, TensorView};

/// Convenience alias used throughout the workspace.
pub type Shape = Vec<usize>;
