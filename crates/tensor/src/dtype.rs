//! Element types and software half-precision emulation.
//!
//! The Cypress evaluation runs entirely in FP16 with FP32 accumulation (the
//! Tensor Core contract). We have no hardware half support in this
//! environment, so `f16` and [`bf16`] are implemented bit-exactly in
//! software: values round-trip through the IEEE binary16 / bfloat16 bit
//! patterns, including subnormals, infinities and NaN.

use std::fmt;

/// Element type of a tensor.
///
/// Storage in [`crate::Tensor`] is always `f32`; the dtype controls the
/// rounding applied when values are stored, mirroring how a GPU kernel would
/// write half-precision results to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// IEEE 754 binary16.
    #[default]
    F16,
    /// bfloat16 (truncated binary32).
    BF16,
    /// IEEE 754 binary32.
    F32,
}

impl DType {
    /// Size of one element in bytes, as laid out in (simulated) device memory.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 => 4,
        }
    }

    /// Quantize `x` to this dtype's precision (round-to-nearest-even).
    #[must_use]
    pub fn quantize(self, x: f32) -> f32 {
        match self {
            DType::F16 => f16::from_f32(x).to_f32(),
            DType::BF16 => bf16::from_f32(x).to_f32(),
            DType::F32 => x,
        }
    }

    /// Quantize every element of `row` in place — the bulk form of
    /// [`DType::quantize`]. One dtype dispatch covers the whole row (the
    /// simulator's functional data path calls this once per contiguous
    /// row instead of matching per element), and `F32` is a no-op.
    pub fn quantize_slice(self, row: &mut [f32]) {
        match self {
            DType::F16 => {
                for v in row {
                    *v = f16::from_f32(*v).to_f32();
                }
            }
            DType::BF16 => {
                for v in row {
                    *v = bf16::from_f32(*v).to_f32();
                }
            }
            DType::F32 => {}
        }
    }

    /// Copy `src` into `dst`, quantizing each element to this dtype —
    /// the bulk form of a quantized store. `F32` degenerates to a plain
    /// `copy_from_slice`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (same contract as
    /// [`slice::copy_from_slice`]).
    pub fn quantize_copy(self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "quantize_copy length mismatch");
        match self {
            DType::F16 => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = f16::from_f32(*s).to_f32();
                }
            }
            DType::BF16 => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = bf16::from_f32(*s).to_f32();
                }
            }
            DType::F32 => dst.copy_from_slice(src),
        }
    }

    /// Relative tolerance appropriate for comparing results computed in this
    /// dtype against an f32 reference (used by tests and examples).
    #[must_use]
    pub fn tolerance(self) -> f32 {
        match self {
            DType::F16 => 5e-2,
            DType::BF16 => 1e-1,
            DType::F32 => 1e-5,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F32 => "f32",
        };
        f.write_str(s)
    }
}

/// Software IEEE 754 binary16.
///
/// The lowercase name mirrors Rust's primitive float naming (`f32`, `f64`);
/// this is a deliberate, documented deviation from UpperCamelCase since the
/// type plays the role of a primitive.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct f16(u16);

impl f16 {
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// The largest finite `f16`, 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Positive zero.
    pub const ZERO: f16 = f16(0);

    /// Construct from raw IEEE binary16 bits.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// The raw IEEE binary16 bits.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even, handling overflow to
    /// infinity, subnormals, and NaN propagation.
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve a quiet NaN payload bit.
            let nan = if mant != 0 { 0x0200 } else { 0 };
            return f16(sign | 0x7C00 | nan);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return f16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Round the 23-bit mantissa to 10 bits, RNE.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shift = 13;
            let lsb = (mant >> shift) & 1;
            let round_bit = (mant >> (shift - 1)) & 1;
            let sticky = (mant & ((1 << (shift - 1)) - 1)) != 0;
            let mut half_mant = (mant >> shift) as u16;
            if round_bit == 1 && (sticky || lsb == 1) {
                half_mant += 1;
            }
            // Mantissa carry may bump the exponent (and can overflow to inf).
            let magnitude = (half_exp + (half_mant & 0x0400)) | (half_mant & 0x03FF);
            if half_mant & 0x0400 != 0 {
                return f16(sign | (half_exp + 0x0400));
            }
            return f16(sign | magnitude);
        }
        if unbiased >= -24 {
            // Subnormal half. Implicit leading one becomes explicit.
            let full = mant | 0x0080_0000;
            let shift = (-unbiased - 14 + 13) as u32;
            let shifted = full >> shift;
            let rem_mask = (1u32 << shift) - 1;
            let rem = full & rem_mask;
            let halfway = 1u32 << (shift - 1);
            let mut half_mant = shifted as u16;
            if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
                half_mant += 1;
            }
            return f16(sign | half_mant);
        }
        // Underflow to signed zero.
        f16(sign)
    }

    /// Convert to `f32` exactly (every binary16 value is representable).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15) << 31;
        let exp = u32::from((self.0 >> 10) & 0x1F);
        let mant = u32::from(self.0 & 0x03FF);

        let bits = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize. The value is mant * 2^-24; after
                // shifting the leading one up to bit 10 in s steps, the f32
                // exponent field is 113 - s.
                let mut e = 0i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                let exp32 = ((113 + e) as u32) << 23;
                sign | exp32 | ((m & 0x03FF) << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// `true` if this value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

impl From<f16> for f32 {
    fn from(x: f16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Software bfloat16 (truncated IEEE binary32 with round-to-nearest-even).
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct bf16(u16);

impl bf16 {
    /// Construct from raw bfloat16 bits.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        bf16(bits)
    }

    /// The raw bfloat16 bits.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet the NaN; keep it a NaN after truncation.
            return bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = (bits >> 15) & 1;
        let sticky = bits & 0x7FFF;
        let lsb = (bits >> 16) & 1;
        let mut hi = (bits >> 16) as u16;
        if round_bit == 1 && (sticky != 0 || lsb == 1) {
            hi = hi.wrapping_add(1);
        }
        bf16(hi)
    }

    /// Convert to `f32` exactly.
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// `true` if this value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }
}

impl From<bf16> for f32 {
    fn from(x: bf16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Display for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.099976] {
            let h = f16::from_f32(x);
            let back = h.to_f32();
            assert!((back - x).abs() <= x.abs() * 1e-3 + 1e-7, "{x} -> {back}");
        }
    }

    #[test]
    fn f16_one_has_canonical_bits() {
        assert_eq!(f16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(f16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn f16_overflow_is_infinity() {
        assert_eq!(f16::from_f32(70000.0).to_bits(), f16::INFINITY.to_bits());
        assert_eq!(f16::from_f32(-70000.0).to_bits(), 0xFC00);
    }

    #[test]
    fn f16_max_is_65504() {
        assert_eq!(f16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive subnormal half is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny).to_bits(), 1);
        assert_eq!(f16::from_bits(1).to_f32(), tiny);
        // Below half of the smallest subnormal underflows to zero.
        assert_eq!(f16::from_f32(2.0f32.powi(-26)).to_bits(), 0);
    }

    #[test]
    fn f16_rne_ties_to_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half value;
        // round-to-nearest-even keeps 1.0 (even mantissa).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(x).to_bits(), 0x3C00);
        // 1.0 + 3*2^-11 is halfway between odd and even; rounds up to even.
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(y).to_bits(), 0x3C02);
    }

    #[test]
    fn f16_signed_zero() {
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(f16::from_f32(0.0).to_bits(), 0x0000);
    }

    #[test]
    fn bf16_round_trips() {
        for x in [0.0f32, 1.0, -2.5, 3.0e38, 1.0e-38] {
            let b = bf16::from_f32(x);
            let back = b.to_f32();
            assert!((back - x).abs() <= x.abs() * 1e-2 + 1e-40, "{x} -> {back}");
        }
    }

    #[test]
    fn bf16_nan_stays_nan() {
        assert!(bf16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
    }

    #[test]
    fn quantize_slice_matches_scalar_quantize() {
        let values: Vec<f32> = (0..257)
            .map(|i| (i as f32 - 128.0) * 0.3711 + 1.0 / (i as f32 + 1.0))
            .collect();
        for dt in [DType::F16, DType::BF16, DType::F32] {
            let mut bulk = values.clone();
            dt.quantize_slice(&mut bulk);
            let mut copied = vec![0.0f32; values.len()];
            dt.quantize_copy(&values, &mut copied);
            for (i, &v) in values.iter().enumerate() {
                let expect = dt.quantize(v);
                assert_eq!(bulk[i].to_bits(), expect.to_bits(), "{dt} slice at {i}");
                assert_eq!(copied[i].to_bits(), expect.to_bits(), "{dt} copy at {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn quantize_copy_rejects_length_mismatch() {
        DType::F16.quantize_copy(&[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    fn dtype_quantize_is_idempotent() {
        for dt in [DType::F16, DType::BF16, DType::F32] {
            let q = dt.quantize(std::f32::consts::PI);
            assert_eq!(dt.quantize(q), q);
        }
    }
}
