//! Owned dense tensors and host-side reference operations.
//!
//! Storage is always `f32`; writes are quantized through the tensor's
//! [`DType`], which reproduces the numerics of a GPU kernel that stores
//! half-precision results (FP16 operands, FP32 accumulators). The reference
//! operations here (matmul, softmax, attention) are the *oracles* the test
//! suite checks simulated kernels against.

use crate::dtype::DType;
use crate::error::TensorError;
use crate::layout::Layout;
use rand::Rng;

/// An owned dense tensor.
///
/// # Example
///
/// ```
/// use cypress_tensor::{Tensor, DType};
///
/// let mut t = Tensor::zeros(DType::F32, &[2, 2]);
/// t.set(&[0, 1], 3.5)?;
/// assert_eq!(t.get(&[0, 1])?, 3.5);
/// # Ok::<(), cypress_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    dtype: DType,
    layout: Layout,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor with row-major layout.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero extent; tensors are always
    /// non-degenerate in Cypress programs.
    #[must_use]
    pub fn zeros(dtype: DType, shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&s| s > 0),
            "degenerate shape {shape:?}"
        );
        let layout = Layout::row_major(shape);
        let n = layout.num_elements();
        Tensor {
            dtype,
            layout,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with `value` (quantized to `dtype`).
    #[must_use]
    pub fn full(dtype: DType, shape: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(dtype, shape);
        let q = dtype.quantize(value);
        t.data.fill(q);
        t
    }

    /// A tensor with i.i.d. uniform values in `[lo, hi)`, quantized.
    ///
    /// The evaluation draws operands "from the same random distribution ...
    /// across systems to normalize the effects of power throttling" (§5.1);
    /// benchmarks use this constructor with a fixed seed.
    #[must_use]
    pub fn random<R: Rng>(dtype: DType, shape: &[usize], rng: &mut R, lo: f32, hi: f32) -> Self {
        let mut t = Tensor::zeros(dtype, shape);
        for v in &mut t.data {
            *v = dtype.quantize(rng.gen_range(lo..hi));
        }
        t
    }

    /// Build from explicit data in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from the
    /// number of elements `shape` implies.
    pub fn from_data(dtype: DType, shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let layout = Layout::row_major(shape);
        if data.len() != layout.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                actual: vec![data.len()],
            });
        }
        let data = data.into_iter().map(|x| dtype.quantize(x)).collect();
        Ok(Tensor {
            dtype,
            layout,
            data,
        })
    }

    /// Consume the tensor, yielding its row-major storage. The inverse of
    /// [`Tensor::from_data`]; lets buffer pools recycle storage without a
    /// copy.
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The logical shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        self.layout.shape()
    }

    /// The layout (always row-major for owned tensors).
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Size in (simulated) device memory.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.num_elements() * self.dtype.size_bytes()
    }

    /// Read one element.
    ///
    /// # Errors
    ///
    /// Propagates layout indexing errors.
    pub fn get(&self, coord: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.layout.offset(coord)?])
    }

    /// Write one element (quantized).
    ///
    /// # Errors
    ///
    /// Propagates layout indexing errors.
    pub fn set(&mut self, coord: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.layout.offset(coord)?;
        self.data[off] = self.dtype.quantize(value);
        Ok(())
    }

    /// Raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data. Callers are responsible for quantizing
    /// writes if they bypass [`Tensor::set`]; the simulator does so at its
    /// store boundaries.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().to_vec(),
                actual: other.shape().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Relative error versus `other` in the infinity norm, with an absolute
    /// floor to keep near-zero references stable.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn relative_error(&self, other: &Tensor) -> Result<f32, TensorError> {
        let diff = self.max_abs_diff(other)?;
        let scale = other
            .data
            .iter()
            .map(|x| x.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        Ok(diff / scale)
    }
}

/// Reference (host, FP32-accumulate) operations used as test oracles.
pub mod reference {
    use super::*;

    /// `C = A @ B` with FP32 accumulation; operands quantized per their dtype
    /// and the result quantized per `out_dtype`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for incompatible operand shapes
    /// or [`TensorError::RankMismatch`] for non-matrix operands.
    pub fn matmul(a: &Tensor, b: &Tensor, out_dtype: DType) -> Result<Tensor, TensorError> {
        if a.shape().len() != 2 || b.shape().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: a.shape().len().max(b.shape().len()),
            });
        }
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (k2, n) = (b.shape()[0], b.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
            });
        }
        let mut c = Tensor::zeros(out_dtype, &[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = out_dtype.quantize(acc);
            }
        }
        Ok(c)
    }

    /// Row-wise softmax of a matrix, numerically stabilized.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix input.
    pub fn softmax_rows(x: &Tensor, out_dtype: DType) -> Result<Tensor, TensorError> {
        if x.shape().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: x.shape().len(),
            });
        }
        let (m, n) = (x.shape()[0], x.shape()[1]);
        let mut out = Tensor::zeros(out_dtype, &[m, n]);
        for i in 0..m {
            let row = &x.data()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &v in row {
                denom += (v - mx).exp();
            }
            for (j, &v) in row.iter().enumerate() {
                out.data_mut()[i * n + j] = out_dtype.quantize((v - mx).exp() / denom);
            }
        }
        Ok(out)
    }

    /// Scaled-dot-product attention `softmax(Q Kᵀ / sqrt(d)) V` for one head.
    ///
    /// Shapes: `q`: `[s, d]`, `k`: `[s, d]`, `v`: `[s, d]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent operations.
    pub fn attention(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        out_dtype: DType,
    ) -> Result<Tensor, TensorError> {
        let d = q.shape()[1];
        let kt = transpose(k)?;
        let mut s = matmul(q, &kt, DType::F32)?;
        let scale = 1.0 / (d as f32).sqrt();
        for x in s.data_mut() {
            *x *= scale;
        }
        let p = softmax_rows(&s, DType::F32)?;
        matmul(&p, v, out_dtype)
    }

    /// Matrix transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix input.
    pub fn transpose(x: &Tensor) -> Result<Tensor, TensorError> {
        if x.shape().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: x.shape().len(),
            });
        }
        let (m, n) = (x.shape()[0], x.shape()[1]);
        let mut out = Tensor::zeros(x.dtype(), &[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data_mut()[j * m + i] = x.data()[i * n + j];
            }
        }
        Ok(out)
    }

    /// Row-wise sum `y(i) = Σ_k x(i, k)`, the reduction fused into the
    /// GEMM+Reduction kernel of Fig. 13d.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix input.
    pub fn row_sum(x: &Tensor, out_dtype: DType) -> Result<Tensor, TensorError> {
        if x.shape().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: x.shape().len(),
            });
        }
        let (m, n) = (x.shape()[0], x.shape()[1]);
        let mut out = Tensor::zeros(out_dtype, &[m, 1]);
        for i in 0..m {
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += x.data()[i * n + j];
            }
            out.data_mut()[i] = out_dtype.quantize(acc);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::reference;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(DType::F16, &[3, 3]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(DType::F16, &[2, 2], 1.5);
        assert!(f.data().iter().all(|&x| x == 1.5));
    }

    #[test]
    fn set_quantizes_to_dtype() {
        let mut t = Tensor::zeros(DType::F16, &[1, 1]);
        t.set(&[0, 0], 1.0 + 2.0f32.powi(-13)).unwrap();
        // f16 cannot represent 1 + 2^-13; rounds to 1.0.
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
    }

    #[test]
    fn from_data_validates_length() {
        assert!(Tensor::from_data(DType::F32, &[2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_data(DType::F32, &[2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn size_bytes_accounts_for_dtype() {
        assert_eq!(Tensor::zeros(DType::F16, &[4, 4]).size_bytes(), 32);
        assert_eq!(Tensor::zeros(DType::F32, &[4, 4]).size_bytes(), 64);
    }

    #[test]
    fn matmul_identity() {
        let mut i2 = Tensor::zeros(DType::F32, &[2, 2]);
        i2.set(&[0, 0], 1.0).unwrap();
        i2.set(&[1, 1], 1.0).unwrap();
        let a = Tensor::from_data(DType::F32, &[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let c = reference::matmul(&a, &i2, DType::F32).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(DType::F32, &[2, 3]);
        let b = Tensor::zeros(DType::F32, &[4, 2]);
        assert!(reference::matmul(&a, &b, DType::F32).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::random(DType::F32, &[5, 9], &mut rng, -3.0, 3.0);
        let p = reference::softmax_rows(&x, DType::F32).unwrap();
        for i in 0..5 {
            let s: f32 = p.data()[i * 9..(i + 1) * 9].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::random(DType::F32, &[3, 7], &mut rng, -1.0, 1.0);
        let tt = reference::transpose(&reference::transpose(&x).unwrap()).unwrap();
        assert_eq!(x, tt);
    }

    #[test]
    fn row_sum_matches_manual() {
        let x = Tensor::from_data(DType::F32, &[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let y = reference::row_sum(&x, DType::F32).unwrap();
        assert_eq!(y.data(), &[6.0, 15.0]);
    }

    #[test]
    fn attention_rows_are_convex_combos() {
        // With V = ones, attention output must be all ones regardless of Q, K.
        let mut rng = StdRng::seed_from_u64(3);
        let q = Tensor::random(DType::F32, &[4, 8], &mut rng, -1.0, 1.0);
        let k = Tensor::random(DType::F32, &[4, 8], &mut rng, -1.0, 1.0);
        let v = Tensor::full(DType::F32, &[4, 8], 1.0);
        let o = reference::attention(&q, &k, &v, DType::F32).unwrap();
        for &x in o.data() {
            assert!((x - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn relative_error_detects_difference() {
        let a = Tensor::full(DType::F32, &[2, 2], 1.0);
        let b = Tensor::full(DType::F32, &[2, 2], 1.1);
        assert!(a.relative_error(&b).unwrap() > 0.05);
        assert_eq!(a.relative_error(&a).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate shape")]
    fn zero_extent_panics() {
        let _ = Tensor::zeros(DType::F32, &[2, 0]);
    }
}
