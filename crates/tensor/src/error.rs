//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by tensor construction, viewing, and partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape was empty or contained a zero extent where one is not allowed.
    InvalidShape {
        /// The offending shape.
        shape: Vec<usize>,
    },
    /// Two shapes that must agree did not.
    ShapeMismatch {
        /// Expected shape.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// An index was out of bounds for the tensor or partition.
    IndexOutOfBounds {
        /// Index supplied.
        index: Vec<usize>,
        /// Bounds it was checked against.
        bounds: Vec<usize>,
    },
    /// A tile shape does not divide the tensor shape and padding was not
    /// requested.
    IndivisibleTiling {
        /// Tensor shape.
        shape: Vec<usize>,
        /// Tile shape.
        tile: Vec<usize>,
    },
    /// Rank of an argument did not match the operation's requirement.
    RankMismatch {
        /// Rank required.
        expected: usize,
        /// Rank supplied.
        actual: usize,
    },
    /// An MMA partition was requested with a fragment shape the instruction
    /// does not support.
    UnsupportedMmaShape {
        /// Tensor shape supplied.
        shape: Vec<usize>,
        /// Human-readable requirement, e.g. "rows divisible by 64".
        requirement: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidShape { shape } => {
                write!(f, "invalid tensor shape {shape:?}")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::IndexOutOfBounds { index, bounds } => {
                write!(f, "index {index:?} out of bounds {bounds:?}")
            }
            TensorError::IndivisibleTiling { shape, tile } => {
                write!(f, "tile {tile:?} does not divide shape {shape:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::UnsupportedMmaShape { shape, requirement } => {
                write!(f, "unsupported mma fragment shape {shape:?}: {requirement}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::InvalidShape { shape: vec![0] },
            TensorError::ShapeMismatch {
                expected: vec![1],
                actual: vec![2],
            },
            TensorError::IndexOutOfBounds {
                index: vec![3],
                bounds: vec![2],
            },
            TensorError::IndivisibleTiling {
                shape: vec![5],
                tile: vec![2],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 1,
            },
            TensorError::UnsupportedMmaShape {
                shape: vec![3, 3],
                requirement: "rows divisible by 64",
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
