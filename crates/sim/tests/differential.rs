//! Three-way bitwise differential over randomized kernels: the retained
//! scalar reference interpreter, the fast resolved-view apply path driven
//! by the IR tree walk, and the flat bytecode VM (the default path) must
//! produce bit-identical tensors *and* bit-identical simulated cycles on
//! the same kernel — across random shapes, dtypes, sub-slices, pipeline
//! depths, and SIMT op mixes.
//!
//! Requires the `scalar-oracle` feature (the CI job
//! `cargo test -p cypress-sim --features scalar-oracle` runs it; the
//! workspace build enables the feature through the facade crate's
//! dev-dependencies).
#![cfg(feature = "scalar-oracle")]

use cypress_sim::{
    bytecode, BinOp, Cond, Expr, Instr, KernelBuilder, MachineConfig, RedOp, RoleKind, SimtOp,
    Simulator, Slice, UnOp,
};
use cypress_tensor::{DType, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DTYPES: [DType; 3] = [DType::F16, DType::BF16, DType::F32];

/// Build a random single-role kernel: a pipelined TMA load loop feeding a
/// random SIMT op mix (map/zip/row-reduce/row-broadcast over random
/// sub-slices of shared memory and fragments), a data-dependent `If`, and
/// a final copy-out into a per-block band of the output parameter.
fn random_kernel_and_params(seed: u64) -> (cypress_sim::Kernel, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = rng.gen_range(1usize..13);
    let cols = rng.gen_range(1usize..13);
    let trips = rng.gen_range(1i64..5);
    let pipe = rng.gen_range(1usize..4);
    let gx = rng.gen_range(1usize..3);
    let dt_in = DTYPES[rng.gen_range(0usize..3)];
    let dt_out = DTYPES[rng.gen_range(0usize..3)];

    let mut b = KernelBuilder::new("differential", [gx, 1, 1]);
    let src_rows = rows * trips as usize;
    let pa = b.param("A", src_rows, cols, dt_in);
    let po = b.param("O", rows * gx, cols, dt_out);
    let s = b.smem("S", rows, cols, dt_in, pipe);
    let f = b.frag("F", rows, cols);
    let r = b.frag("R", rows, 1);
    let bar = b.mbar(1);
    let v = b.fresh_var();

    // Random sub-slice of the fragment: both the op and its operands see
    // an interior window, exercising resolved-view row striding.
    let sub_rows = rng.gen_range(1usize..rows + 1);
    let sub_cols = rng.gen_range(1usize..cols + 1);
    let row0 = rng.gen_range(0usize..rows - sub_rows + 1);
    let col0 = rng.gen_range(0usize..cols - sub_cols + 1);
    let fsub = || {
        Slice::frag(f)
            .at(row0 as i64, col0 as i64)
            .extent(sub_rows, sub_cols)
    };
    let rsub = || Slice::frag(r).at(row0 as i64, 0).extent(sub_rows, 1);
    let stage = |vv: usize, p: usize| {
        Slice::smem(s)
            .stage(Expr::var(vv) % p as i64)
            .at(row0 as i64, col0 as i64)
            .extent(sub_rows, sub_cols)
    };

    let mut body = vec![
        Instr::TmaLoad {
            src: Slice::param(pa)
                .at(Expr::var(v) * rows as i64, 0)
                .extent(rows, cols),
            dst: Slice::smem(s)
                .stage(Expr::var(v) % pipe as i64)
                .extent(rows, cols),
            bar,
        },
        Instr::MbarWait { bar },
        Instr::Simt(SimtOp::Copy {
            src: Slice::smem(s)
                .stage(Expr::var(v) % pipe as i64)
                .extent(rows, cols),
            dst: Slice::frag(f).extent(rows, cols),
        }),
    ];
    for _ in 0..rng.gen_range(1usize..4) {
        let op = match rng.gen_range(0usize..5) {
            0 => SimtOp::Map {
                op: [UnOp::Exp, UnOp::Neg, UnOp::Scale(0.5), UnOp::Recip][rng.gen_range(0usize..4)],
                src: fsub(),
                dst: fsub(),
            },
            1 => SimtOp::Zip {
                op: [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Max][rng.gen_range(0usize..4)],
                a: fsub(),
                b: stage(v, pipe),
                dst: fsub(),
            },
            2 => SimtOp::RowReduce {
                op: [RedOp::Sum, RedOp::Max][rng.gen_range(0usize..2)],
                src: fsub(),
                dst: rsub(),
                include_dst: rng.gen_bool(0.5),
            },
            3 => SimtOp::RowZip {
                op: [BinOp::Add, BinOp::Max][rng.gen_range(0usize..2)],
                src: fsub(),
                row: rsub(),
                dst: fsub(),
            },
            _ => SimtOp::Fill {
                dst: rsub(),
                value: rng.gen_range(-2.0f32..2.0),
            },
        };
        // Half the ops run under a loop-variant branch so the bytecode
        // Branch/Jump encoding is exercised, not just straight-line code.
        if rng.gen_bool(0.5) {
            body.push(Instr::If {
                cond: Cond::Ge(Expr::var(v), Expr::lit(trips / 2)),
                then_: vec![Instr::Simt(op)],
                else_: vec![],
            });
        } else {
            body.push(Instr::Simt(op));
        }
    }

    b.role(
        RoleKind::Compute(0),
        vec![
            Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(r).extent(rows, 1),
                value: 0.0,
            }),
            Instr::Loop {
                var: v,
                count: Expr::lit(trips),
                body,
            },
            Instr::Simt(SimtOp::Copy {
                src: Slice::frag(f).extent(rows, cols),
                dst: Slice::param(po)
                    .at(Expr::block_x() * rows as i64, 0)
                    .extent(rows, cols),
            }),
        ],
    );
    let kernel = b.build();

    let a = Tensor::random(dt_in, &[src_rows, cols], &mut rng, -1.0, 1.0);
    let o = Tensor::zeros(dt_out, &[rows * gx, cols]);
    (kernel, vec![a, o])
}

/// Run a kernel through all three functional paths and assert the
/// tensors and the simulated cycle count are bit-identical.
fn assert_three_way(kernel: &cypress_sim::Kernel, params: Vec<Tensor>) {
    let sim = Simulator::new(MachineConfig::test_gpu());
    let byte = sim.run_functional(kernel, params.clone()).unwrap();
    let walk = sim.run_functional_walk(kernel, params.clone()).unwrap();
    let scalar = sim.run_functional_scalar(kernel, params.clone()).unwrap();
    // The pre-lowered artifact path (what the runtime's kernel cache
    // replays) must match the internal lowering exactly.
    let program = bytecode::lower(kernel).unwrap();
    let cached = sim
        .run_functional_lowered(kernel, &program, params)
        .unwrap();

    for (which, other) in [("walk", &walk), ("scalar", &scalar), ("cached", &cached)] {
        assert_eq!(
            byte.report.cycles.to_bits(),
            other.report.cycles.to_bits(),
            "bytecode vs {which}: cycles diverge"
        );
        for (p, (x, y)) in byte.params.iter().zip(&other.params).enumerate() {
            assert_eq!(x.shape(), y.shape(), "bytecode vs {which}: param {p} shape");
            for (i, (a, b)) in x.data().iter().zip(y.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "bytecode vs {which}: param {p} elem {i}"
                );
            }
        }
    }
}

proptest! {
    /// Scalar oracle, fast tree walk, and bytecode VM agree bitwise on
    /// random kernels over random shapes, dtypes, and sub-slices.
    #[test]
    fn three_paths_agree_bitwise_on_random_kernels(seed in 0u64..1_000_000) {
        let (kernel, params) = random_kernel_and_params(seed);
        assert_three_way(&kernel, params);
    }
}
