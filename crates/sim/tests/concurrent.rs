//! Tests of multi-kernel concurrent timing: a single kernel reproduces
//! its solo numbers exactly, small kernels overlap, full-device kernels
//! degrade to the serial sum, and the `max(solo) <= makespan <=
//! sum(solo)` invariants hold for generated batches.

use cypress_sim::{Expr, Instr, Kernel, KernelBuilder, MachineConfig, RoleKind, Simulator, Slice};
use cypress_tensor::DType;
use proptest::prelude::*;

/// A DMA-driven kernel with `grid` CTAs, each streaming `trips` tiles of
/// `rows x 64` through shared memory. Grid size controls how many SMs it
/// occupies; trips controls how long it runs.
fn stream_kernel(name: &str, grid: usize, trips: i64, rows: usize) -> Kernel {
    let mut b = KernelBuilder::new(name, [grid, 1, 1]);
    let a = b.param("A", rows * trips as usize, 64, DType::F16);
    let sa = b.smem("sA", rows, 64, DType::F16, 2);
    let bar = b.mbar(1);
    let v = b.fresh_var();
    b.role(
        RoleKind::Dma,
        vec![Instr::Loop {
            var: v,
            count: Expr::lit(trips),
            body: vec![
                Instr::TmaLoad {
                    src: Slice::param(a)
                        .at(Expr::var(v) * rows as i64, 0)
                        .extent(rows, 64),
                    dst: Slice::smem(sa).stage(Expr::var(v) % 2).extent(rows, 64),
                    bar,
                },
                Instr::MbarWait { bar },
            ],
        }],
    );
    b.build()
}

#[test]
fn single_kernel_reproduces_solo_timing_exactly() {
    let sim = Simulator::new(MachineConfig::test_gpu());
    let k = stream_kernel("solo", 2, 6, 32);
    let solo = sim.run_timing(&k).unwrap();
    let batch = sim.run_timing_concurrent(std::slice::from_ref(&k)).unwrap();
    assert_eq!(batch.makespan, solo.cycles, "one kernel, no contention");
    assert_eq!(batch.kernels.len(), 1);
    assert_eq!(batch.kernels[0].start, 0.0);
    assert_eq!(batch.kernels[0].end, solo.cycles);
    assert!((batch.overlap_speedup() - 1.0).abs() < 1e-12);
}

#[test]
fn empty_batch_is_trivial() {
    let sim = Simulator::new(MachineConfig::test_gpu());
    let batch = sim.run_timing_concurrent(&[]).unwrap();
    assert_eq!(batch.makespan, 0.0);
    assert!(batch.kernels.is_empty());
}

#[test]
fn small_kernels_overlap_on_a_big_machine() {
    // Four 1-CTA kernels on a 4-SM machine: each occupies one SM, so the
    // batch overlaps and beats the serial sum.
    let sim = Simulator::new(MachineConfig::test_gpu());
    let kernels: Vec<Kernel> = (0..4)
        .map(|i| stream_kernel(&format!("k{i}"), 1, 8, 32))
        .collect();
    let batch = sim.run_timing_concurrent(&kernels).unwrap();
    let serial = batch.serial_sum();
    let longest = batch
        .kernels
        .iter()
        .map(|k| k.solo.cycles)
        .fold(0.0f64, f64::max);
    assert!(
        batch.makespan < serial,
        "batch {} should beat serial {}",
        batch.makespan,
        serial
    );
    assert!(batch.makespan >= longest - 1e-9);
    assert!(batch.overlap_speedup() > 1.5, "{}", batch.overlap_speedup());
}

#[test]
fn full_device_kernels_degrade_to_the_serial_sum() {
    // Kernels with more CTAs than SMs occupy the whole device; running
    // two of them concurrently buys nothing.
    let sim = Simulator::new(MachineConfig::test_gpu());
    let kernels: Vec<Kernel> = (0..2)
        .map(|i| stream_kernel(&format!("big{i}"), 8, 6, 32))
        .collect();
    let batch = sim.run_timing_concurrent(&kernels).unwrap();
    let serial = batch.serial_sum();
    assert!(
        (batch.makespan - serial).abs() <= 1e-9 * serial,
        "two full-device kernels serialize: {} vs {serial}",
        batch.makespan
    );
}

proptest! {
    /// For any batch: `max(solo) <= makespan <= sum(solo)`, and the
    /// model is a pure function of its inputs.
    #[test]
    fn batch_invariants_hold(count in 1usize..5, grid in 1usize..6, trips in 1i64..8) {
        let sim = Simulator::new(MachineConfig::test_gpu());
        let kernels: Vec<Kernel> = (0..count)
            .map(|i| stream_kernel(&format!("p{i}"), grid, trips + i as i64, 32))
            .collect();
        let a = sim.run_timing_concurrent(&kernels).unwrap();
        let b = sim.run_timing_concurrent(&kernels).unwrap();
        prop_assert_eq!(a.makespan, b.makespan, "concurrent timing is deterministic");
        let serial = a.serial_sum();
        let longest = a.kernels.iter().map(|k| k.solo.cycles).fold(0.0f64, f64::max);
        prop_assert!(a.makespan >= longest - 1e-9 * longest, "{} < longest {}", a.makespan, longest);
        prop_assert!(a.makespan <= serial + 1e-9 * serial, "{} > serial {}", a.makespan, serial);
        for (i, slot) in a.kernels.iter().enumerate() {
            prop_assert!(slot.end - slot.start >= slot.solo.cycles - 1e-9,
                "kernel {i} ran faster concurrently than solo");
        }
    }
}

#[test]
fn zero_cycle_profiles_retire_immediately_and_in_order() {
    use cypress_sim::concurrent::{ConcurrentEngine, KernelProfile};
    let machine = MachineConfig::test_gpu();
    let zero = KernelProfile {
        name: "instant".into(),
        cycles: 0.0,
        sm_demand: 1.0,
        hbm_demand: 0.0,
        l2_demand: 0.0,
    };
    let slow = KernelProfile {
        name: "slow".into(),
        cycles: 1000.0,
        sm_demand: 1.0,
        hbm_demand: 0.0,
        l2_demand: 0.0,
    };
    let mut e = ConcurrentEngine::new(&machine);
    e.launch(0, &slow);
    e.launch(1, &zero);
    e.launch(2, &zero);
    let mut last_end = f64::NEG_INFINITY;
    let mut ids = Vec::new();
    while let Some(done) = e.advance() {
        assert!(done.end.is_finite(), "no NaN from zero-cycle work");
        assert!(
            done.end >= last_end,
            "completions must be time-ordered: {} after {last_end}",
            done.end
        );
        assert!(done.end >= done.start);
        last_end = done.end;
        ids.push(done.id);
    }
    // The zero-cycle kernels retire first (at time 0, lowest id first),
    // then the real one.
    assert_eq!(ids, vec![1, 2, 0]);
    assert_eq!(last_end, 1000.0);
}

#[test]
fn zero_cycle_report_distills_to_a_safe_profile() {
    use cypress_sim::concurrent::KernelProfile;
    use cypress_sim::TimingReport;
    let machine = MachineConfig::test_gpu();
    let report = TimingReport {
        kernel: "empty".into(),
        cycles: 0.0,
        seconds: 0.0,
        tc_flops: 0.0,
        simt_flops: 0.0,
        achieved_tflops: 0.0,
        tc_utilization: 0.0,
        tma_utilization: 0.0,
        simt_utilization: 0.0,
        ctas: 0,
        simulated_ctas: 0,
        active_sms: 0,
        ctas_per_sm: 0,
        load_bytes: 0.0,
        store_bytes: 0.0,
        l2_hit: 0.0,
        events: 0,
    };
    let p = KernelProfile::from_report(&report, &machine);
    assert!(p.sm_demand >= 1.0, "clamped so rates never divide by zero");
    assert!(p.hbm_demand.is_finite() && p.l2_demand.is_finite());
    assert_eq!(p.cycles, 0.0);
}
