//! End-to-end engine tests: a hand-built warp-specialized, software-pipelined
//! GEMM kernel with the exact structure of the paper's Fig. 1b — DMA warp
//! issuing TMA loads into a multi-stage shared-memory pipeline, a compute
//! warpgroup issuing `wgmma`, producer/consumer mbarriers, and a TMA
//! store-out of the staged result.

use cypress_sim::{
    Cond, Expr, Instr, KernelBuilder, MachineConfig, RoleKind, SimError, SimtOp, Simulator, Slice,
};
use cypress_tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const T_M: usize = 64;
const T_N: usize = 64;
const T_K: usize = 32;

/// Build the Fig. 1b GEMM kernel for `C[M,N] = A[M,K] @ B[K,N]`.
///
/// `pipe` is the software pipeline depth; `arrive_cons` lets tests omit the
/// consumer barrier to demonstrate deadlock detection.
fn build_gemm(m: usize, n: usize, k: usize, pipe: usize, arrive_cons: bool) -> cypress_sim::Kernel {
    assert!(m.is_multiple_of(T_M) && n.is_multiple_of(T_N) && k.is_multiple_of(T_K));
    let mut b = KernelBuilder::new("gemm_fig1b", [m / T_M, n / T_N, 1]);
    let ga = b.param("A", m, k, DType::F16);
    let gb = b.param("B", k, n, DType::F16);
    let gc = b.param("C", m, n, DType::F16);
    let sa = b.smem("sA", T_M, T_K, DType::F16, pipe);
    let sb = b.smem("sB", T_K, T_N, DType::F16, pipe);
    let sc = b.smem("sC", T_M, T_N, DType::F16, 1);
    let acc = b.frag("acc", T_M, T_N);
    let prod = b.mbar(2); // A and B tile loads complete one phase
    let cons = b.mbar(1); // the single consumer warpgroup frees a stage
    let copyout = b.mbar(1); // accumulator staged to shared memory

    let trips = (k / T_K) as i64;

    // DMA warp: prefetch loop + store-out (Fig. 1b lines 6-19).
    let kv = b.fresh_var();
    let dma_loop = Instr::Loop {
        var: kv,
        count: Expr::lit(trips),
        body: vec![
            Instr::If {
                cond: Cond::Ge(Expr::var(kv), Expr::lit(pipe as i64)),
                then_: vec![Instr::MbarWait { bar: cons }],
                else_: vec![],
            },
            Instr::TmaLoad {
                src: Slice::param(ga)
                    .at(Expr::block_x() * T_M as i64, Expr::var(kv) * T_K as i64)
                    .extent(T_M, T_K),
                dst: Slice::smem(sa)
                    .stage(Expr::var(kv) % pipe as i64)
                    .extent(T_M, T_K),
                bar: prod,
            },
            Instr::TmaLoad {
                src: Slice::param(gb)
                    .at(Expr::var(kv) * T_K as i64, Expr::block_y() * T_N as i64)
                    .extent(T_K, T_N),
                dst: Slice::smem(sb)
                    .stage(Expr::var(kv) % pipe as i64)
                    .extent(T_K, T_N),
                bar: prod,
            },
        ],
    };
    b.role(
        RoleKind::Dma,
        vec![
            dma_loop,
            Instr::MbarWait { bar: copyout },
            Instr::TmaStore {
                src: Slice::smem(sc).extent(T_M, T_N),
                dst: Slice::param(gc)
                    .at(Expr::block_x() * T_M as i64, Expr::block_y() * T_N as i64)
                    .extent(T_M, T_N),
            },
            Instr::TmaStoreWait,
        ],
    );

    // Compute warpgroup: wait for tiles, run the Tensor Core, free stages
    // (Fig. 1b lines 21-33).
    let kc = b.fresh_var();
    let mut loop_body = vec![Instr::MbarWait { bar: prod }];
    for step in 0..T_K / 16 {
        loop_body.push(Instr::Wgmma {
            a: Slice::smem(sa)
                .stage(Expr::var(kc) % pipe as i64)
                .at(0, step * 16)
                .extent(T_M, 16),
            b: Slice::smem(sb)
                .stage(Expr::var(kc) % pipe as i64)
                .at(step * 16, 0)
                .extent(16, T_N),
            acc: Slice::frag(acc).extent(T_M, T_N),
            accumulate: true,
            transpose_b: false,
        });
    }
    loop_body.push(Instr::WgmmaWait { pending: 0 });
    if arrive_cons {
        loop_body.push(Instr::MbarArrive { bar: cons });
    }
    b.role(
        RoleKind::Compute(0),
        vec![
            Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(acc).extent(T_M, T_N),
                value: 0.0,
            }),
            Instr::Loop {
                var: kc,
                count: Expr::lit(trips),
                body: loop_body,
            },
            Instr::Simt(SimtOp::Copy {
                src: Slice::frag(acc).extent(T_M, T_N),
                dst: Slice::smem(sc).extent(T_M, T_N),
            }),
            Instr::MbarArrive { bar: copyout },
        ],
    );
    b.build()
}

fn random_operands(m: usize, n: usize, k: usize) -> (Tensor, Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(42);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[k, n], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[m, n]);
    (a, b, c)
}

#[test]
fn functional_gemm_matches_reference() {
    let (m, n, k) = (128, 128, 64);
    let kernel = build_gemm(m, n, k, 2, true);
    let (a, b, c) = random_operands(m, n, k);
    let reference = reference::matmul(&a, &b, DType::F16).unwrap();

    let sim = Simulator::new(MachineConfig::test_gpu());
    let run = sim.run_functional(&kernel, vec![a, b, c]).unwrap();
    let err = run.params[2].relative_error(&reference).unwrap();
    assert!(err < 1e-2, "relative error {err}");
}

#[test]
fn functional_gemm_multi_tile_k() {
    let (m, n, k) = (64, 64, 128);
    let kernel = build_gemm(m, n, k, 2, true);
    let (a, b, c) = random_operands(m, n, k);
    let reference = reference::matmul(&a, &b, DType::F16).unwrap();

    let sim = Simulator::new(MachineConfig::test_gpu());
    let run = sim.run_functional(&kernel, vec![a, b, c]).unwrap();
    let err = run.params[2].relative_error(&reference).unwrap();
    assert!(err < 1e-2, "relative error {err}");
}

#[test]
fn pipelining_reduces_makespan() {
    // Same problem, pipeline depth 1 vs 3: with depth 1 the DMA warp must
    // wait for the consumer each iteration, exposing TMA latency.
    let (m, n, k) = (64, 64, 2048);
    let sim = Simulator::new(MachineConfig::test_gpu());
    let shallow = sim.run_timing(&build_gemm(m, n, k, 1, true)).unwrap();
    let deep = sim.run_timing(&build_gemm(m, n, k, 3, true)).unwrap();
    assert!(
        deep.cycles < shallow.cycles * 0.8,
        "deep {} vs shallow {}",
        deep.cycles,
        shallow.cycles
    );
    assert!(deep.tc_utilization > shallow.tc_utilization);
}

#[test]
fn deep_pipeline_saturates_tensor_core() {
    let (m, n, k) = (64, 64, 4096);
    let sim = Simulator::new(MachineConfig::test_gpu());
    let r = sim.run_timing(&build_gemm(m, n, k, 3, true)).unwrap();
    assert!(
        r.tc_utilization > 0.55,
        "tc utilization {}",
        r.tc_utilization
    );
}

#[test]
fn missing_consumer_arrive_deadlocks() {
    let kernel = build_gemm(64, 64, 512, 2, false);
    let sim = Simulator::new(MachineConfig::test_gpu());
    match sim.run_timing(&kernel) {
        Err(SimError::Deadlock { blocked }) => {
            assert!(!blocked.is_empty());
            let all = blocked.join(" ");
            assert!(all.contains("mbar"), "diagnostic: {all}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn timing_report_is_deterministic() {
    let kernel = build_gemm(128, 128, 256, 2, true);
    let sim = Simulator::new(MachineConfig::test_gpu());
    let a = sim.run_timing(&kernel).unwrap();
    let b = sim.run_timing(&kernel).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.events, b.events);
}

#[test]
fn grid_scales_waves() {
    // 16 CTAs on a 4-SM machine: 4 per SM, simulated as the busiest SM's 4.
    let kernel = build_gemm(256, 256, 128, 2, true);
    let sim = Simulator::new(MachineConfig::test_gpu());
    let r = sim.run_timing(&kernel).unwrap();
    assert_eq!(r.ctas, 16);
    assert_eq!(r.active_sms, 4);
    assert_eq!(r.simulated_ctas, 4);
    // More CTAs than one wave: makespan exceeds a single CTA's time.
    let single = sim.run_timing(&build_gemm(64, 64, 128, 2, true)).unwrap();
    assert!(r.cycles > single.cycles);
}

#[test]
fn functional_and_timing_agree_on_schedule_length() {
    let kernel = build_gemm(64, 64, 128, 2, true);
    let sim = Simulator::new(MachineConfig::test_gpu());
    let (a, b, c) = random_operands(64, 64, 128);
    let f = sim.run_functional(&kernel, vec![a, b, c]).unwrap();
    let t = sim.run_timing(&kernel).unwrap();
    // One CTA only: functional (all CTAs) and timing (busiest SM) simulate
    // the same work and must agree exactly.
    assert_eq!(f.report.cycles, t.cycles);
}
