//! Property-based tests of simulator invariants: expression evaluation,
//! determinism, and monotonicity of the cost model.

use cypress_sim::{Env, Expr, Instr, KernelBuilder, MachineConfig, RoleKind, Simulator, Slice};
use cypress_tensor::DType;
use proptest::prelude::*;

fn copy_kernel(rows: usize, cols: usize, pipe: usize, trips: i64) -> cypress_sim::Kernel {
    let mut b = KernelBuilder::new("copy", [1, 1, 1]);
    let a = b.param("A", rows * trips as usize, cols, DType::F16);
    let sa = b.smem("sA", rows, cols, DType::F16, pipe);
    let bar = b.mbar(1);
    let v = b.fresh_var();
    b.role(
        RoleKind::Dma,
        vec![Instr::Loop {
            var: v,
            count: Expr::lit(trips),
            body: vec![
                Instr::TmaLoad {
                    src: Slice::param(a)
                        .at(Expr::var(v) * rows as i64, 0)
                        .extent(rows, cols),
                    dst: Slice::smem(sa)
                        .stage(Expr::var(v) % pipe as i64)
                        .extent(rows, cols),
                    bar,
                },
                Instr::MbarWait { bar },
            ],
        }],
    );
    b.build()
}

proptest! {
    /// Expression evaluation matches host arithmetic for affine forms.
    #[test]
    fn expr_affine_matches_host(a in -50i64..50, b in -50i64..50, x in 0i64..100) {
        let mut env = Env::for_block([0, 0, 0]);
        env.bind(0, x);
        let e = Expr::var(0) * a + b;
        prop_assert_eq!(e.eval(&env).unwrap(), a * x + b);
        if b != 0 {
            let e = (Expr::var(0) * a) % b;
            prop_assert_eq!(e.eval(&env).unwrap(), (a * x).rem_euclid(b));
        }
    }

    /// Timing simulation is a pure function of the kernel.
    #[test]
    fn timing_is_deterministic(trips in 1i64..12, pipe in 1usize..4) {
        let k = copy_kernel(32, 32, pipe, trips);
        let sim = Simulator::new(MachineConfig::test_gpu());
        let a = sim.run_timing(&k).unwrap();
        let b = sim.run_timing(&k).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.events, b.events);
    }

    /// More work never takes less time (monotone makespans).
    #[test]
    fn makespan_is_monotone_in_trip_count(trips in 1i64..10) {
        let sim = Simulator::new(MachineConfig::test_gpu());
        let t1 = sim.run_timing(&copy_kernel(32, 32, 2, trips)).unwrap().cycles;
        let t2 = sim.run_timing(&copy_kernel(32, 32, 2, trips + 1)).unwrap().cycles;
        prop_assert!(t2 >= t1);
    }

    /// The functional engine preserves data it only copies: a load loop is
    /// a no-op on the parameters.
    #[test]
    fn loads_do_not_corrupt_params(trips in 1i64..6) {
        use cypress_tensor::Tensor;
        let k = copy_kernel(16, 16, 2, trips);
        let t = Tensor::full(DType::F16, &[16 * trips as usize, 16], 2.5);
        let sim = Simulator::new(MachineConfig::test_gpu());
        let run = sim.run_functional(&k, vec![t.clone()]).unwrap();
        prop_assert_eq!(run.params[0].data(), t.data());
    }
}
