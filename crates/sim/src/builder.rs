//! Fluent construction of device programs.
//!
//! Used by the Cypress compiler's code generator and by the hand-written
//! baseline kernels. The builder hands out indices for memory objects and
//! fresh loop-variable ids, then assembles a validated [`Kernel`].

use crate::expr::Expr;
use crate::instr::Instr;
use crate::kernel::{Kernel, MbarDecl, Role, RoleKind};
use crate::mem::{FragDecl, ParamDecl, SmemDecl};
use cypress_tensor::DType;

/// Builder for [`Kernel`].
///
/// # Example
///
/// ```
/// use cypress_sim::{KernelBuilder, RoleKind, Instr, Slice};
///
/// let mut b = KernelBuilder::new("copy", [1, 1, 1]);
/// let a = b.param("A", 64, 64, cypress_tensor::DType::F16);
/// let sa = b.smem("sA", 64, 64, cypress_tensor::DType::F16, 1);
/// let bar = b.mbar(1);
/// b.role(RoleKind::Compute(0), vec![
///     Instr::TmaLoad {
///         src: Slice::param(a).extent(64, 64),
///         dst: Slice::smem(sa).extent(64, 64),
///         bar,
///     },
///     Instr::MbarWait { bar },
/// ]);
/// let kernel = b.build();
/// assert_eq!(kernel.num_ctas(), 1);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    grid: [usize; 3],
    params: Vec<ParamDecl>,
    smem: Vec<SmemDecl>,
    frags: Vec<FragDecl>,
    mbars: Vec<MbarDecl>,
    roles: Vec<Role>,
    persistent: bool,
    vars: usize,
}

impl KernelBuilder {
    /// Start a kernel named `name` with the given CTA grid.
    #[must_use]
    pub fn new(name: impl Into<String>, grid: [usize; 3]) -> Self {
        KernelBuilder {
            name: name.into(),
            grid,
            params: Vec::new(),
            smem: Vec::new(),
            frags: Vec::new(),
            mbars: Vec::new(),
            roles: Vec::new(),
            persistent: false,
            vars: 0,
        }
    }

    /// Declare a global parameter; returns its index.
    pub fn param(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        dtype: DType,
    ) -> usize {
        self.params.push(ParamDecl {
            name: name.into(),
            rows,
            cols,
            dtype,
        });
        self.params.len() - 1
    }

    /// Declare a shared-memory region; returns its index.
    pub fn smem(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        dtype: DType,
        stages: usize,
    ) -> usize {
        self.smem.push(SmemDecl {
            name: name.into(),
            rows,
            cols,
            dtype,
            stages,
        });
        self.smem.len() - 1
    }

    /// Declare a per-warpgroup register fragment; returns its index.
    pub fn frag(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> usize {
        self.frags.push(FragDecl {
            name: name.into(),
            rows,
            cols,
        });
        self.frags.len() - 1
    }

    /// Declare an mbarrier completing a phase after `expected` arrivals;
    /// returns its index.
    pub fn mbar(&mut self, expected: usize) -> usize {
        self.mbars.push(MbarDecl { expected });
        self.mbars.len() - 1
    }

    /// A fresh loop-variable id, unique within this kernel.
    pub fn fresh_var(&mut self) -> usize {
        self.vars += 1;
        self.vars - 1
    }

    /// Convenience: a counted loop over `0..count` with a fresh variable.
    /// The closure receives the loop variable as an [`Expr`] and the raw id.
    pub fn counted_loop(
        &mut self,
        count: impl Into<Expr>,
        f: impl FnOnce(&mut Self, Expr, usize) -> Vec<Instr>,
    ) -> Instr {
        let var = self.fresh_var();
        let body = f(self, Expr::var(var), var);
        Instr::Loop {
            var,
            count: count.into(),
            body,
        }
    }

    /// Add a role with its instruction stream.
    pub fn role(&mut self, kind: RoleKind, body: Vec<Instr>) -> &mut Self {
        self.roles.push(Role { kind, body });
        self
    }

    /// Mark the kernel persistent (§5.3 persistent-kernel optimization).
    pub fn persistent(&mut self, yes: bool) -> &mut Self {
        self.persistent = yes;
        self
    }

    /// Assemble the kernel. Call [`Kernel::validate`] (or launch it through
    /// [`crate::Simulator`], which validates) before trusting it.
    #[must_use]
    pub fn build(self) -> Kernel {
        Kernel {
            name: self.name,
            grid: self.grid,
            params: self.params,
            smem: self.smem,
            frags: self.frags,
            mbars: self.mbars,
            roles: self.roles,
            persistent: self.persistent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn builder_indices_are_sequential() {
        let mut b = KernelBuilder::new("k", [2, 2, 1]);
        assert_eq!(b.param("A", 4, 4, DType::F16), 0);
        assert_eq!(b.param("B", 4, 4, DType::F16), 1);
        assert_eq!(b.smem("sA", 4, 4, DType::F16, 2), 0);
        assert_eq!(b.frag("acc", 4, 4), 0);
        assert_eq!(b.mbar(1), 0);
        assert_eq!(b.mbar(2), 1);
        assert_eq!(b.fresh_var(), 0);
        assert_eq!(b.fresh_var(), 1);
        b.role(RoleKind::Compute(0), vec![]);
        let k = b.build();
        assert_eq!(k.num_ctas(), 4);
        k.validate(&MachineConfig::test_gpu()).unwrap();
    }

    #[test]
    fn counted_loop_allocates_fresh_vars() {
        let mut b = KernelBuilder::new("k", [1, 1, 1]);
        let l = b.counted_loop(4i64, |b, _i, _id| {
            vec![b.counted_loop(2i64, |_b, _j, _jid| vec![Instr::Syncthreads])]
        });
        match l {
            Instr::Loop { var, body, .. } => {
                assert_eq!(var, 0);
                match &body[0] {
                    Instr::Loop { var, .. } => assert_eq!(*var, 1),
                    other => panic!("expected nested loop, got {other:?}"),
                }
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
