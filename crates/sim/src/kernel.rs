//! Kernel (device-program) representation and validation.
//!
//! A [`Kernel`] is what the Cypress compiler emits and what hand-written
//! baselines construct directly: a grid of CTAs, per-CTA resources
//! (shared-memory regions, register fragments, mbarriers), and one
//! statically-scheduled instruction stream per *role*. Roles correspond to
//! the warp-specialization structure of §4.2.5: one optional DMA warp plus
//! one or more compute warpgroups.

use crate::expr::Env;
use crate::instr::{Instr, SimtOp};
use crate::machine::MachineConfig;
use crate::mem::{FragDecl, MemRef, ParamDecl, Slice, SmemDecl, Space};
use std::collections::HashSet;
use std::fmt;

/// The kind of executor a role runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoleKind {
    /// A single data-movement warp (32 threads) that exclusively issues TMA
    /// work, as in Fig. 1b lines 6–19.
    Dma,
    /// A compute warpgroup (128 threads) identified by its index.
    Compute(usize),
}

impl fmt::Display for RoleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleKind::Dma => write!(f, "dma"),
            RoleKind::Compute(i) => write!(f, "wg{i}"),
        }
    }
}

/// One role: an executor kind plus its instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Role {
    /// Executor kind.
    pub kind: RoleKind,
    /// The statically scheduled instruction stream.
    pub body: Vec<Instr>,
}

/// mbarrier declaration: how many arrivals complete one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbarDecl {
    /// Arrivals per phase (TMA completions count as one arrival each).
    pub expected: usize,
}

/// A complete device program.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name for reports.
    pub name: String,
    /// Grid dimensions `[gx, gy, gz]` (CTAs).
    pub grid: [usize; 3],
    /// Global-memory parameters.
    pub params: Vec<ParamDecl>,
    /// Shared-memory regions (per CTA).
    pub smem: Vec<SmemDecl>,
    /// Register fragments (per compute warpgroup).
    pub frags: Vec<FragDecl>,
    /// mbarriers (per CTA).
    pub mbars: Vec<MbarDecl>,
    /// Roles: at most one DMA warp plus compute warpgroups.
    pub roles: Vec<Role>,
    /// `true` if this kernel is persistent: the grid is sized to the number
    /// of resident CTAs and work scheduling happens inside the kernel
    /// (the §5.3 persistent-kernel optimization). Persistent kernels pay
    /// the per-CTA launch overhead once per resident CTA rather than once
    /// per logical work item.
    pub persistent: bool,
}

impl Kernel {
    /// Total CTAs in the grid.
    #[must_use]
    pub fn num_ctas(&self) -> usize {
        self.grid[0] * self.grid[1] * self.grid[2]
    }

    /// Shared-memory bytes used by one CTA. Saturates on overflow so the
    /// budget check in [`Kernel::validate`] fires instead of wrapping.
    #[must_use]
    pub fn smem_bytes(&self) -> usize {
        self.smem
            .iter()
            .map(SmemDecl::size_bytes)
            .fold(0usize, usize::saturating_add)
    }

    /// Number of compute warpgroups.
    #[must_use]
    pub fn num_compute_warpgroups(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| matches!(r.kind, RoleKind::Compute(_)))
            .count()
    }

    /// `true` if the kernel has a dedicated DMA warp (warp specialization).
    #[must_use]
    pub fn has_dma_warp(&self) -> bool {
        self.roles.iter().any(|r| r.kind == RoleKind::Dma)
    }

    /// Registers per thread required by the largest compute warpgroup's
    /// fragments. Every compute warpgroup owns an instance of every
    /// fragment declaration, matching how the compiler allocates
    /// accumulators per warpgroup.
    #[must_use]
    pub fn regs_per_thread(&self) -> usize {
        // Base cost covers addresses, indices and operand staging.
        const BASE_REGS: usize = 40;
        self.frags
            .iter()
            .map(FragDecl::regs_per_thread)
            .fold(BASE_REGS, usize::saturating_add)
    }

    /// Warps per CTA (4 per compute warpgroup, 1 for a DMA warp).
    #[must_use]
    pub fn warps_per_cta(&self) -> usize {
        self.num_compute_warpgroups() * 4 + usize::from(self.has_dma_warp())
    }

    /// Validate the kernel against `machine`, checking every structural
    /// invariant the engine later relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] describing the first violated invariant:
    /// shared memory or register over-subscription, out-of-range memory or
    /// barrier references, loop trip counts that are not launch-constant,
    /// operations issued by a role that cannot perform them, or slices whose
    /// address space is illegal for the instruction.
    pub fn validate(&self, machine: &MachineConfig) -> Result<(), KernelError> {
        if self.num_ctas() == 0 {
            return Err(KernelError::EmptyGrid);
        }
        if self.roles.is_empty() {
            return Err(KernelError::NoRoles);
        }
        let dma_count = self
            .roles
            .iter()
            .filter(|r| r.kind == RoleKind::Dma)
            .count();
        if dma_count > 1 {
            return Err(KernelError::MultipleDmaWarps);
        }
        let mut seen = HashSet::new();
        for r in &self.roles {
            if !seen.insert(r.kind) {
                return Err(KernelError::DuplicateRole(r.kind));
            }
        }
        if self.smem_bytes() > machine.smem_per_sm {
            return Err(KernelError::SharedMemoryExceeded {
                used: self.smem_bytes(),
                limit: machine.smem_per_sm,
            });
        }
        if self.regs_per_thread() > machine.max_regs_per_thread {
            return Err(KernelError::RegistersExceeded {
                used: self.regs_per_thread(),
                limit: machine.max_regs_per_thread,
            });
        }
        if self.warps_per_cta() > machine.max_warps_per_sm {
            return Err(KernelError::TooManyWarps {
                used: self.warps_per_cta(),
                limit: machine.max_warps_per_sm,
            });
        }
        for role in &self.roles {
            self.validate_block(&role.body, role.kind)?;
        }
        Ok(())
    }

    fn validate_block(&self, body: &[Instr], role: RoleKind) -> Result<(), KernelError> {
        for instr in body {
            match instr {
                Instr::TmaLoad { src, dst, bar } | Instr::CpAsyncLoad { src, dst, bar } => {
                    self.check_slice(src, Space::Global)?;
                    self.check_slice(dst, Space::Shared)?;
                    self.check_bar(*bar)?;
                    self.check_same_extent(src, dst)?;
                }
                Instr::TmaStore { src, dst } => {
                    self.check_slice(src, Space::Shared)?;
                    self.check_slice(dst, Space::Global)?;
                    self.check_same_extent(src, dst)?;
                }
                Instr::TmaStoreWait | Instr::Syncthreads => {}
                Instr::MbarArrive { bar } | Instr::MbarWait { bar } => self.check_bar(*bar)?,
                Instr::Wgmma { a, b, acc, .. } => {
                    if role == RoleKind::Dma {
                        return Err(KernelError::DmaWarpComputes);
                    }
                    if a.mem.space() == Space::Global || b.mem.space() != Space::Shared {
                        return Err(KernelError::IllegalOperandSpace);
                    }
                    self.check_slice_exists(a)?;
                    self.check_slice(b, Space::Shared)?;
                    self.check_slice(acc, Space::Register)?;
                }
                Instr::WgmmaWait { .. } => {
                    if role == RoleKind::Dma {
                        return Err(KernelError::DmaWarpComputes);
                    }
                }
                Instr::Simt(op) => {
                    if role == RoleKind::Dma && self.simt_touches_registers(op) {
                        return Err(KernelError::DmaWarpComputes);
                    }
                    self.check_slice_exists(op.dst())?;
                    for s in op.sources() {
                        self.check_slice_exists(s)?;
                    }
                }
                Instr::NamedBarrier { parties, .. } => {
                    if *parties > self.roles.len() {
                        return Err(KernelError::BarrierPartiesExceedRoles {
                            parties: *parties,
                            roles: self.roles.len(),
                        });
                    }
                }
                Instr::Loop { count, body, .. } => {
                    if count.references_vars() {
                        return Err(KernelError::DynamicTripCount);
                    }
                    self.validate_block(body, role)?;
                }
                Instr::If { then_, else_, .. } => {
                    self.validate_block(then_, role)?;
                    self.validate_block(else_, role)?;
                }
            }
        }
        Ok(())
    }

    fn simt_touches_registers(&self, op: &SimtOp) -> bool {
        op.dst().mem.space() == Space::Register
            || op
                .sources()
                .iter()
                .any(|s| s.mem.space() == Space::Register)
    }

    fn check_bar(&self, bar: usize) -> Result<(), KernelError> {
        if bar >= self.mbars.len() {
            return Err(KernelError::UnknownBarrier(bar));
        }
        Ok(())
    }

    fn check_same_extent(&self, a: &Slice, b: &Slice) -> Result<(), KernelError> {
        // Widen to u128 so two extents that wrap to the same usize in a
        // release build still compare unequal.
        if (a.rows as u128) * (a.cols as u128) != (b.rows as u128) * (b.cols as u128) {
            return Err(KernelError::CopyExtentMismatch {
                src: (a.rows, a.cols),
                dst: (b.rows, b.cols),
            });
        }
        Ok(())
    }

    fn check_slice(&self, s: &Slice, space: Space) -> Result<(), KernelError> {
        if s.mem.space() != space {
            return Err(KernelError::IllegalOperandSpace);
        }
        self.check_slice_exists(s)
    }

    fn check_slice_exists(&self, s: &Slice) -> Result<(), KernelError> {
        let ok = match s.mem {
            MemRef::Param(i) => i < self.params.len(),
            MemRef::Smem(i) => i < self.smem.len(),
            MemRef::Frag(i) => i < self.frags.len(),
        };
        if !ok {
            return Err(KernelError::UnknownMemoryObject(s.mem));
        }
        if s.rows == 0 || s.cols == 0 {
            return Err(KernelError::EmptySlice(s.mem));
        }
        Ok(())
    }

    /// Static per-CTA totals used by the bandwidth model and for reporting:
    /// `(global_load_bytes, global_store_bytes, tc_flops, simt_flops)`.
    ///
    /// Loop bodies are weighted by trip count, `If` branches by the maximum
    /// of the two sides (conservative). Trip counts are evaluated with the
    /// CTA-(0,0,0) environment; kernels with grid-dependent trip counts get
    /// an approximation, which only affects the L2 hit-rate estimate.
    #[must_use]
    pub fn static_totals(&self) -> StaticTotals {
        let env = Env::for_block([0, 0, 0]);
        let mut t = StaticTotals::default();
        for role in &self.roles {
            self.accumulate(&role.body, &env, 1.0, &mut t);
        }
        t
    }

    fn accumulate(&self, body: &[Instr], env: &Env, weight: f64, t: &mut StaticTotals) {
        for instr in body {
            match instr {
                Instr::TmaLoad { src, .. } | Instr::CpAsyncLoad { src, .. } => {
                    t.load_bytes += weight * self.slice_bytes(src);
                }
                Instr::TmaStore { dst, .. } => {
                    t.store_bytes += weight * self.slice_bytes(dst);
                }
                Instr::Wgmma { a, b, .. } => {
                    // flops = 2 * m * n * k; k is the shared extent.
                    let m = a.rows as f64;
                    let k = a.cols as f64;
                    let n = if b.rows == a.cols { b.cols } else { b.rows } as f64;
                    t.tc_flops += weight * 2.0 * m * n * k;
                }
                Instr::Simt(op) => {
                    t.simt_flops += weight * op.dst().num_elements() as f64;
                }
                Instr::Loop { count, body, .. } => {
                    let trips = count.eval(env).unwrap_or(0).max(0) as f64;
                    self.accumulate(body, env, weight * trips, t);
                }
                Instr::If { then_, else_, .. } => {
                    let mut a = StaticTotals::default();
                    let mut b = StaticTotals::default();
                    self.accumulate(then_, env, weight, &mut a);
                    self.accumulate(else_, env, weight, &mut b);
                    t.load_bytes += a.load_bytes.max(b.load_bytes);
                    t.store_bytes += a.store_bytes.max(b.store_bytes);
                    t.tc_flops += a.tc_flops.max(b.tc_flops);
                    t.simt_flops += a.simt_flops.max(b.simt_flops);
                }
                _ => {}
            }
        }
    }

    fn slice_bytes(&self, s: &Slice) -> f64 {
        let elem = match s.mem {
            MemRef::Param(i) => self.params[i].dtype.size_bytes(),
            MemRef::Smem(i) => self.smem[i].dtype.size_bytes(),
            MemRef::Frag(_) => 4,
        };
        (s.num_elements() * elem) as f64
    }
}

/// Per-CTA static totals computed by [`Kernel::static_totals`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticTotals {
    /// Global-memory bytes loaded per CTA.
    pub load_bytes: f64,
    /// Global-memory bytes stored per CTA.
    pub store_bytes: f64,
    /// Tensor Core FLOPs per CTA.
    pub tc_flops: f64,
    /// SIMT FLOPs per CTA.
    pub simt_flops: f64,
}

/// Kernel validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The grid has zero CTAs.
    EmptyGrid,
    /// The kernel declares no roles.
    NoRoles,
    /// More than one DMA warp was declared.
    MultipleDmaWarps,
    /// The same role kind appears twice.
    DuplicateRole(RoleKind),
    /// Shared memory exceeds the per-SM capacity.
    SharedMemoryExceeded {
        /// Bytes requested.
        used: usize,
        /// Machine limit.
        limit: usize,
    },
    /// Register fragments exceed the per-thread register budget.
    RegistersExceeded {
        /// Registers required.
        used: usize,
        /// Machine limit.
        limit: usize,
    },
    /// More warps than the SM can host.
    TooManyWarps {
        /// Warps requested.
        used: usize,
        /// Machine limit.
        limit: usize,
    },
    /// A barrier index has no declaration.
    UnknownBarrier(usize),
    /// A slice references a memory object that does not exist.
    UnknownMemoryObject(MemRef),
    /// A slice has zero extent.
    EmptySlice(MemRef),
    /// Source and destination extents of a copy disagree.
    CopyExtentMismatch {
        /// Source extent.
        src: (usize, usize),
        /// Destination extent.
        dst: (usize, usize),
    },
    /// The DMA warp attempted Tensor Core or register work.
    DmaWarpComputes,
    /// An operand lives in an address space the instruction cannot access.
    IllegalOperandSpace,
    /// A named barrier expects more parties than there are roles.
    BarrierPartiesExceedRoles {
        /// Parties requested.
        parties: usize,
        /// Roles declared.
        roles: usize,
    },
    /// A loop trip count references a loop variable.
    DynamicTripCount,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::EmptyGrid => write!(f, "kernel grid is empty"),
            KernelError::NoRoles => write!(f, "kernel declares no roles"),
            KernelError::MultipleDmaWarps => write!(f, "kernel declares more than one dma warp"),
            KernelError::DuplicateRole(k) => write!(f, "duplicate role {k}"),
            KernelError::SharedMemoryExceeded { used, limit } => {
                write!(
                    f,
                    "shared memory exceeded: {used} bytes used, {limit} available"
                )
            }
            KernelError::RegistersExceeded { used, limit } => {
                write!(
                    f,
                    "registers per thread exceeded: {used} used, {limit} available"
                )
            }
            KernelError::TooManyWarps { used, limit } => {
                write!(f, "too many warps per cta: {used} used, {limit} available")
            }
            KernelError::UnknownBarrier(b) => write!(f, "unknown mbarrier {b}"),
            KernelError::UnknownMemoryObject(m) => write!(f, "unknown memory object {m:?}"),
            KernelError::EmptySlice(m) => write!(f, "empty slice of {m:?}"),
            KernelError::CopyExtentMismatch { src, dst } => {
                write!(f, "copy extent mismatch: src {src:?}, dst {dst:?}")
            }
            KernelError::DmaWarpComputes => {
                write!(f, "dma warp may only issue data movement and barriers")
            }
            KernelError::IllegalOperandSpace => write!(f, "operand in illegal address space"),
            KernelError::BarrierPartiesExceedRoles { parties, roles } => {
                write!(
                    f,
                    "named barrier expects {parties} parties but kernel has {roles} roles"
                )
            }
            KernelError::DynamicTripCount => {
                write!(f, "loop trip count must be launch-constant")
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use cypress_tensor::DType;

    fn minimal_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            grid: [1, 1, 1],
            params: vec![ParamDecl {
                name: "A".into(),
                rows: 64,
                cols: 64,
                dtype: DType::F16,
            }],
            smem: vec![SmemDecl {
                name: "sA".into(),
                rows: 64,
                cols: 64,
                dtype: DType::F16,
                stages: 2,
            }],
            frags: vec![FragDecl {
                name: "acc".into(),
                rows: 64,
                cols: 64,
            }],
            mbars: vec![MbarDecl { expected: 1 }],
            roles: vec![Role {
                kind: RoleKind::Compute(0),
                body: vec![],
            }],
            persistent: false,
        }
    }

    #[test]
    fn minimal_kernel_validates() {
        let k = minimal_kernel();
        k.validate(&MachineConfig::test_gpu()).unwrap();
        assert_eq!(k.num_ctas(), 1);
        assert_eq!(k.smem_bytes(), 64 * 64 * 2 * 2);
        assert_eq!(k.warps_per_cta(), 4);
        assert!(!k.has_dma_warp());
    }

    #[test]
    fn smem_overflow_detected() {
        let mut k = minimal_kernel();
        k.smem[0].stages = 100;
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::SharedMemoryExceeded { .. })
        ));
    }

    #[test]
    fn register_overflow_detected() {
        let mut k = minimal_kernel();
        // 128x512 f32 = 512 regs/thread, beyond the 255 limit.
        k.frags[0] = FragDecl {
            name: "acc".into(),
            rows: 128,
            cols: 512,
        };
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::RegistersExceeded { .. })
        ));
    }

    #[test]
    fn arithmetic_overflow_in_declarations_still_rejected() {
        // Footprints that overflow usize saturate instead of wrapping, so
        // the budget checks reject them with the same typed errors.
        let mut k = minimal_kernel();
        k.smem[0].rows = usize::MAX / 2;
        k.smem[0].cols = 3;
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::SharedMemoryExceeded { .. })
        ));
        let mut k = minimal_kernel();
        k.frags[0].rows = usize::MAX / 2;
        k.frags[0].cols = 4;
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::RegistersExceeded { .. })
        ));
    }

    #[test]
    fn dma_warp_cannot_compute() {
        let mut k = minimal_kernel();
        k.roles = vec![Role {
            kind: RoleKind::Dma,
            body: vec![Instr::Wgmma {
                a: Slice::smem(0).extent(64, 16),
                b: Slice::smem(0).extent(16, 64),
                acc: Slice::frag(0).extent(64, 64),
                accumulate: true,
                transpose_b: false,
            }],
        }];
        assert_eq!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::DmaWarpComputes)
        );
    }

    #[test]
    fn tma_space_checked() {
        let mut k = minimal_kernel();
        k.roles[0].body = vec![Instr::TmaLoad {
            src: Slice::smem(0).extent(8, 8),
            dst: Slice::smem(0).extent(8, 8),
            bar: 0,
        }];
        assert_eq!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::IllegalOperandSpace)
        );
    }

    #[test]
    fn unknown_barrier_detected() {
        let mut k = minimal_kernel();
        k.roles[0].body = vec![Instr::MbarWait { bar: 3 }];
        assert_eq!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::UnknownBarrier(3))
        );
    }

    #[test]
    fn dynamic_trip_count_rejected() {
        let mut k = minimal_kernel();
        k.roles[0].body = vec![Instr::Loop {
            var: 0,
            count: Expr::lit(4),
            body: vec![Instr::Loop {
                var: 1,
                count: Expr::var(0),
                body: vec![],
            }],
        }];
        assert_eq!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::DynamicTripCount)
        );
    }

    #[test]
    fn copy_extent_mismatch_detected() {
        let mut k = minimal_kernel();
        k.roles[0].body = vec![Instr::TmaLoad {
            src: Slice::param(0).extent(8, 8),
            dst: Slice::smem(0).extent(8, 4),
            bar: 0,
        }];
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::CopyExtentMismatch { .. })
        ));
    }

    #[test]
    fn static_totals_weight_loops() {
        let mut k = minimal_kernel();
        k.roles[0].body = vec![Instr::Loop {
            var: 0,
            count: Expr::lit(4),
            body: vec![
                Instr::TmaLoad {
                    src: Slice::param(0).extent(16, 16),
                    dst: Slice::smem(0).extent(16, 16),
                    bar: 0,
                },
                Instr::Wgmma {
                    a: Slice::smem(0).extent(64, 16),
                    b: Slice::smem(0).extent(16, 64),
                    acc: Slice::frag(0).extent(64, 64),
                    accumulate: true,
                    transpose_b: false,
                },
            ],
        }];
        let t = k.static_totals();
        assert_eq!(t.load_bytes, 4.0 * 256.0 * 2.0);
        assert_eq!(t.tc_flops, 4.0 * 2.0 * 64.0 * 64.0 * 16.0);
    }

    #[test]
    fn duplicate_roles_rejected() {
        let mut k = minimal_kernel();
        k.roles.push(Role {
            kind: RoleKind::Compute(0),
            body: vec![],
        });
        assert!(matches!(
            k.validate(&MachineConfig::test_gpu()),
            Err(KernelError::DuplicateRole(_))
        ));
    }
}
