//! Multi-device machine topology: N simulated devices behind
//! NVLink-class links.
//!
//! A [`Topology`] is the multi-device generalization of one
//! [`MachineConfig`]: a list of devices (each with its own SMs, L2, and
//! HBM) plus a list of [`Link`]s, each an unordered device pair with a
//! shared bidirectional bandwidth and a fixed latency. The concurrent
//! contention model ([`crate::ConcurrentEngine::with_topology`]) treats
//! every link as one more fluid resource class: compute kernels contend
//! only for their own device's SM/HBM/L2, while transfers on the same
//! link split its bytes-per-cycle proportionally to demand.
//!
//! [`Topology::nvlink`] builds the configuration the runtime's sharded
//! placement uses: `n` identical devices, fully connected (every pair
//! has a dedicated point-to-point link, the NVSwitch abstraction). The
//! H100's NVLink 4 bandwidth (900 GB/s aggregate per device pair) is
//! derived per machine name like [`crate::CostConstants::for_machine`];
//! unknown machines fall back to a fixed fraction of their HBM
//! bandwidth so the model stays honest for the test GPU too.

use crate::machine::MachineConfig;

/// Fraction of a device's HBM bandwidth an NVLink-class link sustains,
/// used for machines without a datasheet entry. The H100 ratio:
/// 900 GB/s NVLink 4 over 3.35 TB/s HBM3 ≈ 0.27; we round down to keep
/// the test machine's links clearly slower than its memory system.
const NVLINK_HBM_FRACTION: f64 = 0.25;

/// Cycles from transfer launch until the first byte crosses an
/// NVLink-class link (port arbitration + serialization start), expressed
/// as a multiple of the machine's kernel-launch overhead so it scales
/// with each machine's latency regime.
const NVLINK_LATENCY_LAUNCH_FACTOR: f64 = 0.5;

/// One inter-device link: an unordered device pair sharing a fixed
/// bandwidth. Transfers in both directions draw on the same capacity
/// (the fluid model's proportional split).
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Lower device id of the pair.
    pub a: usize,
    /// Higher device id of the pair.
    pub b: usize,
    /// Shared link bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Cycles from transfer launch until the first byte moves.
    pub latency: f64,
}

impl Link {
    /// Solo cycles to move `bytes` across this link: launch overhead on
    /// the issuing device, link latency, then serialization at full
    /// bandwidth.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: f64, machine: &MachineConfig) -> f64 {
        machine.kernel_launch_cycles + self.latency + bytes / self.bytes_per_cycle
    }
}

/// N simulated devices and the links between them.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Per-device machine configurations.
    pub devices: Vec<MachineConfig>,
    /// Inter-device links (unordered pairs, at most one per pair).
    pub links: Vec<Link>,
}

impl Topology {
    /// The degenerate one-device topology: no links. A
    /// [`crate::ConcurrentEngine`] built over it is bit-identical to one
    /// built from the machine directly.
    #[must_use]
    pub fn single(machine: MachineConfig) -> Self {
        Topology {
            devices: vec![machine],
            links: Vec::new(),
        }
    }

    /// `n` copies of `machine` behind all-pairs NVLink-class links (the
    /// NVSwitch abstraction: every device pair gets the full
    /// point-to-point bandwidth). `n` is clamped to at least 1; `n == 1`
    /// is exactly [`Topology::single`].
    #[must_use]
    pub fn nvlink(machine: &MachineConfig, n: usize) -> Self {
        let n = n.max(1);
        let bytes_per_cycle = nvlink_bytes_per_cycle(machine);
        let latency = machine.kernel_launch_cycles * NVLINK_LATENCY_LAUNCH_FACTOR;
        let mut links = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                links.push(Link {
                    a,
                    b,
                    bytes_per_cycle,
                    latency,
                });
            }
        }
        Topology {
            devices: vec![machine.clone(); n],
            links,
        }
    }

    /// Number of devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Index of the link joining devices `a` and `b` (order-insensitive),
    /// or `None` when the pair is not connected (or `a == b` — a local
    /// move needs no link).
    #[must_use]
    pub fn link_between(&self, a: usize, b: usize) -> Option<usize> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.links.iter().position(|l| l.a == lo && l.b == hi)
    }

    /// Structural validity: at least one device, link endpoints in range
    /// and distinct, at most one link per pair, positive bandwidths and
    /// finite non-negative latencies. Returns a description of the first
    /// violation — the runtime wraps it in its typed error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("topology has no devices".to_string());
        }
        let n = self.devices.len();
        for (i, l) in self.links.iter().enumerate() {
            if l.a >= n || l.b >= n {
                return Err(format!(
                    "link {i} joins devices {}-{} but the topology has {n} devices",
                    l.a, l.b
                ));
            }
            if l.a == l.b {
                return Err(format!("link {i} joins device {} to itself", l.a));
            }
            if l.a > l.b {
                return Err(format!(
                    "link {i} endpoints {}-{} are not in canonical (low, high) order",
                    l.a, l.b
                ));
            }
            if !l.bytes_per_cycle.is_finite() || l.bytes_per_cycle <= 0.0 {
                return Err(format!(
                    "link {i} bandwidth {} bytes/cycle is not a positive finite number",
                    l.bytes_per_cycle
                ));
            }
            if !l.latency.is_finite() || l.latency < 0.0 {
                return Err(format!(
                    "link {i} latency {} is not a finite non-negative cycle count",
                    l.latency
                ));
            }
            if self.links[..i]
                .iter()
                .any(|prev| prev.a == l.a && prev.b == l.b)
            {
                return Err(format!(
                    "devices {}-{} are joined by more than one link",
                    l.a, l.b
                ));
            }
        }
        Ok(())
    }
}

/// NVLink-class bandwidth for `machine` in bytes per cycle, matched by
/// name like [`crate::CostConstants::for_machine`].
#[must_use]
pub fn nvlink_bytes_per_cycle(machine: &MachineConfig) -> f64 {
    match machine.name {
        // NVLink 4: 900 GB/s aggregate per device at the 1.755 GHz core
        // clock ≈ 513 bytes/cycle.
        "H100-SXM5" => 900.0e9 / (machine.clock_ghz * 1e9),
        _ => machine.hbm_bytes_per_cycle * NVLINK_HBM_FRACTION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_has_no_links_and_one_device() {
        let t = Topology::single(MachineConfig::test_gpu());
        assert_eq!(t.device_count(), 1);
        assert!(t.links.is_empty());
        assert!(t.validate().is_ok());
        assert_eq!(t, Topology::nvlink(&MachineConfig::test_gpu(), 1));
    }

    #[test]
    fn nvlink_is_all_pairs() {
        let t = Topology::nvlink(&MachineConfig::test_gpu(), 4);
        assert_eq!(t.device_count(), 4);
        assert_eq!(t.links.len(), 6, "C(4,2) point-to-point links");
        assert!(t.validate().is_ok());
        for a in 0..4 {
            assert_eq!(t.link_between(a, a), None, "no self links");
            for b in 0..4 {
                if a != b {
                    let idx = t.link_between(a, b).expect("pair connected");
                    assert_eq!(t.link_between(b, a), Some(idx), "order-insensitive");
                }
            }
        }
    }

    #[test]
    fn h100_link_bandwidth_matches_nvlink4() {
        let bw = nvlink_bytes_per_cycle(&MachineConfig::h100_sxm5());
        // 900 GB/s at 1.755 GHz.
        assert!((bw - 512.82).abs() < 0.1, "{bw}");
        let test_bw = nvlink_bytes_per_cycle(&MachineConfig::test_gpu());
        assert!(
            test_bw < MachineConfig::test_gpu().hbm_bytes_per_cycle,
            "links must be slower than local HBM"
        );
    }

    #[test]
    fn transfer_cycles_cover_launch_latency_and_serialization() {
        let machine = MachineConfig::test_gpu();
        let t = Topology::nvlink(&machine, 2);
        let link = &t.links[0];
        let cycles = link.transfer_cycles(16_384.0, &machine);
        let serialization = 16_384.0 / link.bytes_per_cycle;
        assert!(
            (cycles - (machine.kernel_launch_cycles + link.latency + serialization)).abs() < 1e-9
        );
    }

    #[test]
    fn validate_rejects_malformed_topologies() {
        let m = MachineConfig::test_gpu();
        let empty = Topology {
            devices: vec![],
            links: vec![],
        };
        assert!(empty.validate().unwrap_err().contains("no devices"));

        let mut t = Topology::nvlink(&m, 2);
        t.links[0].b = 5;
        assert!(t.validate().unwrap_err().contains("2 devices"));

        let mut t = Topology::nvlink(&m, 2);
        t.links[0].bytes_per_cycle = 0.0;
        assert!(t.validate().unwrap_err().contains("bandwidth"));

        let mut t = Topology::nvlink(&m, 2);
        t.links.push(t.links[0].clone());
        assert!(t.validate().unwrap_err().contains("more than one link"));

        let mut t = Topology::nvlink(&m, 2);
        t.links[0].a = 1;
        t.links[0].b = 0;
        assert!(t.validate().unwrap_err().contains("canonical"));
    }
}
