//! A small scoped worker pool over [`std::thread::scope`].
//!
//! The runtime layer parallelizes embarrassingly parallel host work —
//! solo-timing a batch of kernels, compiling autotune candidates, running
//! the ready wave of a functional graph — without taking on a thread-pool
//! dependency. [`parallel_map`] fans a work list out to scoped worker
//! threads with an atomic work-stealing cursor and returns the results
//! **in input order**, so callers stay deterministic regardless of which
//! worker finished first. A `parallelism` of 1 (or a single item) runs the
//! closure inline on the calling thread — byte-for-byte today's serial
//! behavior, with no threads spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads the host offers (at least 1). Used as the
/// default parallelism of [`crate::Simulator`] and the runtime session.
#[must_use]
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every item on up to `parallelism` scoped worker threads,
/// returning the results in input order.
///
/// Work is claimed item-by-item through an atomic cursor, so uneven item
/// costs balance across workers. With `parallelism <= 1` or fewer than two
/// items the map runs inline on the calling thread.
///
/// # Panics
///
/// A panic inside `f` is resumed on the calling thread once the scope
/// joins (the same observable behavior as the inline path).
pub fn parallel_map<T, R, F>(parallelism: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if parallelism <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = parallelism.min(n);
    // Each slot is claimed exactly once (the cursor hands every index to
    // one worker), so the mutexes are uncontended — they only make the
    // by-value move out of the shared list safe.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take();
                        if let Some(item) = item {
                            local.push((i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("the cursor hands every index to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        for parallelism in [1, 2, 8] {
            let out = parallel_map(parallelism, (0..100).collect(), |x: usize| x * 3);
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: Vec<usize> = parallel_map(8, Vec::new(), |x: usize| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(8, vec![7], |x: usize| x + 1), vec![8]);
    }

    #[test]
    fn oversubscribed_parallelism_is_clamped_to_items() {
        let out = parallel_map(64, vec![1, 2, 3], |x: i32| -x);
        assert_eq!(out, vec![-1, -2, -3]);
    }

    #[test]
    fn errors_travel_as_values() {
        let out: Vec<Result<usize, String>> = parallel_map(4, (0..10).collect(), |x: usize| {
            if x.is_multiple_of(2) {
                Ok(x)
            } else {
                Err(format!("odd {x}"))
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 5);
        assert_eq!(out[4], Ok(4));
    }
}
