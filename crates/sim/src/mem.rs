//! Memory objects and slices of the device-program representation.
//!
//! A kernel names three kinds of memory objects, mirroring the paper's
//! machine model (Fig. 2):
//!
//! - [`ParamDecl`]: global-memory tensors bound at launch,
//! - [`SmemDecl`]: per-CTA shared-memory regions, optionally multi-stage
//!   (the `PIPE` dimension of Fig. 1b),
//! - [`FragDecl`]: per-warpgroup register-file fragments (accumulators).
//!
//! All objects are logically 2-D matrices; batched tensors are bound with
//! their batch dimension folded into rows, and kernels compute batch offsets
//! in row expressions. A [`Slice`] is a rectangular window of one object
//! with expression-valued origin, which is how instructions address data.

use crate::expr::Expr;
use cypress_tensor::DType;

/// Global-memory kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Name for diagnostics and pretty-printing.
    pub name: String,
    /// Logical rows (batch dims folded in).
    pub rows: usize,
    /// Logical columns.
    pub cols: usize,
    /// Element type in device memory.
    pub dtype: DType,
}

impl ParamDecl {
    /// Bytes occupied in global memory. Saturates on overflow so a
    /// hostile declaration reads as "too big" at validation instead of
    /// wrapping to a small number in release builds.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.rows
            .saturating_mul(self.cols)
            .saturating_mul(self.dtype.size_bytes())
    }
}

/// Per-CTA shared-memory region.
#[derive(Debug, Clone, PartialEq)]
pub struct SmemDecl {
    /// Name for diagnostics.
    pub name: String,
    /// Rows of one stage.
    pub rows: usize,
    /// Columns of one stage.
    pub cols: usize,
    /// Element type.
    pub dtype: DType,
    /// Pipeline stages (1 for unpipelined buffers). Stage `s` of the region
    /// is an independent buffer; slices select a stage with an expression,
    /// typically `k % PIPE`.
    pub stages: usize,
}

impl SmemDecl {
    /// Total bytes across all stages. Saturates on overflow so a
    /// hostile declaration fails the shared-memory budget check instead
    /// of wrapping past it in release builds.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.rows
            .saturating_mul(self.cols)
            .saturating_mul(self.dtype.size_bytes())
            .saturating_mul(self.stages)
    }
}

/// Per-warpgroup register fragment (always FP32, like WGMMA accumulators).
#[derive(Debug, Clone, PartialEq)]
pub struct FragDecl {
    /// Name for diagnostics.
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl FragDecl {
    /// 32-bit registers required per thread of the owning warpgroup.
    /// Saturates on overflow so oversized fragments fail the register
    /// budget check instead of wrapping under it in release builds.
    #[must_use]
    pub fn regs_per_thread(&self) -> usize {
        self.rows.saturating_mul(self.cols).div_ceil(128)
    }
}

/// Which memory object a slice refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRef {
    /// Global parameter by declaration index.
    Param(usize),
    /// Shared region by declaration index.
    Smem(usize),
    /// Register fragment by declaration index (owned by the executing
    /// warpgroup; each compute warpgroup has its own instance).
    Frag(usize),
}

impl MemRef {
    /// The address space this reference lives in.
    #[must_use]
    pub fn space(self) -> Space {
        match self {
            MemRef::Param(_) => Space::Global,
            MemRef::Smem(_) => Space::Shared,
            MemRef::Frag(_) => Space::Register,
        }
    }
}

/// Address spaces of the machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device global memory (HBM behind L2).
    Global,
    /// Per-CTA shared memory.
    Shared,
    /// Per-warpgroup register file.
    Register,
}

/// A rectangular window of a memory object with expression-valued origin.
///
/// # Example
///
/// ```
/// use cypress_sim::mem::Slice;
/// use cypress_sim::expr::Expr;
///
/// // tile (blockIdx.x, k) of a global matrix, 128x64 elements
/// let s = Slice::param(0)
///     .at(Expr::block_x() * 128, Expr::var(0) * 64)
///     .extent(128, 64);
/// assert_eq!(s.rows, 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// Target object.
    pub mem: MemRef,
    /// Pipeline stage (shared regions only; must evaluate within stages).
    pub stage: Expr,
    /// Row origin.
    pub row0: Expr,
    /// Column origin.
    pub col0: Expr,
    /// Row extent (static).
    pub rows: usize,
    /// Column extent (static).
    pub cols: usize,
}

impl Slice {
    /// Slice of global parameter `idx`, origin (0,0), extent 0 (call
    /// [`Slice::extent`]).
    #[must_use]
    pub fn param(idx: usize) -> Self {
        Slice::new(MemRef::Param(idx))
    }

    /// Slice of shared region `idx`.
    #[must_use]
    pub fn smem(idx: usize) -> Self {
        Slice::new(MemRef::Smem(idx))
    }

    /// Slice of register fragment `idx` of the executing warpgroup.
    #[must_use]
    pub fn frag(idx: usize) -> Self {
        Slice::new(MemRef::Frag(idx))
    }

    fn new(mem: MemRef) -> Self {
        Slice {
            mem,
            stage: Expr::lit(0),
            row0: Expr::lit(0),
            col0: Expr::lit(0),
            rows: 0,
            cols: 0,
        }
    }

    /// Set the origin.
    #[must_use]
    pub fn at(mut self, row0: impl Into<Expr>, col0: impl Into<Expr>) -> Self {
        self.row0 = row0.into();
        self.col0 = col0.into();
        self
    }

    /// Set the extent.
    #[must_use]
    pub fn extent(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Select a pipeline stage (shared regions only).
    #[must_use]
    pub fn stage(mut self, stage: impl Into<Expr>) -> Self {
        self.stage = stage.into();
        self
    }

    /// Number of elements covered.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;

    #[test]
    fn param_sizes() {
        let p = ParamDecl {
            name: "A".into(),
            rows: 64,
            cols: 32,
            dtype: DType::F16,
        };
        assert_eq!(p.size_bytes(), 64 * 32 * 2);
    }

    #[test]
    fn smem_stages_multiply_footprint() {
        let s = SmemDecl {
            name: "sA".into(),
            rows: 128,
            cols: 64,
            dtype: DType::F16,
            stages: 3,
        };
        assert_eq!(s.size_bytes(), 128 * 64 * 2 * 3);
    }

    #[test]
    fn frag_register_accounting() {
        // 64x256 f32 accumulator = 16384 elements over 128 threads = 128 regs.
        let f = FragDecl {
            name: "acc".into(),
            rows: 64,
            cols: 256,
        };
        assert_eq!(f.regs_per_thread(), 128);
        let tiny = FragDecl {
            name: "m".into(),
            rows: 64,
            cols: 1,
        };
        assert_eq!(tiny.regs_per_thread(), 1);
    }

    #[test]
    fn overflow_sized_declarations_saturate_instead_of_wrapping() {
        // rows * cols overflows usize; the sizes must clamp to usize::MAX so
        // budget checks in `Kernel::validate` reject rather than accept a
        // wrapped-around small number.
        let p = ParamDecl {
            name: "huge".into(),
            rows: usize::MAX / 2,
            cols: 3,
            dtype: DType::F32,
        };
        assert_eq!(p.size_bytes(), usize::MAX);
        let s = SmemDecl {
            name: "huge".into(),
            rows: usize::MAX / 2,
            cols: 3,
            dtype: DType::F16,
            stages: 2,
        };
        assert_eq!(s.size_bytes(), usize::MAX);
        let f = FragDecl {
            name: "huge".into(),
            rows: usize::MAX / 2,
            cols: 4,
        };
        assert_eq!(f.regs_per_thread(), usize::MAX.div_ceil(128));
    }

    #[test]
    fn slice_builder_evaluates() {
        let s = Slice::smem(2)
            .stage(Expr::var(0) % 3)
            .at(0, 16)
            .extent(16, 16);
        let mut env = Env::default();
        env.bind(0, 7);
        assert_eq!(s.stage.eval(&env).unwrap(), 1);
        assert_eq!(s.num_elements(), 256);
        assert_eq!(s.mem.space(), Space::Shared);
        assert_eq!(Slice::param(0).mem.space(), Space::Global);
        assert_eq!(Slice::frag(0).mem.space(), Space::Register);
    }
}
