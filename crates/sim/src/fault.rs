//! Seeded, deterministic fault injection for the concurrent engine.
//!
//! A [`FaultPlan`] is a pure description of what goes wrong during a
//! simulated multi-device run — which device dies and when, which launch
//! on which device fails transiently, which cycle windows run slow,
//! which links degrade. Attach one to a
//! [`crate::ConcurrentEngine::with_fault_plan`] and faulted launches
//! surface as typed [`crate::LaunchOutcome`]s instead of silent
//! successes; the runtime layers retry and re-sharding policies on top.
//!
//! Everything here is deterministic: a plan is a plain value, the seeded
//! constructor ([`FaultPlan::seeded`]) derives its faults from a
//! splitmix64 stream, and the engine consumes the plan without any
//! host-side entropy. The same plan against the same launch sequence
//! always produces the same fault timeline — which is what makes retry
//! bitwise-safe and replay debugging possible.

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Device `device` fails permanently at cycle `at`: every launch
    /// in flight on it at that cycle is killed with
    /// [`crate::LaunchOutcome::DeviceLost`], and later launches on it
    /// fail immediately. The device's *memory* stays drainable (the
    /// fail-stop model covers compute, not HBM), so a recovery layer
    /// can still move stranded buffers off over the links.
    DeviceLoss {
        /// The device that dies.
        device: usize,
        /// The cycle it dies at.
        at: f64,
    },
    /// The `launch`-th compute launch (0-based, counted per device) on
    /// `device` fails once with [`crate::LaunchOutcome::TransientFault`]
    /// after consuming its full duration — a crashed kernel whose
    /// re-execution (a later launch index) succeeds.
    Transient {
        /// The device the faulty launch runs on.
        device: usize,
        /// The per-device launch index that faults.
        launch: u64,
    },
    /// Device `device` runs at `factor` of its normal throughput for
    /// cycles in `[from, until)`. `factor` must be in `(0, 1]`.
    Slowdown {
        /// The slowed device.
        device: usize,
        /// First slowed cycle.
        from: f64,
        /// First cycle back at full speed.
        until: f64,
        /// Throughput multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Link `link` carries `factor` of its normal bandwidth for cycles
    /// in `[from, until)`. `factor` must be in `(0, 1]`; a heavily
    /// degraded link models a partial partition that heals at `until`.
    LinkDegraded {
        /// Index into [`crate::Topology::links`].
        link: usize,
        /// First degraded cycle.
        from: f64,
        /// First cycle back at full bandwidth.
        until: f64,
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
}

/// A deterministic schedule of injectable faults (see the module docs).
///
/// Build one fluently:
///
/// ```
/// use cypress_sim::FaultPlan;
/// let plan = FaultPlan::new()
///     .with_transient(0, 1)          // second launch on device 0 fails once
///     .with_device_loss(1, 5_000.0); // device 1 dies at cycle 5000
/// assert_eq!(plan.faults().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: attaching it changes nothing, bit for bit.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a permanent device loss (see [`Fault::DeviceLoss`]).
    #[must_use]
    pub fn with_device_loss(mut self, device: usize, at: f64) -> Self {
        self.faults.push(Fault::DeviceLoss {
            device,
            at: at.max(0.0),
        });
        self
    }

    /// Add a one-shot transient kernel fault (see [`Fault::Transient`]).
    #[must_use]
    pub fn with_transient(mut self, device: usize, launch: u64) -> Self {
        self.faults.push(Fault::Transient { device, launch });
        self
    }

    /// Add a device slowdown window (see [`Fault::Slowdown`]). The
    /// factor is clamped into `(0, 1]` and the window normalized so
    /// `from <= until`.
    #[must_use]
    pub fn with_slowdown(mut self, device: usize, from: f64, until: f64, factor: f64) -> Self {
        let (from, until) = if from <= until {
            (from, until)
        } else {
            (until, from)
        };
        self.faults.push(Fault::Slowdown {
            device,
            from: from.max(0.0),
            until: until.max(0.0),
            factor: factor.clamp(f64::MIN_POSITIVE, 1.0),
        });
        self
    }

    /// Add a link degradation window (see [`Fault::LinkDegraded`]).
    /// The factor is clamped into `(0, 1]` and the window normalized.
    #[must_use]
    pub fn with_link_degraded(mut self, link: usize, from: f64, until: f64, factor: f64) -> Self {
        let (from, until) = if from <= until {
            (from, until)
        } else {
            (until, from)
        };
        self.faults.push(Fault::LinkDegraded {
            link,
            from: from.max(0.0),
            until: until.max(0.0),
            factor: factor.clamp(f64::MIN_POSITIVE, 1.0),
        });
        self
    }

    /// A seeded random plan of `count` transient faults spread over
    /// `devices` devices at small launch indices (0..8) — the shape the
    /// property suites sweep. Deterministic: same seed, same plan.
    #[must_use]
    pub fn seeded(seed: u64, devices: usize, count: usize) -> Self {
        let devices = devices.max(1);
        let mut state = seed;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let a = splitmix64(&mut state);
            let b = splitmix64(&mut state);
            plan = plan.with_transient((a % devices as u64) as usize, b % 8);
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when the plan schedules nothing — the engine then behaves
    /// bit-identically to one without a plan.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The cycle `device` permanently fails at, if the plan kills it
    /// (the earliest such cycle when several entries target it).
    #[must_use]
    pub fn device_loss_at(&self, device: usize) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DeviceLoss { device: d, at } if *d == device => Some(*at),
                _ => None,
            })
            .min_by(f64::total_cmp)
    }

    /// `true` when the plan's `launch`-th compute launch on `device`
    /// is scheduled to fault transiently.
    #[must_use]
    pub(crate) fn transient_hits(&self, device: usize, launch: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Transient { device: d, launch: l } if *d == device && *l == launch)
        })
    }

    /// Throughput multiplier for `device` at cycle `now` (1.0 outside
    /// every slowdown window; overlapping windows multiply).
    #[must_use]
    pub fn slowdown_factor(&self, device: usize, now: f64) -> f64 {
        let mut factor = 1.0;
        for f in &self.faults {
            if let Fault::Slowdown {
                device: d,
                from,
                until,
                factor: x,
            } = f
            {
                if *d == device && now >= *from && now < *until {
                    factor *= x;
                }
            }
        }
        factor
    }

    /// Bandwidth multiplier for `link` at cycle `now` (1.0 outside
    /// every degradation window; overlapping windows multiply).
    #[must_use]
    pub fn link_factor(&self, link: usize, now: f64) -> f64 {
        let mut factor = 1.0;
        for f in &self.faults {
            if let Fault::LinkDegraded {
                link: l,
                from,
                until,
                factor: x,
            } = f
            {
                if *l == link && now >= *from && now < *until {
                    factor *= x;
                }
            }
        }
        factor
    }

    /// The next cycle strictly after `now` at which the plan changes the
    /// machine — a device dies, or a slowdown/degradation window opens
    /// or closes. The engine clips its fluid windows at these
    /// boundaries so rate changes integrate exactly.
    #[must_use]
    pub fn next_boundary(&self, now: f64) -> Option<f64> {
        let mut next: Option<f64> = None;
        let mut consider = |t: f64| {
            if t > now && next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        for f in &self.faults {
            match f {
                Fault::DeviceLoss { at, .. } => consider(*at),
                Fault::Slowdown { from, until, .. } | Fault::LinkDegraded { from, until, .. } => {
                    consider(*from);
                    consider(*until);
                }
                Fault::Transient { .. } => {}
            }
        }
        next
    }
}

/// One step of the splitmix64 stream — the deterministic entropy source
/// behind [`FaultPlan::seeded`] (the sim crate carries no `rand`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.device_loss_at(0), None);
        assert_eq!(plan.slowdown_factor(0, 100.0), 1.0);
        assert_eq!(plan.link_factor(0, 100.0), 1.0);
        assert_eq!(plan.next_boundary(0.0), None);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 4, 3);
        let b = FaultPlan::seeded(7, 4, 3);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 3);
        assert_ne!(a, FaultPlan::seeded(8, 4, 3), "different seeds differ");
        for f in a.faults() {
            match f {
                Fault::Transient { device, launch } => {
                    assert!(*device < 4 && *launch < 8);
                }
                other => panic!("seeded plans are transient-only, got {other:?}"),
            }
        }
    }

    #[test]
    fn windows_report_factors_and_boundaries() {
        let plan = FaultPlan::new()
            .with_slowdown(1, 100.0, 200.0, 0.5)
            .with_link_degraded(0, 150.0, 250.0, 0.25)
            .with_device_loss(2, 300.0);
        assert_eq!(plan.slowdown_factor(1, 99.0), 1.0);
        assert_eq!(plan.slowdown_factor(1, 100.0), 0.5);
        assert_eq!(plan.slowdown_factor(1, 200.0), 1.0);
        assert_eq!(
            plan.slowdown_factor(0, 150.0),
            1.0,
            "other devices full speed"
        );
        assert_eq!(plan.link_factor(0, 200.0), 0.25);
        assert_eq!(plan.device_loss_at(2), Some(300.0));
        assert_eq!(plan.next_boundary(0.0), Some(100.0));
        assert_eq!(plan.next_boundary(100.0), Some(150.0));
        assert_eq!(plan.next_boundary(250.0), Some(300.0));
        assert_eq!(plan.next_boundary(300.0), None);
    }

    #[test]
    fn builders_normalize_degenerate_inputs() {
        let plan = FaultPlan::new().with_slowdown(0, 200.0, 100.0, 7.0);
        match &plan.faults()[0] {
            Fault::Slowdown {
                from,
                until,
                factor,
                ..
            } => {
                assert_eq!((*from, *until), (100.0, 200.0), "window normalized");
                assert_eq!(*factor, 1.0, "factor clamped into (0, 1]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transient_hits_match_exact_indices() {
        let plan = FaultPlan::new().with_transient(1, 2);
        assert!(plan.transient_hits(1, 2));
        assert!(!plan.transient_hits(1, 3));
        assert!(!plan.transient_hits(0, 2));
    }
}
