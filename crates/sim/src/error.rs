//! Simulator error types.

use crate::expr::EvalError;
use crate::kernel::KernelError;
use std::fmt;

/// Error raised while launching or executing a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel failed static validation.
    Kernel(KernelError),
    /// An index expression failed to evaluate.
    Eval {
        /// Underlying evaluation failure.
        source: EvalError,
        /// Where it happened (role, program counter).
        context: String,
    },
    /// A resolved slice fell outside its memory object.
    OutOfBounds {
        /// Description of the access.
        what: String,
    },
    /// The number of bound tensors differs from the kernel's parameters.
    ParamCountMismatch {
        /// Parameters declared.
        expected: usize,
        /// Tensors supplied.
        actual: usize,
    },
    /// A bound tensor's element count differs from its parameter declaration.
    ParamShapeMismatch {
        /// Parameter index.
        index: usize,
        /// Elements declared.
        expected: usize,
        /// Elements supplied.
        actual: usize,
    },
    /// Execution stalled: every unfinished executor is blocked and no event
    /// is pending. The strings describe each blocked executor, which is the
    /// compiler developer's primary debugging aid for synchronization bugs.
    Deadlock {
        /// One description per blocked executor.
        blocked: Vec<String>,
    },
    /// The event budget was exhausted (runaway program guard).
    EventLimit,
    /// A simulator invariant was violated (a bug in the simulator itself,
    /// not in the caller's kernel) — surfaced as a typed error instead of
    /// a panic so long-running sweeps degrade gracefully.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Kernel(e) => write!(f, "kernel validation failed: {e}"),
            SimError::Eval { source, context } => {
                write!(f, "index evaluation failed at {context}: {source}")
            }
            SimError::OutOfBounds { what } => write!(f, "out-of-bounds access: {what}"),
            SimError::ParamCountMismatch { expected, actual } => {
                write!(f, "expected {expected} parameter tensors, got {actual}")
            }
            SimError::ParamShapeMismatch {
                index,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "parameter {index}: expected {expected} elements, got {actual}"
                )
            }
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: {} executors blocked [{}]",
                    blocked.len(),
                    blocked.join("; ")
                )
            }
            SimError::EventLimit => write!(f, "event budget exhausted"),
            SimError::Internal { what } => {
                write!(f, "simulator invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = SimError::Deadlock {
            blocked: vec!["cta0/wg0 pc=3 waiting mbar 1".into()],
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::ParamCountMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains('3'));
    }
}
