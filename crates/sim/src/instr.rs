//! The device-program instruction set.
//!
//! This is the target language of the Cypress compiler's code generation
//! (§4.2.6) and the source language of the simulator engine. It models the
//! Hopper primitives the paper's generated CUDA relies on: TMA bulk copies
//! completing on mbarriers, asynchronous `wgmma` with group waits,
//! `cp.async` fallback loads, named barriers, `__syncthreads`, and bulk
//! SIMT math executed by whole warpgroups.

use crate::expr::{Cond, Expr};
use crate::mem::Slice;

/// One device instruction, executed by a role's instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Asynchronous TMA copy global→shared. On completion the TMA unit
    /// arrives mbarrier `bar` once.
    TmaLoad {
        /// Global source.
        src: Slice,
        /// Shared destination.
        dst: Slice,
        /// mbarrier index arrived on completion.
        bar: usize,
    },
    /// Asynchronous TMA copy shared→global. Tracked by [`Instr::TmaStoreWait`].
    TmaStore {
        /// Shared source.
        src: Slice,
        /// Global destination.
        dst: Slice,
    },
    /// Block until all TMA stores issued by this role have completed.
    TmaStoreWait,
    /// Ampere-style asynchronous copy global→shared issued by SIMT threads
    /// (`cp.async`). Slower than TMA and occupies the issuing role longer;
    /// this is the default data path of the Triton baseline (§5.2). Arrives
    /// mbarrier `bar` on completion.
    CpAsyncLoad {
        /// Global source.
        src: Slice,
        /// Shared destination.
        dst: Slice,
        /// mbarrier index arrived on completion.
        bar: usize,
    },
    /// Arrive mbarrier `bar` once.
    MbarArrive {
        /// mbarrier index.
        bar: usize,
    },
    /// Wait for the next phase of mbarrier `bar` to complete. Each waiter
    /// tracks its own phase token, matching Hopper's phased mbarriers.
    MbarWait {
        /// mbarrier index.
        bar: usize,
    },
    /// Asynchronous Tensor Core matrix-multiply-accumulate:
    /// `acc (+)= a @ b` (or `a @ bᵀ`). Completion is observed with
    /// [`Instr::WgmmaWait`].
    Wgmma {
        /// Left operand (shared or register).
        a: Slice,
        /// Right operand (shared).
        b: Slice,
        /// Accumulator fragment (register).
        acc: Slice,
        /// `false` overwrites the accumulator, `true` accumulates.
        accumulate: bool,
        /// Multiply by `bᵀ` instead of `b` (used by attention's `Q Kᵀ`).
        transpose_b: bool,
    },
    /// Block until at most `pending` WGMMA operations issued by this role
    /// remain outstanding (`wgmma.wait_group.sync.aligned N`).
    WgmmaWait {
        /// Maximum outstanding operations after the wait.
        pending: usize,
    },
    /// Bulk SIMT operation executed synchronously by the role.
    Simt(SimtOp),
    /// Named-barrier arrive-and-wait across `parties` roles of the CTA
    /// (`bar.sync id, count` in PTX).
    NamedBarrier {
        /// Barrier name.
        id: usize,
        /// Number of participating roles.
        parties: usize,
    },
    /// CTA-wide barrier across every role (`__syncthreads`).
    Syncthreads,
    /// Counted loop binding variable `var` to `0..count`.
    Loop {
        /// Loop-variable id, unique within the kernel.
        var: usize,
        /// Trip count; must be launch-constant (no loop variables).
        count: Expr,
        /// Loop body.
        body: Vec<Instr>,
    },
    /// Two-way branch on a launch/loop-constant condition.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when `cond` holds.
        then_: Vec<Instr>,
        /// Taken otherwise.
        else_: Vec<Instr>,
    },
}

/// Bulk SIMT math on slices, executed by a whole warpgroup.
///
/// Operations are expressed at fragment granularity (the functional
/// simulator computes on whole warpgroup fragments; see DESIGN.md). Row
/// vectors for broadcast/reduce operands have extent `rows × 1`.
#[derive(Debug, Clone, PartialEq)]
pub enum SimtOp {
    /// `dst[i,j] = value`.
    Fill {
        /// Destination.
        dst: Slice,
        /// Fill value.
        value: f32,
    },
    /// `dst = src`, element-wise between any two spaces.
    Copy {
        /// Source.
        src: Slice,
        /// Destination.
        dst: Slice,
    },
    /// `dst[i,j] = op(src[i,j])`.
    Map {
        /// Point-wise operator.
        op: UnOp,
        /// Source.
        src: Slice,
        /// Destination.
        dst: Slice,
    },
    /// `dst[i,j] = op(a[i,j], b[i,j])`.
    Zip {
        /// Point-wise operator.
        op: BinOp,
        /// Left operand.
        a: Slice,
        /// Right operand.
        b: Slice,
        /// Destination.
        dst: Slice,
    },
    /// `dst[i,0] = reduce(op, src[i,:])`, optionally folding the previous
    /// `dst` into the reduction (running row statistics in attention).
    RowReduce {
        /// Reduction operator.
        op: RedOp,
        /// Source matrix.
        src: Slice,
        /// Destination column vector (`rows × 1`).
        dst: Slice,
        /// Include the old `dst` as an additional reduction input.
        include_dst: bool,
    },
    /// `dst[i,j] = op(src[i,j], row[i,0])` — broadcast a column vector
    /// across the rows of a matrix.
    RowZip {
        /// Point-wise operator.
        op: BinOp,
        /// Source matrix.
        src: Slice,
        /// Broadcast column vector (`rows × 1`).
        row: Slice,
        /// Destination.
        dst: Slice,
    },
}

impl SimtOp {
    /// Destination slice of the operation.
    #[must_use]
    pub fn dst(&self) -> &Slice {
        match self {
            SimtOp::Fill { dst, .. }
            | SimtOp::Copy { dst, .. }
            | SimtOp::Map { dst, .. }
            | SimtOp::Zip { dst, .. }
            | SimtOp::RowReduce { dst, .. }
            | SimtOp::RowZip { dst, .. } => dst,
        }
    }

    /// All slices the operation reads.
    #[must_use]
    pub fn sources(&self) -> Vec<&Slice> {
        match self {
            SimtOp::Fill { .. } => vec![],
            SimtOp::Copy { src, .. } | SimtOp::Map { src, .. } => vec![src],
            SimtOp::Zip { a, b, .. } => vec![a, b],
            SimtOp::RowReduce { src, .. } => vec![src],
            SimtOp::RowZip { src, row, .. } => vec![src, row],
        }
    }

    /// `true` if the operation uses the special-function units (exp).
    #[must_use]
    pub fn uses_sfu(&self) -> bool {
        matches!(
            self,
            SimtOp::Map {
                op: UnOp::Exp | UnOp::Recip,
                ..
            }
        )
    }
}

/// Point-wise unary operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnOp {
    /// `exp(x)` (SFU).
    Exp,
    /// `1/x` (SFU).
    Recip,
    /// `x * c`.
    Scale(f32),
    /// `-x`.
    Neg,
}

impl UnOp {
    /// Apply to one element.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnOp::Exp => x.exp(),
            UnOp::Recip => 1.0 / x,
            UnOp::Scale(c) => x * c,
            UnOp::Neg => -x,
        }
    }
}

/// Point-wise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Sum.
    Add,
    /// Difference.
    Sub,
    /// Product.
    Mul,
    /// Quotient.
    Div,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Apply to one pair of elements.
    #[must_use]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Max => a.max(b),
        }
    }
}

/// Row-reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    /// Sum of the row.
    Sum,
    /// Maximum of the row.
    Max,
}

impl RedOp {
    /// Identity element of the reduction.
    #[must_use]
    pub fn identity(self) -> f32 {
        match self {
            RedOp::Sum => 0.0,
            RedOp::Max => f32::NEG_INFINITY,
        }
    }

    /// Combine two partial results.
    #[must_use]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            RedOp::Sum => a + b,
            RedOp::Max => a.max(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Mul.apply(3.0, 2.0), 6.0);
        assert_eq!(UnOp::Scale(2.0).apply(4.0), 8.0);
        assert_eq!(UnOp::Neg.apply(4.0), -4.0);
        assert!((UnOp::Exp.apply(0.0) - 1.0).abs() < 1e-6);
        assert_eq!(UnOp::Recip.apply(4.0), 0.25);
        assert_eq!(RedOp::Sum.identity(), 0.0);
        assert_eq!(RedOp::Max.identity(), f32::NEG_INFINITY);
        assert_eq!(RedOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(RedOp::Sum.apply(1.0, 2.0), 3.0);
    }

    #[test]
    fn simt_op_slices() {
        let op = SimtOp::Zip {
            op: BinOp::Add,
            a: Slice::frag(0).extent(4, 4),
            b: Slice::frag(1).extent(4, 4),
            dst: Slice::frag(2).extent(4, 4),
        };
        assert_eq!(op.sources().len(), 2);
        assert_eq!(op.dst().num_elements(), 16);
        assert!(!op.uses_sfu());
        let e = SimtOp::Map {
            op: UnOp::Exp,
            src: Slice::frag(0).extent(1, 1),
            dst: Slice::frag(0).extent(1, 1),
        };
        assert!(e.uses_sfu());
    }
}
