//! Timing reports produced by simulation runs.

use cypress_tensor::DType;
use std::fmt;

/// Bytes moved by the functional data path, broken down by element type.
///
/// Counted at the *apply* level: every functional copy, WGMMA, and SIMT
/// operation adds the bytes of each slice it reads or writes to the
/// bucket of that slice's element type (fragments are unrounded `f32`).
/// Timing runs move no data, so their counters stay zero — the
/// discrete-event schedule and every cycle count are untouched by this
/// accounting. The counters are a deterministic function of the kernel
/// and grid, so they are bit-identical across runs and host parallelism
/// levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyBytes {
    /// Bytes of `f16` slices touched by functional applies.
    pub f16: u64,
    /// Bytes of `bf16` slices touched by functional applies.
    pub bf16: u64,
    /// Bytes of `f32` slices (including fragments) touched by
    /// functional applies.
    pub f32: u64,
}

impl ApplyBytes {
    /// Add `bytes` to the bucket of `dtype`.
    pub fn add(&mut self, dtype: DType, bytes: u64) {
        match dtype {
            DType::F16 => self.f16 += bytes,
            DType::BF16 => self.bf16 += bytes,
            DType::F32 => self.f32 += bytes,
        }
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: ApplyBytes) {
        self.f16 += other.f16;
        self.bf16 += other.bf16;
        self.f32 += other.f32;
    }

    /// Total bytes across every element type.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.f16 + self.bf16 + self.f32
    }
}

impl fmt::Display for ApplyBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f16 {} B | bf16 {} B | f32 {} B | total {} B",
            self.f16,
            self.bf16,
            self.f32,
            self.total()
        )
    }
}

/// Result of a timing (or functional) simulation of one kernel launch.
///
/// Utilization figures refer to the simulated (busiest) SM; the benchmark
/// harness uses [`TimingReport::seconds`] and computes figure-specific
/// TFLOP/s from the workload's algorithmic FLOP count.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Kernel name.
    pub kernel: String,
    /// Makespan in cycles, including launch overheads.
    pub cycles: f64,
    /// Makespan in seconds at the machine clock.
    pub seconds: f64,
    /// Tensor Core FLOPs executed across the whole launch.
    pub tc_flops: f64,
    /// SIMT FLOPs executed across the whole launch.
    pub simt_flops: f64,
    /// `(tc_flops + simt_flops) / seconds / 1e12`.
    pub achieved_tflops: f64,
    /// Tensor Core busy fraction on the simulated SM.
    pub tc_utilization: f64,
    /// TMA unit busy fraction on the simulated SM.
    pub tma_utilization: f64,
    /// SIMT ALU busy fraction on the simulated SM.
    pub simt_utilization: f64,
    /// Logical CTAs launched.
    pub ctas: usize,
    /// CTAs actually simulated (the busiest SM's share).
    pub simulated_ctas: usize,
    /// SMs with at least one CTA.
    pub active_sms: usize,
    /// Resident CTAs per SM (occupancy).
    pub ctas_per_sm: usize,
    /// Global bytes loaded across the launch.
    pub load_bytes: f64,
    /// Global bytes stored across the launch.
    pub store_bytes: f64,
    /// Estimated L2 hit fraction applied to loads.
    pub l2_hit: f64,
    /// Discrete events processed.
    pub events: u64,
}

impl TimingReport {
    /// TFLOP/s for an externally supplied algorithmic FLOP count (the
    /// number a paper figure reports, e.g. `2·M·N·K` for GEMM).
    #[must_use]
    pub fn tflops_for(&self, algorithmic_flops: f64) -> f64 {
        algorithmic_flops / self.seconds / 1e12
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {:<24} {:>12.0} cycles  {:>9.3} us",
            self.kernel,
            self.cycles,
            self.seconds * 1e6
        )?;
        writeln!(
            f,
            "  {:.1} TFLOP/s | util tc {:.2} tma {:.2} simt {:.2} | l2 hit {:.2}",
            self.achieved_tflops,
            self.tc_utilization,
            self.tma_utilization,
            self.simt_utilization,
            self.l2_hit
        )?;
        write!(
            f,
            "  ctas {} (sim {}) on {} sms x{} | {:.1} MB loaded, {:.1} MB stored | {} events",
            self.ctas,
            self.simulated_ctas,
            self.active_sms,
            self.ctas_per_sm,
            self.load_bytes / 1e6,
            self.store_bytes / 1e6,
            self.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimingReport {
        TimingReport {
            kernel: "gemm".into(),
            cycles: 1000.0,
            seconds: 1e-6,
            tc_flops: 2e9,
            simt_flops: 0.0,
            achieved_tflops: 2000.0,
            tc_utilization: 0.9,
            tma_utilization: 0.5,
            simt_utilization: 0.1,
            ctas: 64,
            simulated_ctas: 4,
            active_sms: 16,
            ctas_per_sm: 1,
            load_bytes: 1e6,
            store_bytes: 1e5,
            l2_hit: 0.9,
            events: 1234,
        }
    }

    #[test]
    fn tflops_for_uses_seconds() {
        let r = sample();
        assert!((r.tflops_for(1e12) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn display_mentions_kernel() {
        assert!(sample().to_string().contains("gemm"));
    }
}
