//! Timing reports produced by simulation runs.

use std::fmt;

/// Result of a timing (or functional) simulation of one kernel launch.
///
/// Utilization figures refer to the simulated (busiest) SM; the benchmark
/// harness uses [`TimingReport::seconds`] and computes figure-specific
/// TFLOP/s from the workload's algorithmic FLOP count.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Kernel name.
    pub kernel: String,
    /// Makespan in cycles, including launch overheads.
    pub cycles: f64,
    /// Makespan in seconds at the machine clock.
    pub seconds: f64,
    /// Tensor Core FLOPs executed across the whole launch.
    pub tc_flops: f64,
    /// SIMT FLOPs executed across the whole launch.
    pub simt_flops: f64,
    /// `(tc_flops + simt_flops) / seconds / 1e12`.
    pub achieved_tflops: f64,
    /// Tensor Core busy fraction on the simulated SM.
    pub tc_utilization: f64,
    /// TMA unit busy fraction on the simulated SM.
    pub tma_utilization: f64,
    /// SIMT ALU busy fraction on the simulated SM.
    pub simt_utilization: f64,
    /// Logical CTAs launched.
    pub ctas: usize,
    /// CTAs actually simulated (the busiest SM's share).
    pub simulated_ctas: usize,
    /// SMs with at least one CTA.
    pub active_sms: usize,
    /// Resident CTAs per SM (occupancy).
    pub ctas_per_sm: usize,
    /// Global bytes loaded across the launch.
    pub load_bytes: f64,
    /// Global bytes stored across the launch.
    pub store_bytes: f64,
    /// Estimated L2 hit fraction applied to loads.
    pub l2_hit: f64,
    /// Discrete events processed.
    pub events: u64,
}

impl TimingReport {
    /// TFLOP/s for an externally supplied algorithmic FLOP count (the
    /// number a paper figure reports, e.g. `2·M·N·K` for GEMM).
    #[must_use]
    pub fn tflops_for(&self, algorithmic_flops: f64) -> f64 {
        algorithmic_flops / self.seconds / 1e12
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {:<24} {:>12.0} cycles  {:>9.3} us",
            self.kernel,
            self.cycles,
            self.seconds * 1e6
        )?;
        writeln!(
            f,
            "  {:.1} TFLOP/s | util tc {:.2} tma {:.2} simt {:.2} | l2 hit {:.2}",
            self.achieved_tflops,
            self.tc_utilization,
            self.tma_utilization,
            self.simt_utilization,
            self.l2_hit
        )?;
        write!(
            f,
            "  ctas {} (sim {}) on {} sms x{} | {:.1} MB loaded, {:.1} MB stored | {} events",
            self.ctas,
            self.simulated_ctas,
            self.active_sms,
            self.ctas_per_sm,
            self.load_bytes / 1e6,
            self.store_bytes / 1e6,
            self.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimingReport {
        TimingReport {
            kernel: "gemm".into(),
            cycles: 1000.0,
            seconds: 1e-6,
            tc_flops: 2e9,
            simt_flops: 0.0,
            achieved_tflops: 2000.0,
            tc_utilization: 0.9,
            tma_utilization: 0.5,
            simt_utilization: 0.1,
            ctas: 64,
            simulated_ctas: 4,
            active_sms: 16,
            ctas_per_sm: 1,
            load_bytes: 1e6,
            store_bytes: 1e5,
            l2_hit: 0.9,
            events: 1234,
        }
    }

    #[test]
    fn tflops_for_uses_seconds() {
        let r = sample();
        assert!((r.tflops_for(1e12) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn display_mentions_kernel() {
        assert!(sample().to_string().contains("gemm"));
    }
}
