//! Discrete-event execution engine.
//!
//! The engine executes a [`Kernel`] in one of two modes:
//!
//! - **Functional**: every CTA of the grid runs and data really moves, so
//!   results can be checked against host oracles. Used by tests and
//!   examples at small problem sizes.
//! - **Timing**: only the busiest SM's share of CTAs is simulated and data
//!   is not touched; the discrete-event schedule (TMA queues, Tensor Core
//!   occupancy, mbarrier phases, bandwidth contention) produces the launch
//!   makespan. Used by the benchmark harness at paper-scale sizes.
//!
//! Hardware units are modelled as *fluid FIFO queues*: a reservation of
//! `amount` work on a queue with rate `r` completes no earlier than the
//! queue's virtual time plus `amount / r`. The completion time of an
//! operation touching several queues is the maximum over its reservations,
//! so whichever resource is the bottleneck determines progress — exactly
//! the property that distinguishes a well-pipelined kernel from one with
//! exposed latency.

use crate::apply::{self, FuncData, RSlice, Scratch};
use crate::bytecode::{self, BcCond, BcInstr, BcOp, BcSlice, Program, SVal, SimtCost};
use crate::error::SimError;
use crate::expr::{Cond, Env, EvalError, Expr};
use crate::flatten::{flatten, Flat};
use crate::instr::{Instr, SimtOp};
use crate::kernel::{Kernel, RoleKind};
use crate::machine::MachineConfig;
use crate::mem::{MemRef, Slice, Space};
use crate::report::{ApplyBytes, TimingReport};
use cypress_tensor::{DType, Tensor};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const EVENT_LIMIT: u64 = 400_000_000;
/// Synthetic named-barrier id used for `__syncthreads`.
const SYNCTHREADS_ID: usize = usize::MAX;

/// A fluid FIFO resource.
#[derive(Debug, Clone)]
struct Fluid {
    rate: f64,
    virt: f64,
    busy: f64,
}

impl Fluid {
    fn new(rate: f64) -> Self {
        Fluid {
            rate,
            virt: 0.0,
            busy: 0.0,
        }
    }

    /// Reserve `amount` units starting no earlier than `now`; returns the
    /// completion time.
    fn reserve(&mut self, now: f64, amount: f64) -> f64 {
        let service = amount / self.rate;
        let start = self.virt.max(now);
        self.virt = start + service;
        self.busy += service;
        self.virt
    }
}

#[derive(Debug, Clone)]
struct LoopCtx {
    var: usize,
    iter: i64,
    trips: i64,
    body: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    Mbar(usize),
    Wgmma(usize),
    Stores,
    Named(usize),
}

/// Deferred effect applied when an executor's in-flight instruction retires.
enum Work<'k> {
    /// Just advance the program counter.
    Advance,
    /// Consume one phase token of an mbarrier, then advance.
    ConsumeMbar(usize),
    /// Apply a resolved SIMT operation (functional mode), then advance.
    Simt {
        op: &'k SimtOp,
        srcs: Vec<RSlice>,
        dst: RSlice,
    },
}

struct Exec<'k> {
    cta: usize,
    role: usize,
    pc: usize,
    env: Env,
    loops: Vec<LoopCtx>,
    bar_tokens: Vec<u64>,
    outstanding_wgmma: usize,
    outstanding_stores: usize,
    blocked: Option<Blocked>,
    pending: Option<Work<'k>>,
    done: bool,
}

#[derive(Debug, Default)]
struct MbarState {
    arrived: usize,
    phases: u64,
    waiters: Vec<usize>,
}

#[derive(Debug, Default)]
struct NamedState {
    arrived: usize,
    waiters: Vec<usize>,
}

struct CtaState {
    mbars: Vec<MbarState>,
    named: Vec<(usize, NamedState)>,
    roles_done: usize,
}

#[derive(Debug)]
enum EventKind {
    StartCta(usize),
    Resume(usize),
    TmaDone {
        exec: usize,
        bar: Option<usize>,
        copy: Option<(RSlice, RSlice)>,
        is_store: bool,
    },
    WgmmaDone {
        exec: usize,
        mma: Option<(RSlice, RSlice, RSlice, bool, bool)>,
    },
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All CTAs, real data.
    Functional,
    /// Busiest SM only, no data.
    Timing,
}

/// Which compiled form of the kernel the engine executes: the borrowed
/// IR walk (flattened at construction) or a pre-lowered bytecode
/// [`Program`]. Both produce bit-identical schedules and data; the
/// bytecode frontend skips per-invocation expression trees and quantity
/// derivations.
enum Frontend<'k> {
    Walk(Vec<Vec<Flat<'k>>>),
    Bytecode(&'k Program),
}

/// One fetched instruction, decoded from either frontend. Payloads are
/// copies or `'k` references, so fetching ends the borrow of the engine
/// before execution mutates it.
enum Step<'k> {
    End,
    Jump(usize),
    BranchWalk(&'k Cond, usize),
    BranchBc(&'k BcCond, usize),
    LoopStartWalk {
        var: usize,
        count: &'k Expr,
        end: usize,
    },
    LoopStartBc {
        var: usize,
        count: &'k SVal,
        end: usize,
    },
    LoopEnd,
    OpWalk(&'k Instr),
    OpBc(&'k BcOp),
}

pub(crate) struct Engine<'k> {
    kernel: &'k Kernel,
    machine: &'k MachineConfig,
    frontend: Frontend<'k>,
    /// Scratch registers of the bytecode index machine (empty under the
    /// walk frontend). Preludes run to completion inside one resolve, so
    /// a single buffer serves every executor.
    idx_regs: Vec<i64>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: f64,
    event_count: u64,
    // Per-SM units.
    tma_unit: Fluid,
    cp_unit: Fluid,
    tc_unit: Fluid,
    simt_unit: Fluid,
    sfu_unit: Fluid,
    smem_unit: Fluid,
    // Device-wide shares.
    l2: Fluid,
    hbm: Fluid,
    l2_hit: f64,
    ctas: Vec<CtaState>,
    execs: Vec<Exec<'k>>,
    next_cta: usize,
    n_sim: usize,
    window: usize,
    running: usize,
    finished: usize,
    active_sms: usize,
    ctas_per_sm: usize,
    data: Option<FuncData>,
    /// Reusable staging buffers of the fast functional data path.
    scratch: Scratch,
    /// Per-dtype bytes touched by functional applies (always zero in
    /// timing mode, where no data moves).
    apply_bytes: ApplyBytes,
    /// Route functional applies through the retained scalar reference
    /// interpreter (see [`apply::scalar`]) instead of the fast
    /// resolved-view path — the bitwise oracle of tests and benchmarks.
    #[cfg(any(test, feature = "scalar-oracle"))]
    scalar: bool,
}

impl<'k> Engine<'k> {
    pub(crate) fn new(
        kernel: &'k Kernel,
        machine: &'k MachineConfig,
        mode: Mode,
        params: Option<Vec<Tensor>>,
        lowered: Option<&'k Program>,
    ) -> Result<Self, SimError> {
        kernel.validate(machine)?;
        if let Some(program) = lowered {
            if program.shape_hash != bytecode::kernel_shape_hash(kernel) {
                return Err(SimError::Internal {
                    what: format!(
                        "bytecode program was lowered from a different kernel than `{}`",
                        kernel.name
                    ),
                });
            }
        }
        if let Some(p) = &params {
            if p.len() != kernel.params.len() {
                return Err(SimError::ParamCountMismatch {
                    expected: kernel.params.len(),
                    actual: p.len(),
                });
            }
            for (i, (t, d)) in p.iter().zip(kernel.params.iter()).enumerate() {
                let expected = d
                    .rows
                    .checked_mul(d.cols)
                    .ok_or_else(|| SimError::Internal {
                        what: format!("parameter `{}` element count overflows usize", d.name),
                    })?;
                if t.num_elements() != expected {
                    return Err(SimError::ParamShapeMismatch {
                        index: i,
                        expected,
                        actual: t.num_elements(),
                    });
                }
            }
        }

        let num_ctas = kernel.num_ctas();
        let active_sms = num_ctas.min(machine.sms).max(1);
        let ctas_per_sm = occupancy(kernel, machine);
        let (n_sim, window) = match mode {
            Mode::Functional => (num_ctas, num_ctas),
            Mode::Timing => (num_ctas.div_ceil(active_sms), ctas_per_sm),
        };

        // L2 hit estimate from the static footprint (see DESIGN.md §1):
        // loads beyond each parameter's unique bytes are assumed L2 hits.
        let totals = kernel.static_totals();
        let total_loads = totals.load_bytes * num_ctas as f64;
        let unique: f64 = kernel.params.iter().map(|p| p.size_bytes() as f64).sum();
        let l2_hit = if total_loads > 0.0 {
            (1.0 - unique / total_loads).clamp(0.0, 0.995)
        } else {
            0.0
        };

        let share = active_sms as f64;
        let frontend = match lowered {
            Some(p) => Frontend::Bytecode(p),
            None => Frontend::Walk(kernel.roles.iter().map(|r| flatten(&r.body)).collect()),
        };
        let idx_regs = vec![0i64; lowered.map_or(0, |p| p.num_regs)];
        let data = params.map(|params| FuncData {
            params,
            smem: Vec::new(),
            frags: Vec::new(),
        });

        let _ = mode;
        let mut eng = Engine {
            kernel,
            machine,
            frontend,
            idx_regs,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            event_count: 0,
            tma_unit: Fluid::new(machine.tma_bytes_per_cycle_per_sm),
            cp_unit: Fluid::new(machine.cp_async_bytes_per_cycle_per_sm),
            tc_unit: Fluid::new(machine.tc_flops_per_cycle_per_sm),
            simt_unit: Fluid::new(machine.simt_flops_per_cycle_per_sm),
            sfu_unit: Fluid::new(machine.sfu_ops_per_cycle_per_sm),
            smem_unit: Fluid::new(machine.smem_bytes_per_cycle_per_sm),
            l2: Fluid::new(machine.l2_bytes_per_cycle / share),
            hbm: Fluid::new(machine.hbm_bytes_per_cycle / share),
            l2_hit,
            ctas: Vec::new(),
            execs: Vec::new(),
            next_cta: 0,
            n_sim,
            window,
            running: 0,
            finished: 0,
            active_sms,
            ctas_per_sm,
            data,
            scratch: Scratch::default(),
            apply_bytes: ApplyBytes::default(),
            #[cfg(any(test, feature = "scalar-oracle"))]
            scalar: false,
        };
        eng.now = machine.kernel_launch_cycles;
        let first = eng.window.min(eng.n_sim);
        for _ in 0..first {
            eng.launch_next_cta(eng.now);
        }
        Ok(eng)
    }

    fn launch_next_cta(&mut self, at: f64) {
        let idx = self.next_cta;
        self.next_cta += 1;
        self.running += 1;
        let start = at + self.machine.cta_launch_cycles;
        self.push(start, EventKind::StartCta(idx));
    }

    fn block_of(&self, linear: usize) -> [i64; 3] {
        let [gx, gy, _] = self.kernel.grid;
        [
            (linear % gx) as i64,
            ((linear / gx) % gy) as i64,
            (linear / (gx * gy)) as i64,
        ]
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn start_cta(&mut self, linear: usize) -> Result<(), SimError> {
        let block = self.block_of(linear);
        let cta_idx = self.ctas.len();
        self.ctas.push(CtaState {
            mbars: self
                .kernel
                .mbars
                .iter()
                .map(|_| MbarState::default())
                .collect(),
            named: Vec::new(),
            roles_done: 0,
        });
        if self.data.is_some() {
            let smem = self
                .kernel
                .smem
                .iter()
                .map(|d| {
                    let n = d
                        .rows
                        .checked_mul(d.cols)
                        .and_then(|x| x.checked_mul(d.stages))
                        .ok_or_else(|| SimError::Internal {
                            what: format!(
                                "shared region `{}` element count overflows usize",
                                d.name
                            ),
                        })?;
                    Ok(vec![0.0f32; n])
                })
                .collect::<Result<Vec<_>, SimError>>()?;
            let frags =
                self.kernel
                    .roles
                    .iter()
                    .map(|r| match r.kind {
                        RoleKind::Dma => Ok(Vec::new()),
                        RoleKind::Compute(_) => self
                            .kernel
                            .frags
                            .iter()
                            .map(|f| {
                                let n = f.rows.checked_mul(f.cols).ok_or_else(|| {
                                    SimError::Internal {
                                        what: format!(
                                            "fragment `{}` element count overflows usize",
                                            f.name
                                        ),
                                    }
                                })?;
                                Ok(vec![0.0f32; n])
                            })
                            .collect::<Result<Vec<_>, SimError>>(),
                    })
                    .collect::<Result<Vec<_>, SimError>>()?;
            if let Some(data) = &mut self.data {
                data.smem.push(smem);
                data.frags.push(frags);
            }
        }
        for role in 0..self.kernel.roles.len() {
            let exec_id = self.execs.len();
            self.execs.push(Exec {
                cta: cta_idx,
                role,
                pc: 0,
                env: Env::for_block(block),
                loops: Vec::new(),
                bar_tokens: vec![0; self.kernel.mbars.len()],
                outstanding_wgmma: 0,
                outstanding_stores: 0,
                blocked: None,
                pending: None,
                done: false,
            });
            self.push(self.now, EventKind::Resume(exec_id));
        }
        Ok(())
    }

    /// Run to completion and produce the report (plus functional tensors).
    pub(crate) fn run(
        mut self,
    ) -> Result<(TimingReport, Option<Vec<Tensor>>, ApplyBytes), SimError> {
        while let Some(Reverse(ev)) = self.events.pop() {
            self.event_count += 1;
            if self.event_count > EVENT_LIMIT {
                return Err(SimError::EventLimit);
            }
            debug_assert!(ev.time >= self.now - 1e-9);
            self.now = self.now.max(ev.time);
            match ev.kind {
                EventKind::StartCta(linear) => self.start_cta(linear)?,
                EventKind::Resume(exec) => self.resume(exec)?,
                EventKind::TmaDone {
                    exec,
                    bar,
                    copy,
                    is_store,
                } => {
                    if let Some((src, dst)) = copy {
                        self.apply_copy(exec, &src, &dst)?;
                    }
                    if let Some(bar) = bar {
                        let cta = self.execs[exec].cta;
                        self.mbar_arrive(cta, bar);
                    }
                    if is_store {
                        self.execs[exec].outstanding_stores -= 1;
                        if self.execs[exec].blocked == Some(Blocked::Stores)
                            && self.execs[exec].outstanding_stores == 0
                        {
                            self.satisfy(exec, Work::Advance, self.now);
                        }
                    }
                }
                EventKind::WgmmaDone { exec, mma } => {
                    if let Some((a, b, acc, accumulate, transpose_b)) = mma {
                        self.apply_wgmma(exec, &a, &b, &acc, accumulate, transpose_b)?;
                    }
                    self.execs[exec].outstanding_wgmma -= 1;
                    if let Some(Blocked::Wgmma(pending)) = self.execs[exec].blocked {
                        if self.execs[exec].outstanding_wgmma <= pending {
                            self.satisfy(exec, Work::Advance, self.now);
                        }
                    }
                }
            }
        }
        if self.finished < self.n_sim {
            return Err(SimError::Deadlock {
                blocked: self.describe_blocked(),
            });
        }
        let makespan = self.now;
        let totals = self.kernel.static_totals();
        let n = self.kernel.num_ctas() as f64;
        let seconds = self.machine.cycles_to_seconds(makespan);
        let tc_flops = totals.tc_flops * n;
        let simt_flops = totals.simt_flops * n;
        let report = TimingReport {
            kernel: self.kernel.name.clone(),
            cycles: makespan,
            seconds,
            tc_flops,
            simt_flops,
            achieved_tflops: (tc_flops + simt_flops) / seconds / 1e12,
            tc_utilization: (self.tc_unit.busy / makespan).min(1.0),
            tma_utilization: ((self.tma_unit.busy + self.cp_unit.busy) / makespan).min(1.0),
            simt_utilization: (self.simt_unit.busy / makespan).min(1.0),
            ctas: self.kernel.num_ctas(),
            simulated_ctas: self.n_sim,
            active_sms: self.active_sms,
            ctas_per_sm: self.ctas_per_sm,
            load_bytes: totals.load_bytes * n,
            store_bytes: totals.store_bytes * n,
            l2_hit: self.l2_hit,
            events: self.event_count,
        };
        Ok((report, self.data.map(|d| d.params), self.apply_bytes))
    }

    fn describe_blocked(&self) -> Vec<String> {
        self.execs
            .iter()
            .filter(|e| !e.done)
            .map(|e| {
                let role = self.kernel.roles[e.role].kind;
                let why = match e.blocked {
                    Some(Blocked::Mbar(b)) => format!("waiting mbar {b}"),
                    Some(Blocked::Wgmma(p)) => format!("waiting wgmma<= {p}"),
                    Some(Blocked::Stores) => "waiting tma stores".into(),
                    Some(Blocked::Named(id)) => format!("waiting named barrier {id}"),
                    None => "runnable (engine bug)".into(),
                };
                format!("cta{}/{} pc={} {}", e.cta, role, e.pc, why)
            })
            .collect()
    }

    fn satisfy(&mut self, exec: usize, work: Work<'k>, at: f64) {
        self.execs[exec].blocked = None;
        self.execs[exec].pending = Some(work);
        self.push(at, EventKind::Resume(exec));
    }

    fn mbar_arrive(&mut self, cta: usize, bar: usize) {
        let expected = self.kernel.mbars[bar].expected;
        let st = &mut self.ctas[cta].mbars[bar];
        st.arrived += 1;
        if st.arrived >= expected {
            st.arrived = 0;
            st.phases += 1;
            let waiters = std::mem::take(&mut st.waiters);
            let wake = self.now + self.machine.barrier_cycles;
            for w in waiters {
                self.satisfy(w, Work::ConsumeMbar(bar), wake);
            }
        }
    }

    /// Resume an executor: retire any pending work, then step through
    /// control flow and execute until the next timed/blocking point.
    fn resume(&mut self, exec_id: usize) -> Result<(), SimError> {
        if let Some(work) = self.execs[exec_id].pending.take() {
            match work {
                Work::Advance => {}
                Work::ConsumeMbar(bar) => {
                    self.execs[exec_id].bar_tokens[bar] += 1;
                }
                Work::Simt { op, srcs, dst } => {
                    self.apply_simt(exec_id, op, &srcs, &dst)?;
                }
            }
            self.execs[exec_id].pc += 1;
        }
        loop {
            let e = &self.execs[exec_id];
            if e.done {
                return Ok(());
            }
            match self.fetch(e.role, e.pc) {
                Step::End => {
                    self.execs[exec_id].done = true;
                    let cta = self.execs[exec_id].cta;
                    self.ctas[cta].roles_done += 1;
                    if self.ctas[cta].roles_done == self.kernel.roles.len() {
                        self.finished += 1;
                        self.running -= 1;
                        if self.next_cta < self.n_sim && self.running < self.window {
                            self.launch_next_cta(self.now);
                        }
                    }
                    return Ok(());
                }
                Step::Jump(t) => {
                    self.execs[exec_id].pc = t;
                }
                Step::BranchWalk(cond, else_target) => {
                    let taken = cond
                        .eval(&self.execs[exec_id].env)
                        .map_err(|e| self.eval_err(exec_id, e))?;
                    self.take_branch(exec_id, taken, else_target);
                }
                Step::BranchBc(cond, else_target) => {
                    let taken =
                        bytecode::eval_cond(&mut self.idx_regs, &self.execs[exec_id].env, cond)
                            .map_err(|e| self.eval_err(exec_id, e))?;
                    self.take_branch(exec_id, taken, else_target);
                }
                Step::LoopStartWalk { var, count, end } => {
                    let trips = count
                        .eval(&self.execs[exec_id].env)
                        .map_err(|e| self.eval_err(exec_id, e))?;
                    self.enter_loop(exec_id, var, trips, end);
                }
                Step::LoopStartBc { var, count, end } => {
                    let trips =
                        bytecode::eval_sval(&mut self.idx_regs, &self.execs[exec_id].env, count)
                            .map_err(|e| self.eval_err(exec_id, e))?;
                    self.enter_loop(exec_id, var, trips, end);
                }
                Step::LoopEnd => {
                    let e = &mut self.execs[exec_id];
                    let ctx = e.loops.last_mut().ok_or_else(|| SimError::Internal {
                        what: "loop stack underflow at a loop back-edge".into(),
                    })?;
                    ctx.iter += 1;
                    if ctx.iter < ctx.trips {
                        let (var, iter, body) = (ctx.var, ctx.iter, ctx.body);
                        e.env.bind(var, iter);
                        e.pc = body;
                    } else {
                        let var = ctx.var;
                        e.loops.pop();
                        e.env.unbind(var);
                        e.pc += 1;
                    }
                }
                Step::OpWalk(instr) => {
                    if self.execute(exec_id, instr)? {
                        return Ok(());
                    }
                    // Instruction completed inline; pc already advanced.
                }
                Step::OpBc(op) => {
                    if self.execute_bc(exec_id, op)? {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Decode the instruction at `pc` from whichever frontend is active.
    /// The returned [`Step`] borrows only the kernel or program (`'k`),
    /// so execution is free to mutate the engine afterwards.
    ///
    /// The explicit derefs copy the inner `'k` references out of the
    /// `&self`-lifetime borrow; auto-deref would reborrow at the shorter
    /// lifetime and the returned `Step<'k>` would not compile.
    #[allow(clippy::explicit_auto_deref)]
    fn fetch(&self, role: usize, pc: usize) -> Step<'k> {
        match &self.frontend {
            Frontend::Walk(flat) => match &flat[role][pc] {
                Flat::End => Step::End,
                Flat::Jump(t) => Step::Jump(*t),
                Flat::Branch { cond, else_target } => Step::BranchWalk(*cond, *else_target),
                Flat::LoopStart { var, count, end } => Step::LoopStartWalk {
                    var: *var,
                    count: *count,
                    end: *end,
                },
                Flat::LoopEnd { .. } => Step::LoopEnd,
                Flat::Op(instr) => Step::OpWalk(*instr),
            },
            Frontend::Bytecode(p) => {
                let p: &'k Program = *p;
                match &p.roles[role][pc] {
                    BcInstr::End => Step::End,
                    BcInstr::Jump(t) => Step::Jump(*t),
                    BcInstr::Branch { cond, else_target } => Step::BranchBc(cond, *else_target),
                    BcInstr::LoopStart { var, count, end } => Step::LoopStartBc {
                        var: *var,
                        count,
                        end: *end,
                    },
                    BcInstr::LoopEnd => Step::LoopEnd,
                    BcInstr::Op(op) => Step::OpBc(op),
                }
            }
        }
    }

    /// Take or skip a conditional branch.
    fn take_branch(&mut self, exec_id: usize, taken: bool, else_target: usize) {
        let pc = self.execs[exec_id].pc;
        self.execs[exec_id].pc = if taken { pc + 1 } else { else_target };
    }

    /// Enter a counted loop with `trips` iterations (skipped entirely
    /// when non-positive).
    fn enter_loop(&mut self, exec_id: usize, var: usize, trips: i64, end: usize) {
        if trips <= 0 {
            self.execs[exec_id].pc = end;
        } else {
            let body = self.execs[exec_id].pc + 1;
            let e = &mut self.execs[exec_id];
            e.loops.push(LoopCtx {
                var,
                iter: 0,
                trips,
                body,
            });
            e.env.bind(var, 0);
            e.pc = body;
        }
    }

    fn eval_err(&self, exec_id: usize, source: EvalError) -> SimError {
        let e = &self.execs[exec_id];
        SimError::Eval {
            source,
            context: format!(
                "cta{}/{} pc={}",
                e.cta, self.kernel.roles[e.role].kind, e.pc
            ),
        }
    }

    /// Execute one walked instruction. Returns `true` if the executor
    /// yielded (scheduled a resume or blocked); `false` if it completed
    /// inline. Byte counts, flop counts, and SIMT costs are derived from
    /// the resolved slices here; the bytecode frontend precomputes the
    /// identical values at lowering time.
    fn execute(&mut self, exec_id: usize, instr: &'k Instr) -> Result<bool, SimError> {
        match instr {
            Instr::TmaLoad { src, dst, bar } => {
                let rsrc = self.resolve(exec_id, src)?;
                let rdst = self.resolve(exec_id, dst)?;
                let bytes = self.slice_bytes(&rsrc);
                self.issue_tma_load(exec_id, rsrc, rdst, *bar, bytes);
                Ok(true)
            }
            Instr::CpAsyncLoad { src, dst, bar } => {
                let rsrc = self.resolve(exec_id, src)?;
                let rdst = self.resolve(exec_id, dst)?;
                let bytes = self.slice_bytes(&rsrc);
                self.issue_cp_async_load(exec_id, rsrc, rdst, *bar, bytes);
                Ok(true)
            }
            Instr::TmaStore { src, dst } => {
                let rsrc = self.resolve(exec_id, src)?;
                let rdst = self.resolve(exec_id, dst)?;
                let bytes = self.slice_bytes(&rsrc);
                self.issue_tma_store(exec_id, rsrc, rdst, bytes);
                Ok(true)
            }
            Instr::TmaStoreWait => self.step_tma_store_wait(exec_id),
            Instr::MbarArrive { bar } => self.step_mbar_arrive(exec_id, *bar),
            Instr::MbarWait { bar } => self.step_mbar_wait(exec_id, *bar),
            Instr::Wgmma {
                a,
                b,
                acc,
                accumulate,
                transpose_b,
            } => {
                let ra = self.resolve(exec_id, a)?;
                let rb = self.resolve(exec_id, b)?;
                let racc = self.resolve(exec_id, acc)?;
                let flops = 2.0 * (ra.rows * ra.cols) as f64 * racc.cols as f64;
                // Operands stream from shared memory through the Tensor Core.
                let smem_bytes = self.slice_bytes(&rb)
                    + if ra.mem.space() == Space::Shared {
                        self.slice_bytes(&ra)
                    } else {
                        0.0
                    };
                self.issue_wgmma(
                    exec_id,
                    ra,
                    rb,
                    racc,
                    *accumulate,
                    *transpose_b,
                    flops,
                    smem_bytes,
                );
                Ok(true)
            }
            Instr::WgmmaWait { pending } => self.step_wgmma_wait(exec_id, *pending),
            Instr::Simt(op) => {
                let mut srcs = Vec::new();
                for s in op.sources() {
                    srcs.push(self.resolve(exec_id, s)?);
                }
                let dst = self.resolve(exec_id, op.dst())?;
                let cost = self.simt_cost_dyn(op, &srcs, &dst);
                self.issue_simt(exec_id, op, srcs, dst, &cost);
                Ok(true)
            }
            Instr::NamedBarrier { id, parties } => self.named_barrier(exec_id, *id, *parties),
            Instr::Syncthreads => {
                let parties = self.kernel.roles.len();
                self.named_barrier(exec_id, SYNCTHREADS_ID, parties)
            }
            Instr::Loop { .. } | Instr::If { .. } => Err(SimError::Internal {
                what: "control flow reached the execute stage unflattened".into(),
            }),
        }
    }

    /// Execute one bytecode operation. Mirrors [`Engine::execute`] — the
    /// fluid reservations happen in the same order on the same shared
    /// issue helpers — but quantities come pre-computed from the
    /// [`Program`], so only slice origins are evaluated per invocation.
    fn execute_bc(&mut self, exec_id: usize, op: &'k BcOp) -> Result<bool, SimError> {
        match op {
            BcOp::TmaLoad {
                src,
                dst,
                bar,
                bytes,
            } => {
                let rsrc = self.resolve_bc(exec_id, src)?;
                let rdst = self.resolve_bc(exec_id, dst)?;
                self.issue_tma_load(exec_id, rsrc, rdst, *bar, *bytes);
                Ok(true)
            }
            BcOp::CpAsyncLoad {
                src,
                dst,
                bar,
                bytes,
            } => {
                let rsrc = self.resolve_bc(exec_id, src)?;
                let rdst = self.resolve_bc(exec_id, dst)?;
                self.issue_cp_async_load(exec_id, rsrc, rdst, *bar, *bytes);
                Ok(true)
            }
            BcOp::TmaStore { src, dst, bytes } => {
                let rsrc = self.resolve_bc(exec_id, src)?;
                let rdst = self.resolve_bc(exec_id, dst)?;
                self.issue_tma_store(exec_id, rsrc, rdst, *bytes);
                Ok(true)
            }
            BcOp::TmaStoreWait => self.step_tma_store_wait(exec_id),
            BcOp::MbarArrive { bar } => self.step_mbar_arrive(exec_id, *bar),
            BcOp::MbarWait { bar } => self.step_mbar_wait(exec_id, *bar),
            BcOp::Wgmma {
                a,
                b,
                acc,
                accumulate,
                transpose_b,
                flops,
                smem_bytes,
            } => {
                let ra = self.resolve_bc(exec_id, a)?;
                let rb = self.resolve_bc(exec_id, b)?;
                let racc = self.resolve_bc(exec_id, acc)?;
                self.issue_wgmma(
                    exec_id,
                    ra,
                    rb,
                    racc,
                    *accumulate,
                    *transpose_b,
                    *flops,
                    *smem_bytes,
                );
                Ok(true)
            }
            BcOp::WgmmaWait { pending } => self.step_wgmma_wait(exec_id, *pending),
            BcOp::Simt {
                op,
                srcs,
                dst,
                cost,
            } => {
                let mut rsrcs = Vec::with_capacity(srcs.len());
                for s in srcs {
                    rsrcs.push(self.resolve_bc(exec_id, s)?);
                }
                let rdst = self.resolve_bc(exec_id, dst)?;
                self.issue_simt(exec_id, op, rsrcs, rdst, cost);
                Ok(true)
            }
            BcOp::NamedBarrier { id, parties } => self.named_barrier(exec_id, *id, *parties),
            BcOp::Syncthreads => {
                let parties = self.kernel.roles.len();
                self.named_barrier(exec_id, SYNCTHREADS_ID, parties)
            }
        }
    }

    fn named_barrier(
        &mut self,
        exec_id: usize,
        id: usize,
        parties: usize,
    ) -> Result<bool, SimError> {
        let cta = self.execs[exec_id].cta;
        let pos = self.ctas[cta].named.iter().position(|(nid, _)| *nid == id);
        let pos = match pos {
            Some(p) => p,
            None => {
                self.ctas[cta].named.push((id, NamedState::default()));
                self.ctas[cta].named.len() - 1
            }
        };
        let st = &mut self.ctas[cta].named[pos].1;
        st.arrived += 1;
        if st.arrived >= parties {
            st.arrived = 0;
            let waiters = std::mem::take(&mut st.waiters);
            let wake = self.now + self.machine.barrier_cycles;
            for w in waiters {
                self.satisfy(w, Work::Advance, wake);
            }
            self.yield_for(exec_id, self.machine.barrier_cycles);
        } else {
            st.waiters.push(exec_id);
            self.execs[exec_id].blocked = Some(Blocked::Named(id));
        }
        Ok(true)
    }

    /// Schedule a plain advance after `cycles` of issue cost.
    fn yield_for(&mut self, exec_id: usize, cycles: f64) {
        self.execs[exec_id].pending = Some(Work::Advance);
        self.push(self.now + cycles, EventKind::Resume(exec_id));
    }

    /// `TmaLoad`: reserve TMA/L2/HBM for the transfer, arrive `bar` on
    /// completion, and yield for the issue cost.
    fn issue_tma_load(
        &mut self,
        exec_id: usize,
        rsrc: RSlice,
        rdst: RSlice,
        bar: usize,
        bytes: f64,
    ) {
        let m = self.machine;
        let t0 = self.now + m.tma_latency;
        let a = self.tma_unit.reserve(t0, bytes);
        let b = self.l2.reserve(t0, bytes);
        let c = self.hbm.reserve(t0, bytes * (1.0 - self.l2_hit));
        let done = a.max(b).max(c);
        let copy = self.data.is_some().then_some((rsrc, rdst));
        self.push(
            done,
            EventKind::TmaDone {
                exec: exec_id,
                bar: Some(bar),
                copy,
                is_store: false,
            },
        );
        self.yield_for(exec_id, m.tma_issue_cycles);
    }

    /// `CpAsyncLoad`: like a TMA load, but addresses are generated by
    /// SIMT threads — the issue occupies the issuing role proportionally
    /// to the transfer size.
    fn issue_cp_async_load(
        &mut self,
        exec_id: usize,
        rsrc: RSlice,
        rdst: RSlice,
        bar: usize,
        bytes: f64,
    ) {
        let m = self.machine;
        let issue = m.simt_issue_cycles + bytes / 512.0;
        let t0 = self.now + issue;
        let a = self.cp_unit.reserve(t0, bytes);
        let b = self.l2.reserve(t0, bytes);
        let c = self.hbm.reserve(t0, bytes * (1.0 - self.l2_hit));
        let done = a.max(b).max(c);
        let copy = self.data.is_some().then_some((rsrc, rdst));
        self.push(
            done,
            EventKind::TmaDone {
                exec: exec_id,
                bar: Some(bar),
                copy,
                is_store: false,
            },
        );
        self.yield_for(exec_id, issue);
    }

    /// `TmaStore`: stores write through L2 to HBM at full size.
    fn issue_tma_store(&mut self, exec_id: usize, rsrc: RSlice, rdst: RSlice, bytes: f64) {
        let m = self.machine;
        let t0 = self.now + m.tma_latency;
        let a = self.tma_unit.reserve(t0, bytes);
        let b = self.l2.reserve(t0, bytes);
        let c = self.hbm.reserve(t0, bytes);
        let done = a.max(b).max(c);
        let copy = self.data.is_some().then_some((rsrc, rdst));
        self.execs[exec_id].outstanding_stores += 1;
        self.push(
            done,
            EventKind::TmaDone {
                exec: exec_id,
                bar: None,
                copy,
                is_store: true,
            },
        );
        self.yield_for(exec_id, m.tma_issue_cycles);
    }

    /// `Wgmma`: reserve the Tensor Core for `flops` and the
    /// shared-memory port for the operands that stream from smem.
    #[allow(clippy::too_many_arguments)]
    fn issue_wgmma(
        &mut self,
        exec_id: usize,
        ra: RSlice,
        rb: RSlice,
        racc: RSlice,
        accumulate: bool,
        transpose_b: bool,
        flops: f64,
        smem_bytes: f64,
    ) {
        let m = self.machine;
        let t0 = self.now + m.wgmma_latency;
        let mut done = self.tc_unit.reserve(t0, flops);
        done = done.max(self.smem_unit.reserve(t0, smem_bytes));
        let mma = self
            .data
            .is_some()
            .then_some((ra, rb, racc, accumulate, transpose_b));
        self.execs[exec_id].outstanding_wgmma += 1;
        self.push(done, EventKind::WgmmaDone { exec: exec_id, mma });
        self.yield_for(exec_id, m.wgmma_issue_cycles);
    }

    /// `Simt`: reserve the cost's units now; the data apply is deferred
    /// to the retire event.
    fn issue_simt(
        &mut self,
        exec_id: usize,
        op: &'k SimtOp,
        srcs: Vec<RSlice>,
        dst: RSlice,
        cost: &SimtCost,
    ) {
        let dur = self.simt_reserve(cost);
        let work = if self.data.is_some() {
            Work::Simt { op, srcs, dst }
        } else {
            Work::Advance
        };
        self.execs[exec_id].pending = Some(work);
        self.push(self.now + dur, EventKind::Resume(exec_id));
    }

    /// Derive a SIMT operation's cost factors from its resolved slices
    /// (walk frontend); the bytecode frontend computes the identical
    /// value once at lowering time.
    fn simt_cost_dyn(&self, op: &SimtOp, srcs: &[RSlice], dst: &RSlice) -> SimtCost {
        let elems: f64 = srcs
            .iter()
            .map(|s| (s.rows * s.cols) as f64)
            .fold((dst.rows * dst.cols) as f64, f64::max);
        let mut smem_bytes = 0.0;
        let mut gl_read = 0.0;
        let mut gl_write = 0.0;
        for s in srcs {
            match s.mem.space() {
                Space::Shared => smem_bytes += self.slice_bytes(s),
                Space::Global => gl_read += self.slice_bytes(s),
                Space::Register => {}
            }
        }
        match dst.mem.space() {
            Space::Shared => smem_bytes += self.slice_bytes(dst),
            Space::Global => gl_write += self.slice_bytes(dst),
            Space::Register => {}
        }
        SimtCost {
            elems,
            sfu: op.uses_sfu(),
            smem_bytes,
            gl_read,
            gl_write,
        }
    }

    /// Reserve the units a SIMT operation touches and return its
    /// duration.
    fn simt_reserve(&mut self, cost: &SimtCost) -> f64 {
        let m = self.machine;
        let t0 = self.now + m.simt_issue_cycles;
        let mut done = self.simt_unit.reserve(t0, cost.elems);
        if cost.sfu {
            done = done.max(self.sfu_unit.reserve(t0, cost.elems));
        }
        if cost.smem_bytes > 0.0 {
            done = done.max(self.smem_unit.reserve(t0, cost.smem_bytes));
        }
        if cost.gl_read + cost.gl_write > 0.0 {
            done = done.max(self.l2.reserve(t0, cost.gl_read + cost.gl_write));
            done = done.max(
                self.hbm
                    .reserve(t0, cost.gl_read * (1.0 - self.l2_hit) + cost.gl_write),
            );
        }
        done - self.now
    }

    /// `TmaStoreWait`: completes inline when no stores are outstanding.
    fn step_tma_store_wait(&mut self, exec_id: usize) -> Result<bool, SimError> {
        if self.execs[exec_id].outstanding_stores == 0 {
            self.execs[exec_id].pc += 1;
            Ok(false)
        } else {
            self.execs[exec_id].blocked = Some(Blocked::Stores);
            Ok(true)
        }
    }

    /// `MbarArrive`: signal the barrier, then yield the small issue cost.
    fn step_mbar_arrive(&mut self, exec_id: usize, bar: usize) -> Result<bool, SimError> {
        let cta = self.execs[exec_id].cta;
        self.mbar_arrive(cta, bar);
        self.yield_for(exec_id, 2.0);
        Ok(true)
    }

    /// `MbarWait`: consumes a ready phase inline, else parks the
    /// executor on the barrier's waiter list.
    fn step_mbar_wait(&mut self, exec_id: usize, bar: usize) -> Result<bool, SimError> {
        let cta = self.execs[exec_id].cta;
        if self.ctas[cta].mbars[bar].phases > self.execs[exec_id].bar_tokens[bar] {
            self.execs[exec_id].bar_tokens[bar] += 1;
            self.execs[exec_id].pc += 1;
            Ok(false)
        } else {
            self.ctas[cta].mbars[bar].waiters.push(exec_id);
            self.execs[exec_id].blocked = Some(Blocked::Mbar(bar));
            Ok(true)
        }
    }

    /// `WgmmaWait`: completes inline once outstanding MMAs have drained
    /// to the allowed depth.
    fn step_wgmma_wait(&mut self, exec_id: usize, pending: usize) -> Result<bool, SimError> {
        if self.execs[exec_id].outstanding_wgmma <= pending {
            self.execs[exec_id].pc += 1;
            Ok(false)
        } else {
            self.execs[exec_id].blocked = Some(Blocked::Wgmma(pending));
            Ok(true)
        }
    }

    fn slice_bytes(&self, s: &RSlice) -> f64 {
        let elem = match s.mem {
            MemRef::Param(i) => self.kernel.params[i].dtype.size_bytes(),
            MemRef::Smem(i) => self.kernel.smem[i].dtype.size_bytes(),
            MemRef::Frag(_) => 4,
        };
        (s.rows * s.cols * elem) as f64
    }

    fn resolve(&self, exec_id: usize, s: &Slice) -> Result<RSlice, SimError> {
        let env = &self.execs[exec_id].env;
        let ev = |e: &crate::expr::Expr| e.eval(env).map_err(|er| self.eval_err(exec_id, er));
        let stage = ev(&s.stage)?;
        let row0 = ev(&s.row0)?;
        let col0 = ev(&s.col0)?;
        if stage < 0 || row0 < 0 || col0 < 0 {
            return Err(SimError::OutOfBounds {
                what: format!(
                    "negative slice origin ({stage},{row0},{col0}) of {:?}",
                    s.mem
                ),
            });
        }
        let r = RSlice {
            mem: s.mem,
            stage: stage as usize,
            row0: row0 as usize,
            col0: col0 as usize,
            rows: s.rows,
            cols: s.cols,
        };
        let (prows, pcols, stages) = match s.mem {
            MemRef::Param(i) => {
                let p = &self.kernel.params[i];
                (p.rows, p.cols, 1)
            }
            MemRef::Smem(i) => {
                let d = &self.kernel.smem[i];
                (d.rows, d.cols, d.stages)
            }
            MemRef::Frag(i) => {
                let f = &self.kernel.frags[i];
                (f.rows, f.cols, 1)
            }
        };
        if r.stage >= stages
            || r.row0.checked_add(r.rows).is_none_or(|end| end > prows)
            || r.col0.checked_add(r.cols).is_none_or(|end| end > pcols)
        {
            return Err(SimError::OutOfBounds {
                what: format!(
                    "slice of {:?}: stage {} origin ({},{}) extent ({}x{}) exceeds ({}x{} stages {})",
                    s.mem, r.stage, r.row0, r.col0, r.rows, r.cols, prows, pcols, stages
                ),
            });
        }
        Ok(r)
    }

    /// Resolve a lowered slice: run its index prelude, read the origin
    /// scalars, and bounds-check against the extents baked in at
    /// lowering time. Error messages match [`Engine::resolve`] exactly.
    fn resolve_bc(&mut self, exec_id: usize, s: &BcSlice) -> Result<RSlice, SimError> {
        bytecode::run_pre(&mut self.idx_regs, &self.execs[exec_id].env, &s.pre)
            .map_err(|e| self.eval_err(exec_id, e))?;
        let stage = bytecode::read_scalar(&self.idx_regs, &self.execs[exec_id].env, s.stage)
            .map_err(|e| self.eval_err(exec_id, e))?;
        let row0 = bytecode::read_scalar(&self.idx_regs, &self.execs[exec_id].env, s.row0)
            .map_err(|e| self.eval_err(exec_id, e))?;
        let col0 = bytecode::read_scalar(&self.idx_regs, &self.execs[exec_id].env, s.col0)
            .map_err(|e| self.eval_err(exec_id, e))?;
        if stage < 0 || row0 < 0 || col0 < 0 {
            return Err(SimError::OutOfBounds {
                what: format!(
                    "negative slice origin ({stage},{row0},{col0}) of {:?}",
                    s.mem
                ),
            });
        }
        let r = RSlice {
            mem: s.mem,
            stage: stage as usize,
            row0: row0 as usize,
            col0: col0 as usize,
            rows: s.rows,
            cols: s.cols,
        };
        if r.stage >= s.stages
            || r.row0.checked_add(r.rows).is_none_or(|end| end > s.prows)
            || r.col0.checked_add(r.cols).is_none_or(|end| end > s.pcols)
        {
            return Err(SimError::OutOfBounds {
                what: format!(
                    "slice of {:?}: stage {} origin ({},{}) extent ({}x{}) exceeds ({}x{} stages {})",
                    s.mem, r.stage, r.row0, r.col0, r.rows, r.cols, s.prows, s.pcols, s.stages
                ),
            });
        }
        Ok(r)
    }

    // ---- functional data application -------------------------------------
    //
    // The heavy lifting lives in [`apply`]: each resolved slice becomes a
    // flat-buffer view once per apply and the operation runs as bulk work
    // over contiguous rows. Under `scalar` (tests, `scalar-oracle`
    // feature) the retained per-element reference interpreter runs
    // instead; both produce bitwise-identical tensors.

    /// Element type of a resolved slice's backing storage (fragments are
    /// unrounded `f32`).
    fn slice_dtype(&self, mem: MemRef) -> DType {
        match mem {
            MemRef::Param(i) => self.kernel.params[i].dtype,
            MemRef::Smem(i) => self.kernel.smem[i].dtype,
            MemRef::Frag(_) => DType::F32,
        }
    }

    /// Account the bytes a functional apply touches, per element type.
    /// Called only on the functional path, so timing counters stay zero.
    fn count_apply(&mut self, slices: &[&RSlice]) {
        for s in slices {
            let dtype = self.slice_dtype(s.mem);
            let bytes = (s.rows * s.cols * dtype.size_bytes()) as u64;
            self.apply_bytes.add(dtype, bytes);
        }
    }

    fn apply_copy(&mut self, exec_id: usize, src: &RSlice, dst: &RSlice) -> Result<(), SimError> {
        let (cta, role) = (self.execs[exec_id].cta, self.execs[exec_id].role);
        let kernel = self.kernel;
        if self.data.is_some() {
            self.count_apply(&[src, dst]);
        }
        let Some(data) = self.data.as_mut() else {
            return Ok(());
        };
        #[cfg(any(test, feature = "scalar-oracle"))]
        if self.scalar {
            return apply::scalar::copy(kernel, data, cta, role, src, dst);
        }
        apply::copy(kernel, data, &mut self.scratch, cta, role, src, dst)
    }

    fn apply_wgmma(
        &mut self,
        exec_id: usize,
        a: &RSlice,
        b: &RSlice,
        acc: &RSlice,
        accumulate: bool,
        transpose_b: bool,
    ) -> Result<(), SimError> {
        let (cta, role) = (self.execs[exec_id].cta, self.execs[exec_id].role);
        let kernel = self.kernel;
        if self.data.is_some() {
            self.count_apply(&[a, b, acc]);
        }
        let Some(data) = self.data.as_mut() else {
            return Ok(());
        };
        #[cfg(any(test, feature = "scalar-oracle"))]
        if self.scalar {
            return apply::scalar::wgmma(
                kernel,
                data,
                cta,
                role,
                a,
                b,
                acc,
                accumulate,
                transpose_b,
            );
        }
        apply::wgmma(
            kernel,
            data,
            &mut self.scratch,
            cta,
            role,
            a,
            b,
            acc,
            accumulate,
            transpose_b,
        )
    }

    fn apply_simt(
        &mut self,
        exec_id: usize,
        op: &SimtOp,
        srcs: &[RSlice],
        dst: &RSlice,
    ) -> Result<(), SimError> {
        let (cta, role) = (self.execs[exec_id].cta, self.execs[exec_id].role);
        let kernel = self.kernel;
        if self.data.is_some() {
            let mut slices: Vec<&RSlice> = srcs.iter().collect();
            slices.push(dst);
            self.count_apply(&slices);
        }
        let Some(data) = self.data.as_mut() else {
            return Ok(());
        };
        #[cfg(any(test, feature = "scalar-oracle"))]
        if self.scalar {
            return apply::scalar::simt(kernel, data, cta, role, op, srcs, dst);
        }
        apply::simt(kernel, data, &mut self.scratch, cta, role, op, srcs, dst)
    }

    /// Route all functional applies through the scalar reference
    /// interpreter (the pre-optimization data path).
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub(crate) fn set_scalar(&mut self) {
        self.scalar = true;
    }
}

fn occupancy(kernel: &Kernel, machine: &MachineConfig) -> usize {
    let smem = kernel.smem_bytes();
    let smem_limit = machine
        .smem_per_sm
        .checked_div(smem)
        .unwrap_or(machine.max_ctas_per_sm);
    let threads = kernel.warps_per_cta() * 32;
    let regs = kernel.regs_per_thread() * threads;
    let reg_limit = machine
        .regs_per_sm
        .checked_div(regs)
        .unwrap_or(machine.max_ctas_per_sm);
    let warp_limit = machine.max_warps_per_sm / kernel.warps_per_cta().max(1);
    machine
        .max_ctas_per_sm
        .min(smem_limit)
        .min(reg_limit)
        .min(warp_limit)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_serializes() {
        let mut f = Fluid::new(2.0);
        let t1 = f.reserve(0.0, 4.0); // completes at 2
        let t2 = f.reserve(0.0, 4.0); // queued behind: completes at 4
        assert_eq!(t1, 2.0);
        assert_eq!(t2, 4.0);
        let t3 = f.reserve(10.0, 2.0); // idle gap, starts at 10
        assert_eq!(t3, 11.0);
        assert_eq!(f.busy, 5.0);
    }

    #[test]
    fn event_ordering_by_time_then_seq() {
        let a = Event {
            time: 1.0,
            seq: 2,
            kind: EventKind::Resume(0),
        };
        let b = Event {
            time: 1.0,
            seq: 1,
            kind: EventKind::Resume(1),
        };
        let c = Event {
            time: 0.5,
            seq: 9,
            kind: EventKind::Resume(2),
        };
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(a));
        heap.push(Reverse(b));
        heap.push(Reverse(c));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.seq)).collect();
        assert_eq!(order, vec![9, 1, 2]);
    }
}
