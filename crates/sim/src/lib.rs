//! Discrete-event functional and timing simulator of a Hopper-class GPU.
//!
//! This crate is the hardware substrate of the Cypress reproduction (see
//! DESIGN.md §1): instead of CUDA on an H100, compiled kernels target a
//! [`Kernel`] device-program representation executed by [`Simulator`]. The
//! simulated machine has the units the paper's generated code exercises:
//!
//! - per-SM **TMA** engines performing asynchronous bulk copies that
//!   complete on **mbarriers**,
//! - per-SM **Tensor Cores** executing asynchronous `wgmma` operations
//!   observed with group waits,
//! - SIMT ALUs/SFUs for warpgroup math, `cp.async` fallback loads,
//!   named barriers and `__syncthreads`,
//! - shared L2/HBM bandwidth, occupancy-limited CTA scheduling, and
//!   per-CTA launch overheads (which is where the §5.3 persistent-kernel
//!   effect comes from).
//!
//! Two modes (see [`Simulator::run_functional`] and
//! [`Simulator::run_timing`]): functional runs move real data for
//! correctness checks; timing runs reproduce the schedule at paper-scale
//! problem sizes in milliseconds of host time. On top of solo timing,
//! [`Simulator::run_timing_concurrent`] co-schedules a batch of kernels
//! under the [`concurrent`] contention model (shared SMs, L2, and HBM),
//! which is what the runtime's multi-stream graph scheduler builds on;
//! its solo-timing pass fans out over the [`par`] worker pool (see
//! [`Simulator::set_parallelism`]).
//!
//! Functional data movement runs on a fast resolved-view path (each
//! slice becomes a flat-buffer view once per apply; WGMMA is a blocked
//! microkernel) that is bitwise identical to — and property-tested
//! against — the retained scalar reference interpreter (the
//! `scalar-oracle` feature exposes it as
//! `Simulator::run_functional_scalar`). **Timing mode is unaffected by
//! the data-path rewrite**: no data moves in timing runs, so the
//! discrete-event schedule and every cycle count are exactly what they
//! were under the scalar interpreter.
//!
//! # Example
//!
//! ```
//! use cypress_sim::{KernelBuilder, RoleKind, Instr, Slice, Simulator, MachineConfig};
//! use cypress_tensor::{Tensor, DType};
//!
//! // A kernel whose single warpgroup fills its output with 7.
//! let mut b = KernelBuilder::new("fill7", [1, 1, 1]);
//! let out = b.param("out", 8, 8, DType::F32);
//! let frag = b.frag("f", 8, 8);
//! b.role(RoleKind::Compute(0), vec![
//!     Instr::Simt(cypress_sim::SimtOp::Fill { dst: Slice::frag(frag).extent(8, 8), value: 7.0 }),
//!     Instr::Simt(cypress_sim::SimtOp::Copy {
//!         src: Slice::frag(frag).extent(8, 8),
//!         dst: Slice::param(out).extent(8, 8),
//!     }),
//! ]);
//! let kernel = b.build();
//!
//! let sim = Simulator::new(MachineConfig::test_gpu());
//! let run = sim.run_functional(&kernel, vec![Tensor::zeros(DType::F32, &[8, 8])])?;
//! assert_eq!(run.params[0].get(&[3, 3])?, 7.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub(crate) mod apply;
pub mod builder;
pub mod bytecode;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod expr;
pub mod fault;
pub mod flatten;
pub mod instr;
pub mod kernel;
pub mod machine;
pub mod mem;
pub mod par;
pub mod report;
pub mod topology;

pub use builder::KernelBuilder;
pub use bytecode::Program;
pub use concurrent::{
    Completion, ConcurrentEngine, ConcurrentReport, EngineStep, KernelProfile, KernelSlot,
    LaunchOutcome,
};
pub use error::SimError;
pub use expr::{Cond, Env, Expr};
pub use fault::{Fault, FaultPlan};
pub use instr::{BinOp, Instr, RedOp, SimtOp, UnOp};
pub use kernel::{Kernel, KernelError, MbarDecl, Role, RoleKind, StaticTotals};
pub use machine::{CostConstants, MachineConfig};
pub use mem::{FragDecl, MemRef, ParamDecl, Slice, SmemDecl, Space};
pub use report::{ApplyBytes, TimingReport};
pub use topology::{nvlink_bytes_per_cycle, Link, Topology};

use cypress_tensor::Tensor;
use engine::{Engine, Mode};

/// The simulator: a machine configuration plus launch entry points.
#[derive(Debug, Clone)]
pub struct Simulator {
    machine: MachineConfig,
    /// Host worker threads batch entry points may use (see
    /// [`Simulator::set_parallelism`]). Single-kernel runs are always
    /// single-threaded and deterministic regardless of this setting.
    parallelism: usize,
}

/// Result of a functional run: the (mutated) parameter tensors plus the
/// timing report of the same schedule.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    /// Parameter tensors after execution, in declaration order.
    pub params: Vec<Tensor>,
    /// Timing report for the simulated schedule.
    pub report: TimingReport,
    /// Per-dtype bytes the functional data path moved (see
    /// [`ApplyBytes`]); a deterministic function of the kernel and grid.
    pub apply_bytes: ApplyBytes,
}

impl Simulator {
    /// A simulator for `machine`. Batch entry points default to one host
    /// worker per available core (see [`Simulator::set_parallelism`]).
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        Simulator {
            machine,
            parallelism: par::available(),
        }
    }

    /// The machine being simulated.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The host worker threads batch entry points currently use.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Set how many host worker threads batch entry points (today:
    /// [`Simulator::run_timing_concurrent`]'s solo-timing pass) may use,
    /// clamped to at least 1. `1` reproduces the serial behavior exactly
    /// — results are bit-identical at every setting, only wall time
    /// changes.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
    }

    /// Builder-style [`Simulator::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.set_parallelism(parallelism);
        self
    }

    /// Execute `kernel` functionally: every CTA runs and `params` data is
    /// really moved and computed on. Returns the mutated tensors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on validation failure, parameter mismatch,
    /// out-of-bounds access, deadlock, or event-budget exhaustion.
    pub fn run_functional(
        &self,
        kernel: &Kernel,
        params: Vec<Tensor>,
    ) -> Result<FunctionalRun, SimError> {
        let program = bytecode::lower(kernel)?;
        self.run_functional_lowered(kernel, &program, params)
    }

    /// [`Simulator::run_functional`] with a pre-lowered bytecode
    /// [`Program`] (see [`bytecode::lower`]). The runtime lowers once per
    /// compiled kernel and replays the program on every launch, skipping
    /// the per-invocation IR walk; schedules and tensors are bit-identical
    /// to the walk.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run_functional`]; additionally
    /// rejects a `program` lowered from a different kernel with
    /// [`SimError::Internal`].
    pub fn run_functional_lowered(
        &self,
        kernel: &Kernel,
        program: &bytecode::Program,
        params: Vec<Tensor>,
    ) -> Result<FunctionalRun, SimError> {
        let engine = Engine::new(
            kernel,
            &self.machine,
            Mode::Functional,
            Some(params),
            Some(program),
        )?;
        Self::finish_functional(engine.run()?)
    }

    /// [`Simulator::run_functional`] through the per-invocation IR tree
    /// walk (no bytecode), with the fast resolved-view data path. Kept as
    /// the middle leg of the three-way differential suites and for the
    /// benchmark harness's walk-vs-bytecode rows. Only available with the
    /// `scalar-oracle` feature.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run_functional`].
    #[cfg(feature = "scalar-oracle")]
    pub fn run_functional_walk(
        &self,
        kernel: &Kernel,
        params: Vec<Tensor>,
    ) -> Result<FunctionalRun, SimError> {
        let engine = Engine::new(kernel, &self.machine, Mode::Functional, Some(params), None)?;
        Self::finish_functional(engine.run()?)
    }

    /// [`Simulator::run_functional`] through the retained **scalar**
    /// reference interpreter — the pre-optimization per-element data path
    /// kept as a bitwise oracle. Tests diff the two paths; the benchmark
    /// harness measures the fast path's speedup against this one. Only
    /// available with the `scalar-oracle` feature.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run_functional`].
    #[cfg(feature = "scalar-oracle")]
    pub fn run_functional_scalar(
        &self,
        kernel: &Kernel,
        params: Vec<Tensor>,
    ) -> Result<FunctionalRun, SimError> {
        let mut engine = Engine::new(kernel, &self.machine, Mode::Functional, Some(params), None)?;
        engine.set_scalar();
        Self::finish_functional(engine.run()?)
    }

    fn finish_functional(
        (report, params, apply_bytes): (TimingReport, Option<Vec<Tensor>>, ApplyBytes),
    ) -> Result<FunctionalRun, SimError> {
        let params = params.ok_or_else(|| SimError::Internal {
            what: "a functional run returned no parameter tensors".into(),
        })?;
        Ok(FunctionalRun {
            params,
            report,
            apply_bytes,
        })
    }

    /// Execute `kernel` in timing mode: no data moves; the busiest SM's
    /// share of CTAs is simulated and the full-launch makespan is derived.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on validation failure, deadlock, or
    /// event-budget exhaustion.
    pub fn run_timing(&self, kernel: &Kernel) -> Result<TimingReport, SimError> {
        let program = bytecode::lower(kernel)?;
        self.run_timing_lowered(kernel, &program)
    }

    /// [`Simulator::run_timing`] with a pre-lowered bytecode [`Program`]
    /// (see [`bytecode::lower`]); the discrete-event schedule is
    /// bit-identical to the walk's.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run_timing`]; additionally rejects a
    /// `program` lowered from a different kernel with
    /// [`SimError::Internal`].
    pub fn run_timing_lowered(
        &self,
        kernel: &Kernel,
        program: &bytecode::Program,
    ) -> Result<TimingReport, SimError> {
        let engine = Engine::new(kernel, &self.machine, Mode::Timing, None, Some(program))?;
        let (report, _, _) = engine.run()?;
        Ok(report)
    }

    /// Time `kernels` launched together on the shared device: each kernel
    /// is first timed solo, then all of them are co-scheduled under the
    /// [`concurrent`] contention model (SMs split proportionally when
    /// oversubscribed, L2/HBM bandwidth shared between consumers).
    ///
    /// The resulting makespan always satisfies
    /// `max(solo) <= makespan <= sum(solo)`: a batch of small kernels
    /// overlaps almost fully, while full-device kernels degrade to the
    /// serial sum. A single kernel reproduces [`Simulator::run_timing`]
    /// exactly.
    ///
    /// The solo-timing pass runs on the simulator's host worker pool (see
    /// [`Simulator::set_parallelism`]); each solo simulation is
    /// independent and deterministic, so the report is bit-identical at
    /// every parallelism level.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any kernel fails its solo timing run.
    pub fn run_timing_concurrent(&self, kernels: &[Kernel]) -> Result<ConcurrentReport, SimError> {
        let solos = par::parallel_map(self.parallelism, kernels.iter().collect(), |k| {
            self.run_timing(k)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let mut engine = ConcurrentEngine::new(&self.machine);
        for (id, solo) in solos.iter().enumerate() {
            engine.launch(id, &KernelProfile::from_report(solo, &self.machine));
        }
        let mut slots: Vec<Option<KernelSlot>> = vec![None; solos.len()];
        while let Some(c) = engine.advance() {
            slots[c.id] = Some(KernelSlot {
                start: c.start,
                end: c.end,
                solo: solos[c.id].clone(),
            });
        }
        let makespan = engine.now();
        let kernels = slots
            .into_iter()
            .enumerate()
            .map(|(id, s)| {
                s.ok_or_else(|| SimError::Internal {
                    what: format!("launched kernel {id} never completed its concurrent schedule"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ConcurrentReport {
            kernels,
            makespan,
            seconds: self.machine.cycles_to_seconds(makespan),
        })
    }
}
