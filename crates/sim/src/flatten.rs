//! Flattening of the instruction tree into a linear program.
//!
//! The engine executes a flat program with explicit jump targets instead of
//! recursing into [`Instr::Loop`]/[`Instr::If`] bodies, so an executor's
//! state is just a program counter plus a loop stack.

use crate::expr::{Cond, Expr};
use crate::instr::Instr;

/// One flattened operation.
#[derive(Debug, Clone)]
pub(crate) enum Flat<'k> {
    /// A non-control instruction.
    Op(&'k Instr),
    /// Loop header; body begins at the next index, `end` is the index just
    /// past the matching [`Flat::LoopEnd`].
    LoopStart {
        var: usize,
        count: &'k Expr,
        end: usize,
    },
    /// Loop back-edge; `start` is the matching [`Flat::LoopStart`].
    LoopEnd {
        #[allow(dead_code)]
        var: usize,
        #[allow(dead_code)]
        start: usize,
    },
    /// Conditional branch; the then-block follows, `else_target` is taken
    /// when the condition is false.
    Branch { cond: &'k Cond, else_target: usize },
    /// Unconditional jump.
    Jump(usize),
    /// End of the role's program.
    End,
}

/// Flatten a role body into a linear program terminated by [`Flat::End`].
pub(crate) fn flatten(body: &[Instr]) -> Vec<Flat<'_>> {
    let mut out = Vec::new();
    emit(body, &mut out);
    out.push(Flat::End);
    out
}

fn emit<'k>(block: &'k [Instr], out: &mut Vec<Flat<'k>>) {
    for instr in block {
        match instr {
            Instr::Loop { var, count, body } => {
                let header = out.len();
                out.push(Flat::LoopStart {
                    var: *var,
                    count,
                    end: usize::MAX,
                });
                emit(body, out);
                out.push(Flat::LoopEnd {
                    var: *var,
                    start: header,
                });
                let end = out.len();
                if let Flat::LoopStart { end: e, .. } = &mut out[header] {
                    *e = end;
                }
            }
            Instr::If { cond, then_, else_ } => {
                let branch = out.len();
                out.push(Flat::Branch {
                    cond,
                    else_target: usize::MAX,
                });
                emit(then_, out);
                let jump = out.len();
                out.push(Flat::Jump(usize::MAX));
                let else_start = out.len();
                if let Flat::Branch { else_target, .. } = &mut out[branch] {
                    *else_target = else_start;
                }
                emit(else_, out);
                let end = out.len();
                if let Flat::Jump(t) = &mut out[jump] {
                    *t = end;
                }
            }
            other => out.push(Flat::Op(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr};

    #[test]
    fn flat_loop_targets() {
        let body = vec![Instr::Loop {
            var: 0,
            count: Expr::lit(3),
            body: vec![Instr::Syncthreads],
        }];
        let f = flatten(&body);
        // LoopStart, Op(Syncthreads), LoopEnd, End
        assert_eq!(f.len(), 4);
        match &f[0] {
            Flat::LoopStart { end, .. } => assert_eq!(*end, 3),
            other => panic!("expected LoopStart, got {other:?}"),
        }
        match &f[2] {
            Flat::LoopEnd { start, .. } => assert_eq!(*start, 0),
            other => panic!("expected LoopEnd, got {other:?}"),
        }
        assert!(matches!(f[3], Flat::End));
    }

    #[test]
    fn flat_if_targets() {
        let body = vec![Instr::If {
            cond: Cond::Ge(Expr::var(0), Expr::lit(1)),
            then_: vec![Instr::Syncthreads],
            else_: vec![Instr::Syncthreads, Instr::Syncthreads],
        }];
        let f = flatten(&body);
        // Branch, Op, Jump, Op, Op, End
        assert_eq!(f.len(), 6);
        match &f[0] {
            Flat::Branch { else_target, .. } => assert_eq!(*else_target, 3),
            other => panic!("expected Branch, got {other:?}"),
        }
        match &f[2] {
            Flat::Jump(t) => assert_eq!(*t, 5),
            other => panic!("expected Jump, got {other:?}"),
        }
    }
}
