//! Multi-kernel concurrent timing: co-resident kernels contending for
//! SMs, L2, and HBM bandwidth.
//!
//! A single [`crate::Simulator::run_timing`] call models one kernel with
//! the whole device to itself. Real workloads — batched-tensor pipelines
//! in particular — launch many small independent kernels whose speedup
//! comes entirely from *overlap*: each kernel occupies only part of the
//! machine, so several can make progress at once, throttled by whichever
//! shared resource saturates first.
//!
//! This module models that overlap with a *fluid* multi-resource sharing
//! model layered on top of solo timing runs:
//!
//! 1. Each kernel's solo [`TimingReport`] is distilled into a
//!    [`KernelProfile`]: how long it runs alone, how many SMs it can
//!    occupy, and how many bytes per cycle it pulls through L2 and HBM
//!    while running.
//! 2. [`ConcurrentEngine`] advances a set of co-resident kernels through
//!    completion events. At any instant, each active kernel progresses at
//!    a rate equal to the *minimum* of its fair shares: SMs are split in
//!    proportion to demand when oversubscribed, and L2/HBM bandwidth is
//!    split in proportion to each kernel's solo consumption rate. A
//!    kernel running alone always progresses at rate 1, so a one-kernel
//!    (or one-stream) schedule reproduces the solo numbers exactly.
//!
//! The model guarantees the scheduling invariants the runtime's tests
//! lock down: each kernel's concurrent duration is at least its solo
//! duration (rates never exceed 1), and the aggregate progress rate of
//! the active set is at least one solo-kernel-equivalent per cycle (each
//! of `k` co-resident kernels gets at least a `1/k` share of every
//! resource), so the concurrent makespan never exceeds the serial sum.

use crate::machine::MachineConfig;
use crate::report::TimingReport;
use crate::topology::Topology;

/// Resource demands of one kernel, derived from its solo timing run.
///
/// The profile is what the contention model needs to know about a kernel:
/// its solo makespan (launch overhead included), the SMs it occupies, and
/// the average device-wide bytes per cycle it moves through L2 and HBM
/// while running. Demands are clamped to the machine's capacities so that
/// a kernel running alone is never throttled.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name (for reports).
    pub name: String,
    /// Solo makespan in cycles, launch overheads included.
    pub cycles: f64,
    /// SMs the kernel occupies when it has the device to itself.
    pub sm_demand: f64,
    /// Average HBM bytes per cycle while running solo (post-L2 traffic).
    pub hbm_demand: f64,
    /// Average L2 bytes per cycle while running solo.
    pub l2_demand: f64,
}

impl KernelProfile {
    /// Distill a solo timing report into a contention profile.
    #[must_use]
    pub fn from_report(report: &TimingReport, machine: &MachineConfig) -> Self {
        let cycles = report.cycles.max(1.0);
        let hbm_bytes = report.load_bytes * (1.0 - report.l2_hit) + report.store_bytes;
        let l2_bytes = report.load_bytes + report.store_bytes;
        KernelProfile {
            name: report.kernel.clone(),
            cycles: report.cycles,
            sm_demand: (report.active_sms as f64).max(1.0),
            hbm_demand: (hbm_bytes / cycles).min(machine.hbm_bytes_per_cycle),
            l2_demand: (l2_bytes / cycles).min(machine.l2_bytes_per_cycle),
        }
    }
}

/// A kernel's completed interval on the shared device.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The id the kernel was launched under.
    pub id: usize,
    /// Cycle at which the kernel was launched.
    pub start: f64,
    /// Cycle at which it retired.
    pub end: f64,
}

#[derive(Debug, Clone)]
struct Active {
    id: usize,
    start: f64,
    /// Remaining solo-equivalent cycles of work.
    remaining: f64,
    /// Device the kernel computes on (compute kernels), or the device
    /// that issued the transfer (link kernels — it pays no compute
    /// resources there, the field only documents provenance).
    device: usize,
    /// `Some(link)` for a communication kernel: it draws only on that
    /// link's bandwidth, never on any device's SM/HBM/L2.
    link: Option<usize>,
    /// Bytes per cycle the kernel pulls on its link (communication
    /// kernels only).
    link_demand: f64,
    sm: f64,
    hbm: f64,
    l2: f64,
}

/// Per-device resource capacities.
#[derive(Debug, Clone)]
struct DeviceCaps {
    sms: f64,
    hbm: f64,
    l2: f64,
}

impl DeviceCaps {
    fn of(machine: &MachineConfig) -> Self {
        DeviceCaps {
            sms: machine.sms as f64,
            hbm: machine.hbm_bytes_per_cycle,
            l2: machine.l2_bytes_per_cycle,
        }
    }
}

/// Fluid timing model of kernels sharing one device — or, built with
/// [`ConcurrentEngine::with_topology`], several devices behind shared
/// links. Compute kernels on different devices contend only for their
/// own device's SMs/HBM/L2; communication kernels
/// ([`ConcurrentEngine::launch_transfer`]) draw only on their link's
/// bandwidth, split proportionally when several transfers share it.
///
/// Drive it by [`ConcurrentEngine::launch`]ing kernels (each launch
/// starts at the engine's current time) and calling
/// [`ConcurrentEngine::advance`] to step to the next completion. The
/// runtime's stream scheduler interleaves launches and completions to
/// model dependency-gated streams; [`crate::Simulator::run_timing_concurrent`]
/// launches everything at time zero.
#[derive(Debug)]
pub struct ConcurrentEngine {
    devices: Vec<DeviceCaps>,
    /// Bandwidth capacity per link, bytes per cycle.
    links: Vec<f64>,
    now: f64,
    active: Vec<Active>,
}

impl ConcurrentEngine {
    /// An idle single device at cycle 0.
    #[must_use]
    pub fn new(machine: &MachineConfig) -> Self {
        ConcurrentEngine {
            devices: vec![DeviceCaps::of(machine)],
            links: Vec::new(),
            now: 0.0,
            active: Vec::new(),
        }
    }

    /// An idle multi-device machine at cycle 0. A one-device topology is
    /// bit-identical to [`ConcurrentEngine::new`] on that device.
    #[must_use]
    pub fn with_topology(topology: &Topology) -> Self {
        ConcurrentEngine {
            devices: topology.devices.iter().map(DeviceCaps::of).collect(),
            links: topology.links.iter().map(|l| l.bytes_per_cycle).collect(),
            now: 0.0,
            active: Vec::new(),
        }
    }

    /// Current simulated time in cycles.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of co-resident kernels.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Number of devices the engine models.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Admit a kernel on device 0 at the current time. `id` is echoed
    /// back in its [`Completion`].
    pub fn launch(&mut self, id: usize, profile: &KernelProfile) {
        self.launch_on(id, 0, profile);
    }

    /// Admit a compute kernel on `device` at the current time (out of
    /// range clamps to the last device — callers validate their topology
    /// before launching).
    pub fn launch_on(&mut self, id: usize, device: usize, profile: &KernelProfile) {
        let device = device.min(self.devices.len().saturating_sub(1));
        self.active.push(Active {
            id,
            start: self.now,
            remaining: profile.cycles,
            device,
            link: None,
            link_demand: 0.0,
            sm: profile.sm_demand,
            hbm: profile.hbm_demand,
            l2: profile.l2_demand,
        });
    }

    /// Admit a communication kernel on `link` at the current time:
    /// `cycles` of solo transfer time drawing `demand` bytes per cycle
    /// on the link (and nothing on any device). Out-of-range links clamp
    /// like [`ConcurrentEngine::launch_on`]; an engine with no links
    /// runs the transfer unthrottled (solo time only).
    pub fn launch_transfer(&mut self, id: usize, link: usize, cycles: f64, demand: f64) {
        let link = if self.links.is_empty() {
            None
        } else {
            Some(link.min(self.links.len() - 1))
        };
        self.active.push(Active {
            id,
            start: self.now,
            remaining: cycles,
            device: 0,
            link,
            link_demand: demand,
            sm: 0.0,
            hbm: 0.0,
            l2: 0.0,
        });
    }

    /// Per-kernel progress rates (solo-cycles per wall-cycle) for the
    /// current active set: the minimum of the kernel's proportional
    /// shares of its own device's SMs, HBM, and L2 — or, for a
    /// communication kernel, its proportional share of its link's
    /// bandwidth. Kernels with no demand on a resource are not throttled
    /// by it; kernels on different devices never throttle each other.
    fn rates(&self) -> Vec<f64> {
        let nd = self.devices.len();
        let mut sm_sum = vec![0.0f64; nd];
        let mut hbm_sum = vec![0.0f64; nd];
        let mut l2_sum = vec![0.0f64; nd];
        let mut link_sum = vec![0.0f64; self.links.len()];
        // Accumulate in insertion order, exactly the order the
        // single-device `sum()` used — sums stay bit-identical.
        for a in &self.active {
            match a.link {
                Some(l) => link_sum[l] += a.link_demand,
                None => {
                    sm_sum[a.device] += a.sm;
                    hbm_sum[a.device] += a.hbm;
                    l2_sum[a.device] += a.l2;
                }
            }
        }
        let sm_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| (caps.sms / sm_sum[d]).min(1.0))
            .collect();
        let hbm_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| {
                if hbm_sum[d] > caps.hbm {
                    caps.hbm / hbm_sum[d]
                } else {
                    1.0
                }
            })
            .collect();
        let l2_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| {
                if l2_sum[d] > caps.l2 {
                    caps.l2 / l2_sum[d]
                } else {
                    1.0
                }
            })
            .collect();
        let link_scale: Vec<f64> = self
            .links
            .iter()
            .enumerate()
            .map(|(l, &cap)| {
                if link_sum[l] > cap {
                    cap / link_sum[l]
                } else {
                    1.0
                }
            })
            .collect();
        self.active
            .iter()
            .map(|a| match a.link {
                Some(l) => link_scale[l],
                None => {
                    let d = a.device;
                    let mut r = sm_scale[d];
                    if a.hbm > 0.0 {
                        r = r.min(hbm_scale[d]);
                    }
                    if a.l2 > 0.0 {
                        r = r.min(l2_scale[d]);
                    }
                    r
                }
            })
            .collect()
    }

    /// Advance time to the next kernel completion and retire it. Returns
    /// `None` when no kernel is active. Ties complete lowest-id-first,
    /// one per call, so completion order is deterministic.
    pub fn advance(&mut self) -> Option<Completion> {
        if self.active.is_empty() {
            return None;
        }
        let rates = self.rates();
        let mut win = 0;
        let mut win_dt = self.active[0].remaining / rates[0];
        for (i, (a, r)) in self.active.iter().zip(&rates).enumerate().skip(1) {
            let dt = a.remaining / r;
            if dt < win_dt || (dt == win_dt && a.id < self.active[win].id) {
                win = i;
                win_dt = dt;
            }
        }
        self.now += win_dt;
        for (a, r) in self.active.iter_mut().zip(&rates) {
            a.remaining = (a.remaining - win_dt * r).max(0.0);
        }
        let done = self.active.remove(win);
        Some(Completion {
            id: done.id,
            start: done.start,
            end: self.now,
        })
    }
}

/// Result of [`crate::Simulator::run_timing_concurrent`]: per-kernel
/// intervals on the shared device plus the whole-batch makespan.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// One slot per input kernel, in input order.
    pub kernels: Vec<KernelSlot>,
    /// Batch makespan in cycles: the latest completion.
    pub makespan: f64,
    /// Batch makespan in seconds at the machine clock.
    pub seconds: f64,
}

/// One kernel's interval within a concurrent batch.
#[derive(Debug, Clone)]
pub struct KernelSlot {
    /// Launch cycle (0 for a whole-batch run).
    pub start: f64,
    /// Retire cycle.
    pub end: f64,
    /// The kernel's solo timing report (what it would do alone).
    pub solo: TimingReport,
}

impl ConcurrentReport {
    /// What the batch would cost launched back-to-back: the sum of the
    /// solo makespans.
    #[must_use]
    pub fn serial_sum(&self) -> f64 {
        self.kernels.iter().map(|k| k.solo.cycles).sum()
    }

    /// `serial_sum / makespan` — 1.0 means no overlap, `n` means `n`
    /// kernels ran fully in parallel.
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.serial_sum() / self.makespan
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(id: &str, cycles: f64, sm: f64, hbm: f64) -> KernelProfile {
        KernelProfile {
            name: id.into(),
            cycles,
            sm_demand: sm,
            hbm_demand: hbm,
            l2_demand: 0.0,
        }
    }

    fn machine4() -> MachineConfig {
        MachineConfig::test_gpu() // 4 SMs, 64 B/cycle HBM
    }

    #[test]
    fn lone_kernel_runs_at_full_rate() {
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 2.0, 10.0));
        let c = e.advance().unwrap();
        assert_eq!((c.start, c.end), (0.0, 1000.0));
        assert!(e.advance().is_none());
    }

    #[test]
    fn small_kernels_overlap_fully() {
        // Two 1-SM kernels on a 4-SM machine: no contention at all.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 1.0, 1.0));
        e.launch(1, &profile("b", 600.0, 1.0, 1.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!((first.id, first.end), (1, 600.0));
        assert_eq!((second.id, second.end), (0, 1000.0));
    }

    #[test]
    fn full_device_kernels_serialize() {
        // Two full-device kernels: proportional SM sharing halves both
        // rates, so the pair costs exactly the serial sum.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 4.0, 0.0));
        e.launch(1, &profile("b", 1000.0, 4.0, 0.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!(first.id, 0, "ties retire lowest id first");
        assert!((second.end - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn devices_do_not_contend_with_each_other() {
        // Two full-device kernels serialize on one device but overlap
        // perfectly when placed on different devices of a 2-GPU topology.
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let mut e = ConcurrentEngine::with_topology(&topo);
        assert_eq!(e.device_count(), 2);
        e.launch_on(0, 0, &profile("a", 1000.0, 4.0, 0.0));
        e.launch_on(1, 1, &profile("b", 1000.0, 4.0, 0.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!((first.id, first.end), (0, 1000.0));
        assert_eq!((second.id, second.end), (1, 1000.0));
    }

    #[test]
    fn one_device_topology_matches_single_device_engine() {
        let topo = crate::topology::Topology::single(machine4());
        let mut multi = ConcurrentEngine::with_topology(&topo);
        let mut single = ConcurrentEngine::new(&machine4());
        for e in [&mut multi, &mut single] {
            e.launch(0, &profile("a", 1000.0, 4.0, 64.0));
            e.launch(1, &profile("b", 700.0, 2.0, 32.0));
            e.launch(2, &profile("c", 300.0, 1.0, 8.0));
        }
        loop {
            let (a, b) = (multi.advance(), single.advance());
            assert_eq!(a, b, "bit-identical completions");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn transfers_share_link_bandwidth_proportionally() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let cap = topo.links[0].bytes_per_cycle;
        let mut e = ConcurrentEngine::with_topology(&topo);
        // Two transfers each demanding the full link: both stretch 2x.
        e.launch_transfer(0, 0, 1000.0, cap);
        e.launch_transfer(1, 0, 1000.0, cap);
        // A compute kernel is untouched by the link fight.
        e.launch_on(2, 0, &profile("alu", 1000.0, 1.0, 0.0));
        let first = e.advance().unwrap();
        assert_eq!((first.id, first.end), (2, 1000.0));
        let second = e.advance().unwrap();
        assert_eq!(second.id, 0, "ties retire lowest id first");
        assert!((second.end - 2000.0).abs() < 1e-9, "end {}", second.end);
        let third = e.advance().unwrap();
        assert!((third.end - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_on_distinct_links_do_not_contend() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 4);
        let cap = topo.links[0].bytes_per_cycle;
        let mut e = ConcurrentEngine::with_topology(&topo);
        let l01 = topo.link_between(0, 1).unwrap();
        let l23 = topo.link_between(2, 3).unwrap();
        e.launch_transfer(0, l01, 1000.0, cap);
        e.launch_transfer(1, l23, 1000.0, cap);
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!(first.end, 1000.0);
        assert_eq!(second.end, 1000.0);
    }

    #[test]
    fn bandwidth_contention_throttles_only_consumers() {
        // One HBM-saturating kernel and one compute-only kernel: the
        // compute kernel is not throttled by the bandwidth fight.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("mem", 1000.0, 1.0, 64.0));
        e.launch(1, &profile("mem2", 1000.0, 1.0, 64.0));
        e.launch(2, &profile("alu", 1000.0, 1.0, 0.0));
        let first = e.advance().unwrap();
        assert_eq!(first.id, 2, "compute kernel finishes first");
        assert_eq!(first.end, 1000.0);
        // The two memory kernels split HBM: both stretch to ~2x.
        let second = e.advance().unwrap();
        assert!((second.end - 2000.0).abs() < 1e-6, "end {}", second.end);
    }
}
