//! Multi-kernel concurrent timing: co-resident kernels contending for
//! SMs, L2, and HBM bandwidth.
//!
//! A single [`crate::Simulator::run_timing`] call models one kernel with
//! the whole device to itself. Real workloads — batched-tensor pipelines
//! in particular — launch many small independent kernels whose speedup
//! comes entirely from *overlap*: each kernel occupies only part of the
//! machine, so several can make progress at once, throttled by whichever
//! shared resource saturates first.
//!
//! This module models that overlap with a *fluid* multi-resource sharing
//! model layered on top of solo timing runs:
//!
//! 1. Each kernel's solo [`TimingReport`] is distilled into a
//!    [`KernelProfile`]: how long it runs alone, how many SMs it can
//!    occupy, and how many bytes per cycle it pulls through L2 and HBM
//!    while running.
//! 2. [`ConcurrentEngine`] advances a set of co-resident kernels through
//!    completion events. At any instant, each active kernel progresses at
//!    a rate equal to the *minimum* of its fair shares: SMs are split in
//!    proportion to demand when oversubscribed, and L2/HBM bandwidth is
//!    split in proportion to each kernel's solo consumption rate. A
//!    kernel running alone always progresses at rate 1, so a one-kernel
//!    (or one-stream) schedule reproduces the solo numbers exactly.
//!
//! The model guarantees the scheduling invariants the runtime's tests
//! lock down: each kernel's concurrent duration is at least its solo
//! duration (rates never exceed 1), and the aggregate progress rate of
//! the active set is at least one solo-kernel-equivalent per cycle (each
//! of `k` co-resident kernels gets at least a `1/k` share of every
//! resource), so the concurrent makespan never exceeds the serial sum.

use crate::fault::FaultPlan;
use crate::machine::MachineConfig;
use crate::report::TimingReport;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Resource demands of one kernel, derived from its solo timing run.
///
/// The profile is what the contention model needs to know about a kernel:
/// its solo makespan (launch overhead included), the SMs it occupies, and
/// the average device-wide bytes per cycle it moves through L2 and HBM
/// while running. Demands are clamped to the machine's capacities so that
/// a kernel running alone is never throttled.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name (for reports).
    pub name: String,
    /// Solo makespan in cycles, launch overheads included.
    pub cycles: f64,
    /// SMs the kernel occupies when it has the device to itself.
    pub sm_demand: f64,
    /// Average HBM bytes per cycle while running solo (post-L2 traffic).
    pub hbm_demand: f64,
    /// Average L2 bytes per cycle while running solo.
    pub l2_demand: f64,
}

impl KernelProfile {
    /// Distill a solo timing report into a contention profile.
    #[must_use]
    pub fn from_report(report: &TimingReport, machine: &MachineConfig) -> Self {
        let cycles = report.cycles.max(1.0);
        let hbm_bytes = report.load_bytes * (1.0 - report.l2_hit) + report.store_bytes;
        let l2_bytes = report.load_bytes + report.store_bytes;
        KernelProfile {
            name: report.kernel.clone(),
            cycles: report.cycles,
            sm_demand: (report.active_sms as f64).max(1.0),
            hbm_demand: (hbm_bytes / cycles).min(machine.hbm_bytes_per_cycle),
            l2_demand: (l2_bytes / cycles).min(machine.l2_bytes_per_cycle),
        }
    }
}

/// A kernel's completed interval on the shared device.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The id the kernel was launched under.
    pub id: usize,
    /// Cycle at which the kernel was launched.
    pub start: f64,
    /// Cycle at which it retired.
    pub end: f64,
}

/// How a launch left the engine (see [`ConcurrentEngine::step`]).
/// Without a [`FaultPlan`] every launch completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOutcome {
    /// The launch ran to completion.
    Completed,
    /// The launch was scheduled to fault once
    /// ([`crate::Fault::Transient`]): it consumed its full duration and
    /// then failed. A re-execution is a later launch index and succeeds.
    TransientFault,
    /// The launch's device failed permanently underneath it
    /// ([`crate::Fault::DeviceLoss`]); its interval ends at the loss
    /// cycle.
    DeviceLost,
}

/// One observable event from [`ConcurrentEngine::step`]: either a
/// launch retiring (with its [`LaunchOutcome`]) or a device dying.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineStep {
    /// A launch left the engine.
    Retired {
        /// The launch's interval.
        completion: Completion,
        /// How it ended.
        outcome: LaunchOutcome,
    },
    /// A [`crate::Fault::DeviceLoss`] fired. Emitted once per dead
    /// device, *before* the casualty `Retired` events of the launches
    /// it killed, so a scheduler can re-plan at the exact loss cycle.
    DeviceEvicted {
        /// The device that died.
        device: usize,
        /// The cycle it died at.
        at: f64,
    },
}

#[derive(Debug, Clone)]
struct Active {
    id: usize,
    start: f64,
    /// Remaining solo-equivalent cycles of work.
    remaining: f64,
    /// Device the kernel computes on (compute kernels), or the device
    /// that issued the transfer (link kernels — it pays no compute
    /// resources there, the field only documents provenance).
    device: usize,
    /// `Some(link)` for a communication kernel: it draws only on that
    /// link's bandwidth, never on any device's SM/HBM/L2.
    link: Option<usize>,
    /// Bytes per cycle the kernel pulls on its link (communication
    /// kernels only).
    link_demand: f64,
    sm: f64,
    hbm: f64,
    l2: f64,
    /// Scheduled to fault once when it retires (see
    /// [`crate::Fault::Transient`]).
    transient: bool,
}

/// Per-device resource capacities.
#[derive(Debug, Clone)]
struct DeviceCaps {
    sms: f64,
    hbm: f64,
    l2: f64,
}

impl DeviceCaps {
    fn of(machine: &MachineConfig) -> Self {
        DeviceCaps {
            sms: machine.sms as f64,
            hbm: machine.hbm_bytes_per_cycle,
            l2: machine.l2_bytes_per_cycle,
        }
    }
}

/// Fluid timing model of kernels sharing one device — or, built with
/// [`ConcurrentEngine::with_topology`], several devices behind shared
/// links. Compute kernels on different devices contend only for their
/// own device's SMs/HBM/L2; communication kernels
/// ([`ConcurrentEngine::launch_transfer`]) draw only on their link's
/// bandwidth, split proportionally when several transfers share it.
///
/// Drive it by [`ConcurrentEngine::launch`]ing kernels (each launch
/// starts at the engine's current time) and calling
/// [`ConcurrentEngine::advance`] to step to the next completion. The
/// runtime's stream scheduler interleaves launches and completions to
/// model dependency-gated streams; [`crate::Simulator::run_timing_concurrent`]
/// launches everything at time zero.
#[derive(Debug)]
pub struct ConcurrentEngine {
    devices: Vec<DeviceCaps>,
    /// Bandwidth capacity per link, bytes per cycle.
    links: Vec<f64>,
    now: f64,
    active: Vec<Active>,
    /// Injected faults; `None` (the default) is bit-identical to the
    /// pre-fault engine.
    fault_plan: Option<FaultPlan>,
    /// Compute launches seen so far, per device (transient-fault
    /// matching).
    launch_counts: Vec<u64>,
    /// Loss cycle of each device that already died.
    lost: Vec<Option<f64>>,
    /// Steps produced but not yet handed out (eviction markers and
    /// their casualties).
    pending: VecDeque<EngineStep>,
}

impl ConcurrentEngine {
    /// An idle single device at cycle 0.
    #[must_use]
    pub fn new(machine: &MachineConfig) -> Self {
        ConcurrentEngine {
            devices: vec![DeviceCaps::of(machine)],
            links: Vec::new(),
            now: 0.0,
            active: Vec::new(),
            fault_plan: None,
            launch_counts: vec![0],
            lost: vec![None],
            pending: VecDeque::new(),
        }
    }

    /// An idle multi-device machine at cycle 0. A one-device topology is
    /// bit-identical to [`ConcurrentEngine::new`] on that device.
    #[must_use]
    pub fn with_topology(topology: &Topology) -> Self {
        let n = topology.devices.len();
        ConcurrentEngine {
            devices: topology.devices.iter().map(DeviceCaps::of).collect(),
            links: topology.links.iter().map(|l| l.bytes_per_cycle).collect(),
            now: 0.0,
            active: Vec::new(),
            fault_plan: None,
            launch_counts: vec![0; n],
            lost: vec![None; n],
            pending: VecDeque::new(),
        }
    }

    /// Attach a [`FaultPlan`]. An empty plan leaves every completion
    /// bit-identical to an engine without one; a non-empty plan makes
    /// [`ConcurrentEngine::step`] surface faults as typed outcomes.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The cycle `device` died at, once its [`crate::Fault::DeviceLoss`]
    /// has fired (`None` while it is healthy or before the loss cycle is
    /// reached).
    #[must_use]
    pub fn device_lost(&self, device: usize) -> Option<f64> {
        self.lost.get(device).copied().flatten()
    }

    /// Current simulated time in cycles.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the clock to `t` while the engine is idle (no active
    /// launches) — how a scheduler models waiting out a retry backoff.
    /// Device losses whose cycle the skip crosses still fire (their
    /// [`EngineStep::DeviceEvicted`] markers surface on the next
    /// [`ConcurrentEngine::step`]). A no-op when launches are in flight
    /// or `t` is in the past.
    pub fn skip_to(&mut self, t: f64) {
        if self.active.is_empty() && t > self.now {
            self.now = t;
            self.process_due_losses();
        }
    }

    /// Number of co-resident kernels.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Number of devices the engine models.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Admit a kernel on device 0 at the current time. `id` is echoed
    /// back in its [`Completion`].
    pub fn launch(&mut self, id: usize, profile: &KernelProfile) {
        self.launch_on(id, 0, profile);
    }

    /// Admit a compute kernel on `device` at the current time (out of
    /// range clamps to the last device — callers validate their topology
    /// before launching).
    pub fn launch_on(&mut self, id: usize, device: usize, profile: &KernelProfile) {
        let device = device.min(self.devices.len().saturating_sub(1));
        let launch_index = self.launch_counts[device];
        self.launch_counts[device] += 1;
        if self.lost[device].is_some() {
            // Launching onto a dead device fails immediately: a
            // zero-length interval with a typed outcome, never a panic.
            self.pending.push_back(EngineStep::Retired {
                completion: Completion {
                    id,
                    start: self.now,
                    end: self.now,
                },
                outcome: LaunchOutcome::DeviceLost,
            });
            return;
        }
        let transient = self
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.transient_hits(device, launch_index));
        self.active.push(Active {
            id,
            start: self.now,
            remaining: profile.cycles,
            device,
            link: None,
            link_demand: 0.0,
            sm: profile.sm_demand,
            hbm: profile.hbm_demand,
            l2: profile.l2_demand,
            transient,
        });
    }

    /// Admit a communication kernel on `link` at the current time:
    /// `cycles` of solo transfer time drawing `demand` bytes per cycle
    /// on the link (and nothing on any device). Out-of-range links clamp
    /// like [`ConcurrentEngine::launch_on`]; an engine with no links
    /// runs the transfer unthrottled (solo time only).
    pub fn launch_transfer(&mut self, id: usize, link: usize, cycles: f64, demand: f64) {
        let link = if self.links.is_empty() {
            None
        } else {
            Some(link.min(self.links.len() - 1))
        };
        self.active.push(Active {
            id,
            start: self.now,
            remaining: cycles,
            device: 0,
            link,
            link_demand: demand,
            sm: 0.0,
            hbm: 0.0,
            l2: 0.0,
            transient: false,
        });
    }

    /// Per-kernel progress rates (solo-cycles per wall-cycle) for the
    /// current active set: the minimum of the kernel's proportional
    /// shares of its own device's SMs, HBM, and L2 — or, for a
    /// communication kernel, its proportional share of its link's
    /// bandwidth. Kernels with no demand on a resource are not throttled
    /// by it; kernels on different devices never throttle each other.
    fn rates(&self) -> Vec<f64> {
        let nd = self.devices.len();
        let mut sm_sum = vec![0.0f64; nd];
        let mut hbm_sum = vec![0.0f64; nd];
        let mut l2_sum = vec![0.0f64; nd];
        let mut link_sum = vec![0.0f64; self.links.len()];
        // Accumulate in insertion order, exactly the order the
        // single-device `sum()` used — sums stay bit-identical.
        for a in &self.active {
            match a.link {
                Some(l) => link_sum[l] += a.link_demand,
                None => {
                    sm_sum[a.device] += a.sm;
                    hbm_sum[a.device] += a.hbm;
                    l2_sum[a.device] += a.l2;
                }
            }
        }
        let sm_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| (caps.sms / sm_sum[d]).min(1.0))
            .collect();
        let hbm_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| {
                if hbm_sum[d] > caps.hbm {
                    caps.hbm / hbm_sum[d]
                } else {
                    1.0
                }
            })
            .collect();
        let l2_scale: Vec<f64> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, caps)| {
                if l2_sum[d] > caps.l2 {
                    caps.l2 / l2_sum[d]
                } else {
                    1.0
                }
            })
            .collect();
        let link_scale: Vec<f64> = self
            .links
            .iter()
            .enumerate()
            .map(|(l, &cap)| {
                if link_sum[l] > cap {
                    cap / link_sum[l]
                } else {
                    1.0
                }
            })
            .collect();
        self.active
            .iter()
            .map(|a| match a.link {
                Some(l) => match &self.fault_plan {
                    Some(plan) => link_scale[l] * plan.link_factor(l, self.now),
                    None => link_scale[l],
                },
                None => {
                    let d = a.device;
                    let mut r = sm_scale[d];
                    if a.hbm > 0.0 {
                        r = r.min(hbm_scale[d]);
                    }
                    if a.l2 > 0.0 {
                        r = r.min(l2_scale[d]);
                    }
                    match &self.fault_plan {
                        Some(plan) => r * plan.slowdown_factor(d, self.now),
                        None => r,
                    }
                }
            })
            .collect()
    }

    /// Fire every [`crate::Fault::DeviceLoss`] whose cycle has been
    /// reached: queue an eviction marker, then kill the launches in
    /// flight on the dead device (their intervals end at the current
    /// cycle). Returns `true` when anything fired.
    fn process_due_losses(&mut self) -> bool {
        let Some(plan) = self.fault_plan.clone() else {
            return false;
        };
        let mut fired = false;
        for device in 0..self.devices.len() {
            if self.lost[device].is_some() {
                continue;
            }
            let Some(at) = plan.device_loss_at(device) else {
                continue;
            };
            if at > self.now {
                continue;
            }
            self.lost[device] = Some(at);
            fired = true;
            self.pending
                .push_back(EngineStep::DeviceEvicted { device, at });
            let mut survivors = Vec::with_capacity(self.active.len());
            for a in self.active.drain(..) {
                if a.link.is_none() && a.device == device {
                    self.pending.push_back(EngineStep::Retired {
                        completion: Completion {
                            id: a.id,
                            start: a.start,
                            end: self.now,
                        },
                        outcome: LaunchOutcome::DeviceLost,
                    });
                } else {
                    survivors.push(a);
                }
            }
            self.active = survivors;
        }
        fired
    }

    /// Advance to the next observable event: a launch retiring (with
    /// its [`LaunchOutcome`]) or a device dying. Returns `None` when
    /// nothing is active or queued. Without a fault plan this is
    /// exactly [`ConcurrentEngine::advance`] wrapped in
    /// [`EngineStep::Retired`] / [`LaunchOutcome::Completed`], bit for
    /// bit.
    pub fn step(&mut self) -> Option<EngineStep> {
        if let Some(s) = self.pending.pop_front() {
            return Some(s);
        }
        loop {
            if self.process_due_losses() {
                if let Some(s) = self.pending.pop_front() {
                    return Some(s);
                }
            }
            if self.active.is_empty() {
                return None;
            }
            let rates = self.rates();
            let mut win = 0;
            let mut win_dt = self.active[0].remaining / rates[0];
            for (i, (a, r)) in self.active.iter().zip(&rates).enumerate().skip(1) {
                let dt = a.remaining / r;
                if dt < win_dt || (dt == win_dt && a.id < self.active[win].id) {
                    win = i;
                    win_dt = dt;
                }
            }
            // Clip the fluid window at the next fault boundary (a device
            // loss, or a slowdown/degradation window opening or closing)
            // so rate changes integrate exactly. No plan, no boundaries —
            // and the legacy arithmetic below runs unchanged.
            if let Some(boundary) = self
                .fault_plan
                .as_ref()
                .and_then(|p| p.next_boundary(self.now))
            {
                if self.now + win_dt > boundary {
                    let dt = boundary - self.now;
                    self.now = boundary;
                    for (a, r) in self.active.iter_mut().zip(&rates) {
                        a.remaining = (a.remaining - dt * r).max(0.0);
                    }
                    continue;
                }
            }
            self.now += win_dt;
            for (a, r) in self.active.iter_mut().zip(&rates) {
                a.remaining = (a.remaining - win_dt * r).max(0.0);
            }
            let done = self.active.remove(win);
            let outcome = if done.transient {
                LaunchOutcome::TransientFault
            } else {
                LaunchOutcome::Completed
            };
            return Some(EngineStep::Retired {
                completion: Completion {
                    id: done.id,
                    start: done.start,
                    end: self.now,
                },
                outcome,
            });
        }
    }

    /// Advance time to the next kernel completion and retire it. Returns
    /// `None` when no kernel is active. Ties complete lowest-id-first,
    /// one per call, so completion order is deterministic. Eviction
    /// markers are skipped and faulted outcomes are collapsed into plain
    /// completions — fault-aware schedulers should drive
    /// [`ConcurrentEngine::step`] instead.
    pub fn advance(&mut self) -> Option<Completion> {
        loop {
            match self.step() {
                Some(EngineStep::Retired { completion, .. }) => return Some(completion),
                Some(EngineStep::DeviceEvicted { .. }) => {}
                None => return None,
            }
        }
    }
}

/// Result of [`crate::Simulator::run_timing_concurrent`]: per-kernel
/// intervals on the shared device plus the whole-batch makespan.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// One slot per input kernel, in input order.
    pub kernels: Vec<KernelSlot>,
    /// Batch makespan in cycles: the latest completion.
    pub makespan: f64,
    /// Batch makespan in seconds at the machine clock.
    pub seconds: f64,
}

/// One kernel's interval within a concurrent batch.
#[derive(Debug, Clone)]
pub struct KernelSlot {
    /// Launch cycle (0 for a whole-batch run).
    pub start: f64,
    /// Retire cycle.
    pub end: f64,
    /// The kernel's solo timing report (what it would do alone).
    pub solo: TimingReport,
}

impl ConcurrentReport {
    /// What the batch would cost launched back-to-back: the sum of the
    /// solo makespans.
    #[must_use]
    pub fn serial_sum(&self) -> f64 {
        self.kernels.iter().map(|k| k.solo.cycles).sum()
    }

    /// `serial_sum / makespan` — 1.0 means no overlap, `n` means `n`
    /// kernels ran fully in parallel.
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.serial_sum() / self.makespan
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(id: &str, cycles: f64, sm: f64, hbm: f64) -> KernelProfile {
        KernelProfile {
            name: id.into(),
            cycles,
            sm_demand: sm,
            hbm_demand: hbm,
            l2_demand: 0.0,
        }
    }

    fn machine4() -> MachineConfig {
        MachineConfig::test_gpu() // 4 SMs, 64 B/cycle HBM
    }

    #[test]
    fn lone_kernel_runs_at_full_rate() {
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 2.0, 10.0));
        let c = e.advance().unwrap();
        assert_eq!((c.start, c.end), (0.0, 1000.0));
        assert!(e.advance().is_none());
    }

    #[test]
    fn small_kernels_overlap_fully() {
        // Two 1-SM kernels on a 4-SM machine: no contention at all.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 1.0, 1.0));
        e.launch(1, &profile("b", 600.0, 1.0, 1.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!((first.id, first.end), (1, 600.0));
        assert_eq!((second.id, second.end), (0, 1000.0));
    }

    #[test]
    fn full_device_kernels_serialize() {
        // Two full-device kernels: proportional SM sharing halves both
        // rates, so the pair costs exactly the serial sum.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("a", 1000.0, 4.0, 0.0));
        e.launch(1, &profile("b", 1000.0, 4.0, 0.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!(first.id, 0, "ties retire lowest id first");
        assert!((second.end - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn devices_do_not_contend_with_each_other() {
        // Two full-device kernels serialize on one device but overlap
        // perfectly when placed on different devices of a 2-GPU topology.
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let mut e = ConcurrentEngine::with_topology(&topo);
        assert_eq!(e.device_count(), 2);
        e.launch_on(0, 0, &profile("a", 1000.0, 4.0, 0.0));
        e.launch_on(1, 1, &profile("b", 1000.0, 4.0, 0.0));
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!((first.id, first.end), (0, 1000.0));
        assert_eq!((second.id, second.end), (1, 1000.0));
    }

    #[test]
    fn one_device_topology_matches_single_device_engine() {
        let topo = crate::topology::Topology::single(machine4());
        let mut multi = ConcurrentEngine::with_topology(&topo);
        let mut single = ConcurrentEngine::new(&machine4());
        for e in [&mut multi, &mut single] {
            e.launch(0, &profile("a", 1000.0, 4.0, 64.0));
            e.launch(1, &profile("b", 700.0, 2.0, 32.0));
            e.launch(2, &profile("c", 300.0, 1.0, 8.0));
        }
        loop {
            let (a, b) = (multi.advance(), single.advance());
            assert_eq!(a, b, "bit-identical completions");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn transfers_share_link_bandwidth_proportionally() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let cap = topo.links[0].bytes_per_cycle;
        let mut e = ConcurrentEngine::with_topology(&topo);
        // Two transfers each demanding the full link: both stretch 2x.
        e.launch_transfer(0, 0, 1000.0, cap);
        e.launch_transfer(1, 0, 1000.0, cap);
        // A compute kernel is untouched by the link fight.
        e.launch_on(2, 0, &profile("alu", 1000.0, 1.0, 0.0));
        let first = e.advance().unwrap();
        assert_eq!((first.id, first.end), (2, 1000.0));
        let second = e.advance().unwrap();
        assert_eq!(second.id, 0, "ties retire lowest id first");
        assert!((second.end - 2000.0).abs() < 1e-9, "end {}", second.end);
        let third = e.advance().unwrap();
        assert!((third.end - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_on_distinct_links_do_not_contend() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 4);
        let cap = topo.links[0].bytes_per_cycle;
        let mut e = ConcurrentEngine::with_topology(&topo);
        let l01 = topo.link_between(0, 1).unwrap();
        let l23 = topo.link_between(2, 3).unwrap();
        e.launch_transfer(0, l01, 1000.0, cap);
        e.launch_transfer(1, l23, 1000.0, cap);
        let first = e.advance().unwrap();
        let second = e.advance().unwrap();
        assert_eq!(first.end, 1000.0);
        assert_eq!(second.end, 1000.0);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let mut plain = ConcurrentEngine::new(&machine4());
        let mut faulted = ConcurrentEngine::new(&machine4()).with_fault_plan(FaultPlan::new());
        for e in [&mut plain, &mut faulted] {
            e.launch(0, &profile("a", 1000.0, 4.0, 64.0));
            e.launch(1, &profile("b", 700.0, 2.0, 32.0));
            e.launch(2, &profile("c", 300.0, 1.0, 8.0));
        }
        loop {
            let (a, b) = (plain.advance(), faulted.advance());
            assert_eq!(a, b, "bit-identical completions");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn transient_faults_surface_as_typed_outcomes() {
        let plan = FaultPlan::new().with_transient(0, 1);
        let mut e = ConcurrentEngine::new(&machine4()).with_fault_plan(plan);
        e.launch(0, &profile("a", 300.0, 1.0, 0.0)); // launch 0: clean
        e.launch(1, &profile("b", 600.0, 1.0, 0.0)); // launch 1: faults once
        match e.step().unwrap() {
            EngineStep::Retired {
                completion,
                outcome,
            } => {
                assert_eq!((completion.id, outcome), (0, LaunchOutcome::Completed));
            }
            other => panic!("unexpected {other:?}"),
        }
        match e.step().unwrap() {
            EngineStep::Retired {
                completion,
                outcome,
            } => {
                assert_eq!((completion.id, outcome), (1, LaunchOutcome::TransientFault));
                assert_eq!(completion.end, 600.0, "a transient burns its full duration");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The retry is launch index 2 on device 0: it succeeds.
        e.launch(2, &profile("b'", 600.0, 1.0, 0.0));
        match e.step().unwrap() {
            EngineStep::Retired { outcome, .. } => assert_eq!(outcome, LaunchOutcome::Completed),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn device_loss_kills_in_flight_launches_at_the_loss_cycle() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let plan = FaultPlan::new().with_device_loss(1, 400.0);
        let mut e = ConcurrentEngine::with_topology(&topo).with_fault_plan(plan);
        e.launch_on(0, 0, &profile("safe", 1000.0, 1.0, 0.0));
        e.launch_on(1, 1, &profile("doomed", 1000.0, 1.0, 0.0));
        match e.step().unwrap() {
            EngineStep::DeviceEvicted { device, at } => assert_eq!((device, at), (1, 400.0)),
            other => panic!("the eviction marker comes first, got {other:?}"),
        }
        match e.step().unwrap() {
            EngineStep::Retired {
                completion,
                outcome,
            } => {
                assert_eq!((completion.id, outcome), (1, LaunchOutcome::DeviceLost));
                assert_eq!(completion.end, 400.0, "killed at the loss cycle");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.device_lost(1), Some(400.0));
        assert_eq!(e.device_lost(0), None);
        // The surviving kernel still completes on time.
        match e.step().unwrap() {
            EngineStep::Retired {
                completion,
                outcome,
            } => {
                assert_eq!((completion.id, outcome), (0, LaunchOutcome::Completed));
                assert_eq!(completion.end, 1000.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Launching onto the dead device fails immediately, typed.
        e.launch_on(9, 1, &profile("late", 100.0, 1.0, 0.0));
        match e.step().unwrap() {
            EngineStep::Retired {
                completion,
                outcome,
            } => {
                assert_eq!((completion.id, outcome), (9, LaunchOutcome::DeviceLost));
                assert_eq!(completion.start, completion.end);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slowdown_windows_stretch_exactly() {
        // 1000 solo cycles, with cycles [0, 500) at half speed: 500
        // wall cycles buy 250 solo cycles, the remaining 750 run at
        // full rate, so the kernel retires at 1250.
        let plan = FaultPlan::new().with_slowdown(0, 0.0, 500.0, 0.5);
        let mut e = ConcurrentEngine::new(&machine4()).with_fault_plan(plan);
        e.launch(0, &profile("slow", 1000.0, 1.0, 0.0));
        let c = e.advance().unwrap();
        assert!((c.end - 1250.0).abs() < 1e-9, "end {}", c.end);
    }

    #[test]
    fn link_degradation_stretches_transfers_only() {
        let topo = crate::topology::Topology::nvlink(&machine4(), 2);
        let cap = topo.links[0].bytes_per_cycle;
        // The link runs at quarter bandwidth forever (window far past
        // the transfer): 1000 solo cycles become 4000.
        let plan = FaultPlan::new().with_link_degraded(0, 0.0, 1e9, 0.25);
        let mut e = ConcurrentEngine::with_topology(&topo).with_fault_plan(plan);
        e.launch_transfer(0, 0, 1000.0, cap);
        e.launch_on(1, 0, &profile("alu", 1000.0, 1.0, 0.0));
        let first = e.advance().unwrap();
        assert_eq!((first.id, first.end), (1, 1000.0), "compute untouched");
        let second = e.advance().unwrap();
        assert!((second.end - 4000.0).abs() < 1e-6, "end {}", second.end);
    }

    #[test]
    fn bandwidth_contention_throttles_only_consumers() {
        // One HBM-saturating kernel and one compute-only kernel: the
        // compute kernel is not throttled by the bandwidth fight.
        let mut e = ConcurrentEngine::new(&machine4());
        e.launch(0, &profile("mem", 1000.0, 1.0, 64.0));
        e.launch(1, &profile("mem2", 1000.0, 1.0, 64.0));
        e.launch(2, &profile("alu", 1000.0, 1.0, 0.0));
        let first = e.advance().unwrap();
        assert_eq!(first.id, 2, "compute kernel finishes first");
        assert_eq!(first.end, 1000.0);
        // The two memory kernels split HBM: both stretch to ~2x.
        let second = e.advance().unwrap();
        assert!((second.end - 2000.0).abs() < 1e-6, "end {}", second.end);
    }
}
