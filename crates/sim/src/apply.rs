//! The functional data path: resolved flat-buffer views and bulk applies.
//!
//! Functional mode used to interpret every scalar element access through a
//! `match` on the memory object plus two-dimensional index arithmetic and a
//! per-element dtype conversion. This module is the fast replacement: each
//! resolved slice ([`RSlice`]) is turned **once per apply** into a [`View`]
//! — a flat buffer key plus base offset and row stride — and the applies
//! run as bulk operations over contiguous rows:
//!
//! - [`wgmma`] is a blocked microkernel (hoisted row bases, `JB`-column
//!   blocking, a dedicated `transpose_b` dot-product path). The k-loop
//!   accumulation order of every output element is exactly the scalar
//!   interpreter's, so results are **bitwise identical**.
//! - [`copy`] streams whole rows with [`DType::quantize_copy`] — no
//!   per-element division/modulo, one dtype dispatch per row.
//! - [`simt`] stages each source row once and writes each destination row
//!   through [`DType::quantize_slice`].
//!
//! Where operands live in different memory pools (params / shared / frags)
//! the borrows are split so source and destination views coexist without
//! copies; same-pool operands are staged through a reusable [`Scratch`]
//! buffer. Staging whole operands is equivalent to the scalar interleaving
//! for every program the kernel validator admits (sources are read before
//! the destination is written; exact in-place aliasing is processed
//! row-by-row in the same order as the scalar path).
//!
//! The pre-optimization scalar interpreter is retained verbatim in
//! [`scalar`] (tests and the `scalar-oracle` feature) as the reference
//! oracle: a property test below drives both paths over random shapes,
//! dtypes and slices and asserts bitwise equality.

use crate::error::SimError;
use crate::kernel::Kernel;
use crate::mem::MemRef;
use cypress_tensor::{DType, Tensor};

use crate::instr::SimtOp;

/// A slice with all expressions evaluated for a specific CTA/iteration.
#[derive(Debug, Clone)]
pub(crate) struct RSlice {
    pub(crate) mem: MemRef,
    pub(crate) stage: usize,
    pub(crate) row0: usize,
    pub(crate) col0: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

/// `[cta][region]` flat shared-memory buffers covering all stages.
type SmemPool = Vec<Vec<Vec<f32>>>;
/// `[cta][role][frag]` flat register-fragment buffers.
type FragPool = Vec<Vec<Vec<Vec<f32>>>>;

/// Functional memory state: the three memory pools of the machine model.
pub(crate) struct FuncData {
    /// Launch-bound parameter tensors (global memory).
    pub(crate) params: Vec<Tensor>,
    /// Per-CTA shared-memory regions.
    pub(crate) smem: SmemPool,
    /// Per-CTA, per-role register fragments.
    pub(crate) frags: FragPool,
}

/// Which flat buffer a resolved slice lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufKey {
    Param(usize),
    Smem {
        cta: usize,
        region: usize,
    },
    Frag {
        cta: usize,
        role: usize,
        frag: usize,
    },
}

/// A slice resolved to a flat buffer: base element offset of the slice
/// origin (stage folded in), the parent's row stride, the extent, and the
/// dtype quantization applied on stores.
#[derive(Debug, Clone, Copy)]
struct View {
    key: BufKey,
    base: usize,
    stride: usize,
    rows: usize,
    cols: usize,
    dtype: DType,
}

impl View {
    /// Resolve `s` against `kernel`'s declarations for the executor at
    /// `(cta, role)`. `s` has already been bounds-checked by the engine's
    /// slice resolution.
    fn of(kernel: &Kernel, cta: usize, role: usize, s: &RSlice) -> View {
        match s.mem {
            MemRef::Param(p) => {
                let d = &kernel.params[p];
                View {
                    key: BufKey::Param(p),
                    base: s.row0 * d.cols + s.col0,
                    stride: d.cols,
                    rows: s.rows,
                    cols: s.cols,
                    dtype: d.dtype,
                }
            }
            MemRef::Smem(r) => {
                let d = &kernel.smem[r];
                View {
                    key: BufKey::Smem { cta, region: r },
                    base: s.stage * d.rows * d.cols + s.row0 * d.cols + s.col0,
                    stride: d.cols,
                    rows: s.rows,
                    cols: s.cols,
                    dtype: d.dtype,
                }
            }
            MemRef::Frag(f) => {
                let d = &kernel.frags[f];
                View {
                    key: BufKey::Frag { cta, role, frag: f },
                    base: s.row0 * d.cols + s.col0,
                    stride: d.cols,
                    rows: s.rows,
                    cols: s.cols,
                    dtype: DType::F32,
                }
            }
        }
    }

    /// Element offset of `(i, 0)` of the slice.
    fn row(&self, i: usize) -> usize {
        self.base + i * self.stride
    }
}

impl FuncData {
    /// The flat buffer behind `key`, immutably.
    fn buf(&self, key: BufKey) -> &[f32] {
        match key {
            BufKey::Param(p) => self.params[p].data(),
            BufKey::Smem { cta, region } => &self.smem[cta][region],
            BufKey::Frag { cta, role, frag } => &self.frags[cta][role][frag],
        }
    }

    /// The flat buffer behind `key`, mutably.
    fn buf_mut(&mut self, key: BufKey) -> &mut [f32] {
        match key {
            BufKey::Param(p) => self.params[p].data_mut(),
            BufKey::Smem { cta, region } => &mut self.smem[cta][region],
            BufKey::Frag { cta, role, frag } => &mut self.frags[cta][role][frag],
        }
    }
}

/// Reusable staging buffers so applies never allocate in steady state.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

/// Append the slice's rows (row-major, contiguous) to `out`.
fn gather(out: &mut Vec<f32>, buf: &[f32], v: &View) {
    out.clear();
    out.reserve(v.rows * v.cols);
    for i in 0..v.rows {
        out.extend_from_slice(&buf[v.row(i)..v.row(i) + v.cols]);
    }
}

/// A borrow of `key`'s buffer out of the param or shared pools; `None`
/// for fragments (the caller holds the fragment pool mutably).
fn param_or_smem<'a>(params: &'a [Tensor], smem: &'a SmemPool, key: BufKey) -> Option<&'a [f32]> {
    match key {
        BufKey::Param(p) => Some(params[p].data()),
        BufKey::Smem { cta, region } => Some(&smem[cta][region]),
        BufKey::Frag { .. } => None,
    }
}

/// Like [`param_or_smem`], but out of the param or fragment pools
/// (`None` when the caller holds shared memory mutably).
fn param_or_frag<'a>(params: &'a [Tensor], frags: &'a FragPool, key: BufKey) -> Option<&'a [f32]> {
    match key {
        BufKey::Param(p) => Some(params[p].data()),
        BufKey::Frag { cta, role, frag } => Some(&frags[cta][role][frag]),
        BufKey::Smem { .. } => None,
    }
}

/// Like [`param_or_smem`], but out of the shared or fragment pools
/// (`None` when the caller holds a parameter mutably).
fn smem_or_frag<'a>(smem: &'a SmemPool, frags: &'a FragPool, key: BufKey) -> Option<&'a [f32]> {
    match key {
        BufKey::Smem { cta, region } => Some(&smem[cta][region]),
        BufKey::Frag { cta, role, frag } => Some(&frags[cta][role][frag]),
        BufKey::Param(_) => None,
    }
}

// ---- copy --------------------------------------------------------------

/// Bulk copy `src` into `dst`, reading the source linearly in the
/// destination's row-major order (the TMA/`cp.async` reshape semantics of
/// the scalar interpreter) and quantizing stores to the destination dtype.
pub(crate) fn copy(
    kernel: &Kernel,
    data: &mut FuncData,
    scratch: &mut Scratch,
    cta: usize,
    role: usize,
    src: &RSlice,
    dst: &RSlice,
) -> Result<(), SimError> {
    let sv = View::of(kernel, cta, role, src);
    let dv = View::of(kernel, cta, role, dst);
    // Cross-pool copies — every TMA/`cp.async` transfer (param ↔ smem)
    // and most SIMT copies — run zero-copy on split borrows.
    let FuncData {
        params,
        smem,
        frags,
    } = data;
    match dv.key {
        BufKey::Param(p) => {
            if let Some(sbuf) = smem_or_frag(smem, frags, sv.key) {
                return copy_rows(sbuf, &sv, params[p].data_mut(), &dv);
            }
        }
        BufKey::Smem { cta, region } => {
            if let Some(sbuf) = param_or_frag(params, frags, sv.key) {
                return copy_rows(sbuf, &sv, &mut smem[cta][region], &dv);
            }
        }
        BufKey::Frag { cta, role, frag } => {
            if let Some(sbuf) = param_or_smem(params, smem, sv.key) {
                return copy_rows(sbuf, &sv, &mut frags[cta][role][frag], &dv);
            }
        }
    }
    // Same-pool copy: stage the source linearly (slice-row-major,
    // matching the scalar `idx / src.cols` walk), then scatter whole
    // destination rows.
    let src_rows = (dv.rows * dv.cols).div_ceil(sv.cols.max(1));
    let stage_view = View {
        rows: src_rows,
        ..sv
    };
    gather(&mut scratch.a, data.buf(sv.key), &stage_view);
    let staged = View {
        base: 0,
        stride: sv.cols,
        rows: src_rows,
        ..sv
    };
    let out = data.buf_mut(dv.key);
    copy_rows(&scratch.a, &staged, out, &dv)
}

/// Stream `sv`'s elements (linearly, slice-row-major) into `dv`'s rows,
/// quantizing stores to the destination dtype. Same-width slices reduce
/// to one `quantize_copy` per row; reshapes walk a `(row, col)` cursor
/// over the source — the bulk form of the scalar `idx / src.cols` walk.
fn copy_rows(sbuf: &[f32], sv: &View, dbuf: &mut [f32], dv: &View) -> Result<(), SimError> {
    if sv.cols == dv.cols {
        for i in 0..dv.rows {
            let srow = &sbuf[sv.row(i)..sv.row(i) + dv.cols];
            let drow = &mut dbuf[dv.row(i)..dv.row(i) + dv.cols];
            dv.dtype.quantize_copy(srow, drow);
        }
    } else {
        let (mut si, mut sj) = (0usize, 0usize);
        for i in 0..dv.rows {
            let drow = &mut dbuf[dv.row(i)..dv.row(i) + dv.cols];
            let mut filled = 0;
            while filled < dv.cols {
                let take = (dv.cols - filled).min(sv.cols - sj);
                let off = sv.row(si) + sj;
                dv.dtype
                    .quantize_copy(&sbuf[off..off + take], &mut drow[filled..filled + take]);
                filled += take;
                sj += take;
                if sj == sv.cols {
                    sj = 0;
                    si += 1;
                }
            }
        }
    }
    Ok(())
}

// ---- wgmma -------------------------------------------------------------

/// Column-block width of the non-transposed microkernel: accumulators for
/// `JB` outputs stay in registers across the hoisted k-loop.
const JB: usize = 8;

/// The blocked matrix-multiply microkernel over flat row-strided operands.
///
/// Every output element `(i, j)` accumulates `a(i, k) * b(k, j)` in
/// ascending `k` order starting from its initial value — exactly the
/// scalar interpreter's order — so results are bitwise identical; the
/// blocking only changes which *outputs* are in flight, never the order of
/// operations within one output.
#[allow(clippy::too_many_arguments)]
fn wgmma_rows(
    abuf: &[f32],
    av: &View,
    bbuf: &[f32],
    bv: &View,
    out: &mut [f32],
    cv: &View,
    n: usize,
    accumulate: bool,
    transpose_b: bool,
) {
    let (m, k) = (av.rows, av.cols);
    for i in 0..m {
        let arow = &abuf[av.row(i)..av.row(i) + k];
        let crow = &mut out[cv.row(i)..cv.row(i) + n];
        if transpose_b {
            // b is stored j-major: output (i, j) is a dot product of two
            // contiguous rows.
            for (j, c) in crow.iter_mut().enumerate() {
                let brow = &bbuf[bv.row(j)..bv.row(j) + k];
                let mut v = if accumulate { *c } else { 0.0 };
                for (x, y) in arow.iter().zip(brow) {
                    v += x * y;
                }
                *c = v;
            }
        } else {
            // b is stored k-major: block the columns so `JB` accumulators
            // share each broadcast `a(i, k)` load.
            let mut j0 = 0;
            while j0 < n {
                let jn = (j0 + JB).min(n);
                let w = jn - j0;
                let mut acc = [0.0f32; JB];
                if accumulate {
                    acc[..w].copy_from_slice(&crow[j0..jn]);
                }
                for (kk, &a_ik) in arow.iter().enumerate() {
                    let brow = &bbuf[bv.row(kk) + j0..bv.row(kk) + jn];
                    for (slot, &b_kj) in acc[..w].iter_mut().zip(brow) {
                        *slot += a_ik * b_kj;
                    }
                }
                crow[j0..jn].copy_from_slice(&acc[..w]);
                j0 = jn;
            }
        }
        // Each element was written exactly once after its (optional)
        // accumulate read, so quantizing the finished row is identical to
        // quantizing each store.
        cv.dtype.quantize_slice(crow);
    }
}

/// Bulk `acc += a @ b` (optionally `b` transposed, optionally overwriting
/// `acc`). The kernel validator guarantees `acc` is a register fragment
/// and `b` shared memory, so the common shapes run zero-copy on split
/// borrows; anything else stages operands through `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wgmma(
    kernel: &Kernel,
    data: &mut FuncData,
    scratch: &mut Scratch,
    cta: usize,
    role: usize,
    a: &RSlice,
    b: &RSlice,
    acc: &RSlice,
    accumulate: bool,
    transpose_b: bool,
) -> Result<(), SimError> {
    let (m, k) = (a.rows, a.cols);
    let n = acc.cols;
    let bk = if transpose_b { b.cols } else { b.rows };
    let bn = if transpose_b { b.rows } else { b.cols };
    if bk != k || bn < n || acc.rows != m {
        return Err(SimError::OutOfBounds {
            what: format!(
                "wgmma shape mismatch: a {}x{}, b {}x{} (transpose_b={transpose_b}), acc {}x{}",
                a.rows, a.cols, b.rows, b.cols, acc.rows, acc.cols
            ),
        });
    }
    let av = View::of(kernel, cta, role, a);
    let bv = View::of(kernel, cta, role, b);
    let cv = View::of(kernel, cta, role, acc);
    let FuncData {
        params,
        smem,
        frags,
    } = data;
    if let BufKey::Frag {
        cta: fc,
        role: fr,
        frag: facc,
    } = cv.key
    {
        // Accumulator in the register pool, operands elsewhere: all three
        // views coexist on split borrows.
        if let (Some(abuf), Some(bbuf)) = (
            param_or_smem(params, smem, av.key),
            param_or_smem(params, smem, bv.key),
        ) {
            let out = &mut frags[fc][fr][facc];
            wgmma_rows(abuf, &av, bbuf, &bv, out, &cv, n, accumulate, transpose_b);
            return Ok(());
        }
        // `a` is a sibling fragment of the same warpgroup (the FA2
        // register-operand path): split the fragment pool around the two
        // indices.
        if let (
            BufKey::Frag {
                cta: ac,
                role: ar,
                frag: af,
            },
            Some(bbuf),
        ) = (av.key, param_or_smem(params, smem, bv.key))
        {
            if (ac, ar) == (fc, fr) && af != facc {
                let pool = &mut frags[fc][fr];
                let (lo, hi) = pool.split_at_mut(af.max(facc));
                let (abuf, out): (&[f32], &mut [f32]) = if af < facc {
                    (&lo[af], &mut hi[0])
                } else {
                    (&hi[0], &mut lo[facc])
                };
                wgmma_rows(abuf, &av, bbuf, &bv, out, &cv, n, accumulate, transpose_b);
                return Ok(());
            }
        }
    }
    // Anything else (hand-built kernels the validator admits but the
    // compiler never emits): stage both operands, then write through the
    // accumulator's buffer alone.
    gather(&mut scratch.a, data.buf(av.key), &av);
    gather(&mut scratch.b, data.buf(bv.key), &bv);
    let sa = View {
        base: 0,
        stride: av.cols,
        ..av
    };
    let sb = View {
        base: 0,
        stride: bv.cols,
        ..bv
    };
    let out = data.buf_mut(cv.key);
    wgmma_rows(
        &scratch.a,
        &sa,
        &scratch.b,
        &sb,
        out,
        &cv,
        n,
        accumulate,
        transpose_b,
    );
    Ok(())
}

// ---- simt --------------------------------------------------------------

/// Bulk application of a resolved SIMT operation: each destination row is
/// produced from source rows staged once through `scratch`, then stored
/// with one dtype dispatch. Row-by-row processing preserves the scalar
/// interpreter's ordering even when an operation runs in place (the
/// destination slice aliasing a source slice exactly).
#[allow(clippy::too_many_arguments)]
pub(crate) fn simt(
    kernel: &Kernel,
    data: &mut FuncData,
    scratch: &mut Scratch,
    cta: usize,
    role: usize,
    op: &SimtOp,
    srcs: &[RSlice],
    dst: &RSlice,
) -> Result<(), SimError> {
    let dv = View::of(kernel, cta, role, dst);
    match op {
        SimtOp::Fill { value, .. } => {
            let q = dv.dtype.quantize(*value);
            let out = data.buf_mut(dv.key);
            for i in 0..dv.rows {
                out[dv.row(i)..dv.row(i) + dv.cols].fill(q);
            }
        }
        SimtOp::Copy { .. } => {
            copy(kernel, data, scratch, cta, role, &srcs[0], dst)?;
        }
        SimtOp::Map { op, .. } => {
            let sv = View::of(kernel, cta, role, &srcs[0]);
            for i in 0..dv.rows {
                stage_row(&mut scratch.a, data.buf(sv.key), &sv, i, dv.cols);
                let row = &mut data.buf_mut(dv.key)[dv.row(i)..dv.row(i) + dv.cols];
                for (d, s) in row.iter_mut().zip(&scratch.a) {
                    *d = op.apply(*s);
                }
                dv.dtype.quantize_slice(row);
            }
        }
        SimtOp::Zip { op, .. } => {
            let s0 = View::of(kernel, cta, role, &srcs[0]);
            let s1 = View::of(kernel, cta, role, &srcs[1]);
            for i in 0..dv.rows {
                stage_row(&mut scratch.a, data.buf(s0.key), &s0, i, dv.cols);
                stage_row(&mut scratch.b, data.buf(s1.key), &s1, i, dv.cols);
                let row = &mut data.buf_mut(dv.key)[dv.row(i)..dv.row(i) + dv.cols];
                for (j, d) in row.iter_mut().enumerate() {
                    *d = op.apply(scratch.a[j], scratch.b[j]);
                }
                dv.dtype.quantize_slice(row);
            }
        }
        SimtOp::RowReduce {
            op, include_dst, ..
        } => {
            let sv = View::of(kernel, cta, role, &srcs[0]);
            for i in 0..dv.rows {
                stage_row(&mut scratch.a, data.buf(sv.key), &sv, i, sv.cols);
                let out = data.buf_mut(dv.key);
                let mut acc = if *include_dst {
                    out[dv.row(i)]
                } else {
                    op.identity()
                };
                for &x in &scratch.a {
                    acc = op.apply(acc, x);
                }
                out[dv.row(i)] = dv.dtype.quantize(acc);
            }
        }
        SimtOp::RowZip { op, .. } => {
            let s0 = View::of(kernel, cta, role, &srcs[0]);
            let s1 = View::of(kernel, cta, role, &srcs[1]);
            for i in 0..dv.rows {
                let r = data.buf(s1.key)[s1.row(i)];
                stage_row(&mut scratch.a, data.buf(s0.key), &s0, i, dv.cols);
                let row = &mut data.buf_mut(dv.key)[dv.row(i)..dv.row(i) + dv.cols];
                for (d, s) in row.iter_mut().zip(&scratch.a) {
                    *d = op.apply(*s, r);
                }
                dv.dtype.quantize_slice(row);
            }
        }
    }
    Ok(())
}

/// Stage `width` elements of row `i` of `v` into `out`.
fn stage_row(out: &mut Vec<f32>, buf: &[f32], v: &View, i: usize, width: usize) {
    out.clear();
    out.extend_from_slice(&buf[v.row(i)..v.row(i) + width]);
}

// ---- scalar reference oracle -------------------------------------------

/// The pre-optimization scalar interpreter, retained verbatim as the
/// reference oracle: every element access is a `match` on the memory
/// object plus two-dimensional index arithmetic, every store a scalar
/// dtype conversion. Tests assert the fast path above is bitwise
/// identical; the `scalar-oracle` feature exposes it to the benchmark
/// harness so the speedup stays measured, not assumed.
#[cfg(any(test, feature = "scalar-oracle"))]
pub(crate) mod scalar {
    use super::{FuncData, RSlice};
    use crate::error::SimError;
    use crate::instr::SimtOp;
    use crate::kernel::Kernel;
    use crate::mem::MemRef;

    fn read_elem(
        kernel: &Kernel,
        data: &FuncData,
        cta: usize,
        role: usize,
        s: &RSlice,
        i: usize,
        j: usize,
    ) -> f32 {
        match s.mem {
            MemRef::Param(p) => {
                let cols = kernel.params[p].cols;
                data.params[p].data()[(s.row0 + i) * cols + (s.col0 + j)]
            }
            MemRef::Smem(r) => {
                let d = &kernel.smem[r];
                let base = s.stage * d.rows * d.cols;
                data.smem[cta][r][base + (s.row0 + i) * d.cols + (s.col0 + j)]
            }
            MemRef::Frag(fr) => {
                let d = &kernel.frags[fr];
                data.frags[cta][role][fr][(s.row0 + i) * d.cols + (s.col0 + j)]
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn write_elem(
        kernel: &Kernel,
        data: &mut FuncData,
        cta: usize,
        role: usize,
        s: &RSlice,
        i: usize,
        j: usize,
        v: f32,
    ) {
        match s.mem {
            MemRef::Param(p) => {
                let cols = kernel.params[p].cols;
                let dt = kernel.params[p].dtype;
                data.params[p].data_mut()[(s.row0 + i) * cols + (s.col0 + j)] = dt.quantize(v);
            }
            MemRef::Smem(r) => {
                let d = &kernel.smem[r];
                let base = s.stage * d.rows * d.cols;
                data.smem[cta][r][base + (s.row0 + i) * d.cols + (s.col0 + j)] =
                    d.dtype.quantize(v);
            }
            MemRef::Frag(fr) => {
                let cols = kernel.frags[fr].cols;
                data.frags[cta][role][fr][(s.row0 + i) * cols + (s.col0 + j)] = v;
            }
        }
    }

    pub(crate) fn copy(
        kernel: &Kernel,
        data: &mut FuncData,
        cta: usize,
        role: usize,
        src: &RSlice,
        dst: &RSlice,
    ) -> Result<(), SimError> {
        // Extents were validated equal in element count; iterate in the
        // destination's shape, reading the source linearly.
        for idx in 0..dst.rows * dst.cols {
            let (di, dj) = (idx / dst.cols, idx % dst.cols);
            let (si, sj) = (idx / src.cols, idx % src.cols);
            let v = read_elem(kernel, data, cta, role, src, si, sj);
            write_elem(kernel, data, cta, role, dst, di, dj, v);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn wgmma(
        kernel: &Kernel,
        data: &mut FuncData,
        cta: usize,
        role: usize,
        a: &RSlice,
        b: &RSlice,
        acc: &RSlice,
        accumulate: bool,
        transpose_b: bool,
    ) -> Result<(), SimError> {
        let (m, k) = (a.rows, a.cols);
        let n = acc.cols;
        let bk = if transpose_b { b.cols } else { b.rows };
        let bn = if transpose_b { b.rows } else { b.cols };
        if bk != k || bn < n || acc.rows != m {
            return Err(SimError::OutOfBounds {
                what: format!(
                    "wgmma shape mismatch: a {}x{}, b {}x{} (transpose_b={transpose_b}), acc {}x{}",
                    a.rows, a.cols, b.rows, b.cols, acc.rows, acc.cols
                ),
            });
        }
        for i in 0..m {
            for j in 0..n {
                let mut v = if accumulate {
                    read_elem(kernel, data, cta, role, acc, i, j)
                } else {
                    0.0
                };
                for kk in 0..k {
                    let av = read_elem(kernel, data, cta, role, a, i, kk);
                    let bv = if transpose_b {
                        read_elem(kernel, data, cta, role, b, j, kk)
                    } else {
                        read_elem(kernel, data, cta, role, b, kk, j)
                    };
                    v += av * bv;
                }
                write_elem(kernel, data, cta, role, acc, i, j, v);
            }
        }
        Ok(())
    }

    pub(crate) fn simt(
        kernel: &Kernel,
        data: &mut FuncData,
        cta: usize,
        role: usize,
        op: &SimtOp,
        srcs: &[RSlice],
        dst: &RSlice,
    ) -> Result<(), SimError> {
        match op {
            SimtOp::Fill { value, .. } => {
                for i in 0..dst.rows {
                    for j in 0..dst.cols {
                        write_elem(kernel, data, cta, role, dst, i, j, *value);
                    }
                }
            }
            SimtOp::Copy { .. } => {
                copy(kernel, data, cta, role, &srcs[0], dst)?;
            }
            SimtOp::Map { op, .. } => {
                for i in 0..dst.rows {
                    for j in 0..dst.cols {
                        let v = op.apply(read_elem(kernel, data, cta, role, &srcs[0], i, j));
                        write_elem(kernel, data, cta, role, dst, i, j, v);
                    }
                }
            }
            SimtOp::Zip { op, .. } => {
                for i in 0..dst.rows {
                    for j in 0..dst.cols {
                        let v = op.apply(
                            read_elem(kernel, data, cta, role, &srcs[0], i, j),
                            read_elem(kernel, data, cta, role, &srcs[1], i, j),
                        );
                        write_elem(kernel, data, cta, role, dst, i, j, v);
                    }
                }
            }
            SimtOp::RowReduce {
                op, include_dst, ..
            } => {
                for i in 0..dst.rows {
                    let mut acc = if *include_dst {
                        read_elem(kernel, data, cta, role, dst, i, 0)
                    } else {
                        op.identity()
                    };
                    for j in 0..srcs[0].cols {
                        acc = op.apply(acc, read_elem(kernel, data, cta, role, &srcs[0], i, j));
                    }
                    write_elem(kernel, data, cta, role, dst, i, 0, acc);
                }
            }
            SimtOp::RowZip { op, .. } => {
                for i in 0..dst.rows {
                    let r = read_elem(kernel, data, cta, role, &srcs[1], i, 0);
                    for j in 0..dst.cols {
                        let v = op.apply(read_elem(kernel, data, cta, role, &srcs[0], i, j), r);
                        write_elem(kernel, data, cta, role, dst, i, j, v);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, RedOp, SimtOp, UnOp};
    use crate::kernel::{Role, RoleKind};
    use crate::mem::{FragDecl, ParamDecl, Slice, SmemDecl};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DTYPES: [DType; 3] = [DType::F16, DType::BF16, DType::F32];

    /// A kernel whose declarations (not roles) drive the applies: one
    /// parameter, one multi-stage shared region, and three fragments per
    /// role, with randomized shapes and dtypes.
    fn random_kernel(rng: &mut StdRng) -> Kernel {
        let dims = |rng: &mut StdRng| (rng.gen_range(1..10usize), rng.gen_range(1..10usize));
        let (pr, pc) = dims(rng);
        let (sr, sc) = dims(rng);
        let frags = (0..3)
            .map(|i| {
                let (fr, fc) = dims(rng);
                FragDecl {
                    name: format!("f{i}"),
                    rows: fr,
                    cols: fc,
                }
            })
            .collect();
        Kernel {
            name: "apply-oracle".into(),
            grid: [1, 1, 1],
            params: vec![ParamDecl {
                name: "p".into(),
                rows: pr,
                cols: pc,
                dtype: DTYPES[rng.gen_range(0..3)],
            }],
            smem: vec![SmemDecl {
                name: "s".into(),
                rows: sr,
                cols: sc,
                dtype: DTYPES[rng.gen_range(0..3)],
                stages: rng.gen_range(1..4),
            }],
            frags,
            mbars: Vec::new(),
            roles: vec![Role {
                kind: RoleKind::Compute(0),
                body: Vec::new(),
            }],
            persistent: false,
        }
    }

    /// Randomly filled functional state for `kernel` (one CTA, one role).
    fn random_data(kernel: &Kernel, rng: &mut StdRng) -> FuncData {
        let fill = |n: usize, rng: &mut StdRng| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
        };
        let params = kernel
            .params
            .iter()
            .map(|p| {
                // Quantized contents, as stores through the engine leave them.
                Tensor::from_data(p.dtype, &[p.rows, p.cols], fill(p.rows * p.cols, rng))
                    .expect("shape matches data")
            })
            .collect();
        let smem = vec![kernel
            .smem
            .iter()
            .map(|d| fill(d.rows * d.cols * d.stages, rng))
            .collect()];
        let frags = vec![vec![kernel
            .frags
            .iter()
            .map(|f| fill(f.rows * f.cols, rng))
            .collect()]];
        FuncData {
            params,
            smem,
            frags,
        }
    }

    /// A random in-bounds `rows x cols` slice of the memory object.
    fn random_slice(
        kernel: &Kernel,
        mem: MemRef,
        rows: usize,
        cols: usize,
        rng: &mut StdRng,
    ) -> Option<RSlice> {
        let (pr, pc, stages) = match mem {
            MemRef::Param(i) => (kernel.params[i].rows, kernel.params[i].cols, 1),
            MemRef::Smem(i) => {
                let d = &kernel.smem[i];
                (d.rows, d.cols, d.stages)
            }
            MemRef::Frag(i) => (kernel.frags[i].rows, kernel.frags[i].cols, 1),
        };
        if rows > pr || cols > pc {
            return None;
        }
        Some(RSlice {
            mem,
            stage: rng.gen_range(0..stages),
            row0: rng.gen_range(0..pr - rows + 1),
            col0: rng.gen_range(0..pc - cols + 1),
            rows,
            cols,
        })
    }

    fn assert_bitwise_equal(fast: &FuncData, oracle: &FuncData, what: &str) {
        for (i, (a, b)) in fast.params.iter().zip(&oracle.params).enumerate() {
            for (j, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: param {i} elem {j}");
            }
        }
        for (a, b) in fast.smem[0].iter().zip(&oracle.smem[0]) {
            for (j, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: smem elem {j}");
            }
        }
        for (a, b) in fast.frags[0][0].iter().zip(&oracle.frags[0][0]) {
            for (j, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: frag elem {j}");
            }
        }
    }

    fn clone_data(d: &FuncData) -> FuncData {
        FuncData {
            params: d.params.clone(),
            smem: d.smem.clone(),
            frags: d.frags.clone(),
        }
    }

    fn random_mem(kernel: &Kernel, rng: &mut StdRng) -> MemRef {
        match rng.gen_range(0..3) {
            0 => MemRef::Param(0),
            1 => MemRef::Smem(0),
            _ => MemRef::Frag(rng.gen_range(0..kernel.frags.len())),
        }
    }

    #[test]
    fn copy_matches_scalar_oracle() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut cases = 0;
        while cases < 300 {
            let kernel = random_kernel(&mut rng);
            let data = random_data(&kernel, &mut rng);
            // Pick a destination slice, then any source slice with the
            // same element count (scalar copy streams the source
            // linearly, so shapes may differ).
            let (dm, sm) = (random_mem(&kernel, &mut rng), random_mem(&kernel, &mut rng));
            if sm == dm {
                continue; // overlapping same-object copies are not emitted
            }
            let Some(dst) = random_slice(
                &kernel,
                dm,
                rng.gen_range(1..5),
                rng.gen_range(1..5),
                &mut rng,
            ) else {
                continue;
            };
            let n = dst.rows * dst.cols;
            // Try a handful of factorizations of n for the source shape.
            let (sr, sc) = (1..=n)
                .filter(|c| n % c == 0)
                .map(|c| (n / c, c))
                .nth(rng.gen_range(0..4).min(n - 1))
                .unwrap_or((n, 1));
            let Some(src) = random_slice(&kernel, sm, sr, sc, &mut rng) else {
                continue;
            };
            let mut fast = clone_data(&data);
            let mut oracle = clone_data(&data);
            let mut scratch = Scratch::default();
            copy(&kernel, &mut fast, &mut scratch, 0, 0, &src, &dst).unwrap();
            scalar::copy(&kernel, &mut oracle, 0, 0, &src, &dst).unwrap();
            assert_bitwise_equal(&fast, &oracle, "copy");
            cases += 1;
        }
    }

    #[test]
    fn wgmma_matches_scalar_oracle() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut cases = 0;
        while cases < 300 {
            let kernel = random_kernel(&mut rng);
            let data = random_data(&kernel, &mut rng);
            let (m, n, k) = (
                rng.gen_range(1..8),
                rng.gen_range(1..20),
                rng.gen_range(1..8),
            );
            let transpose_b = rng.gen_bool(0.5);
            let accumulate = rng.gen_bool(0.5);
            let am = random_mem(&kernel, &mut rng);
            let bm = random_mem(&kernel, &mut rng);
            let cm = random_mem(&kernel, &mut rng);
            // The accumulator must not alias an operand's buffer (the
            // validator's register-accumulator rule guarantees this for
            // compiled kernels; the scalar oracle interleaves otherwise).
            if cm == am || cm == bm {
                continue;
            }
            let Some(a) = random_slice(&kernel, am, m, k, &mut rng) else {
                continue;
            };
            let (br, bc) = if transpose_b { (n, k) } else { (k, n) };
            let Some(b) = random_slice(&kernel, bm, br, bc, &mut rng) else {
                continue;
            };
            let Some(acc) = random_slice(&kernel, cm, m, n, &mut rng) else {
                continue;
            };
            let mut fast = clone_data(&data);
            let mut oracle = clone_data(&data);
            let mut scratch = Scratch::default();
            wgmma(
                &kernel,
                &mut fast,
                &mut scratch,
                0,
                0,
                &a,
                &b,
                &acc,
                accumulate,
                transpose_b,
            )
            .unwrap();
            scalar::wgmma(
                &kernel,
                &mut oracle,
                0,
                0,
                &a,
                &b,
                &acc,
                accumulate,
                transpose_b,
            )
            .unwrap();
            assert_bitwise_equal(&fast, &oracle, "wgmma");
            cases += 1;
        }
    }

    #[test]
    fn wgmma_rejects_shape_mismatch_like_the_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        let kernel = random_kernel(&mut rng);
        let mut data = random_data(&kernel, &mut rng);
        let mut scratch = Scratch::default();
        let slice = |rows, cols| RSlice {
            mem: MemRef::Frag(0),
            stage: 0,
            row0: 0,
            col0: 0,
            rows,
            cols,
        };
        let err = wgmma(
            &kernel,
            &mut data,
            &mut scratch,
            0,
            0,
            &slice(1, 2),
            &slice(3, 1),
            &slice(1, 1),
            false,
            false,
        );
        assert!(matches!(err, Err(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn simt_matches_scalar_oracle() {
        let mut rng = StdRng::seed_from_u64(0xABAD_1DEA);
        let mut cases = 0;
        while cases < 400 {
            let kernel = random_kernel(&mut rng);
            let data = random_data(&kernel, &mut rng);
            let (rows, cols) = (rng.gen_range(1..6), rng.gen_range(1..6));
            let dm = random_mem(&kernel, &mut rng);
            let Some(dst) = random_slice(&kernel, dm, rows, cols, &mut rng) else {
                continue;
            };
            // Sources either live elsewhere or alias the destination
            // slice exactly (the in-place RowZip/Map the compiler emits).
            let source = |rng: &mut StdRng, rows: usize, cols: usize| -> Option<RSlice> {
                if rng.gen_bool(0.25) && rows == dst.rows && cols == dst.cols {
                    return Some(dst.clone());
                }
                let sm = random_mem(&kernel, rng);
                if sm == dm {
                    return None;
                }
                random_slice(&kernel, sm, rows, cols, rng)
            };
            // Dummy embedded slices: the applies operate on the resolved
            // `srcs`/`dst` slices, not the op's own (unresolved) ones.
            let ph = || Slice::frag(0);
            let (op, srcs): (SimtOp, Vec<RSlice>) = match rng.gen_range(0..5) {
                0 => (
                    SimtOp::Fill {
                        dst: ph(),
                        value: rng.gen_range(-2.0..2.0),
                    },
                    Vec::new(),
                ),
                1 => {
                    let Some(s) = source(&mut rng, rows, cols) else {
                        continue;
                    };
                    (
                        SimtOp::Map {
                            op: [UnOp::Exp, UnOp::Neg, UnOp::Recip, UnOp::Scale(1.5)]
                                [rng.gen_range(0..4)],
                            src: ph(),
                            dst: ph(),
                        },
                        vec![s],
                    )
                }
                2 => {
                    let (Some(s0), Some(s1)) =
                        (source(&mut rng, rows, cols), source(&mut rng, rows, cols))
                    else {
                        continue;
                    };
                    (
                        SimtOp::Zip {
                            op: [BinOp::Add, BinOp::Mul, BinOp::Max][rng.gen_range(0..3)],
                            a: ph(),
                            b: ph(),
                            dst: ph(),
                        },
                        vec![s0, s1],
                    )
                }
                3 => {
                    if cols != 1 {
                        continue; // reductions write a column vector
                    }
                    let src_cols = rng.gen_range(1..6);
                    let Some(s) = source(&mut rng, rows, src_cols) else {
                        continue;
                    };
                    (
                        SimtOp::RowReduce {
                            op: [RedOp::Sum, RedOp::Max][rng.gen_range(0..2)],
                            src: ph(),
                            dst: ph(),
                            include_dst: rng.gen_bool(0.5),
                        },
                        vec![s],
                    )
                }
                _ => {
                    let (Some(s0), Some(s1)) =
                        (source(&mut rng, rows, cols), source(&mut rng, rows, 1))
                    else {
                        continue;
                    };
                    (
                        SimtOp::RowZip {
                            op: [BinOp::Mul, BinOp::Sub, BinOp::Div][rng.gen_range(0..3)],
                            src: ph(),
                            row: ph(),
                            dst: ph(),
                        },
                        vec![s0, s1],
                    )
                }
            };
            let mut fast = clone_data(&data);
            let mut oracle = clone_data(&data);
            let mut scratch = Scratch::default();
            simt(&kernel, &mut fast, &mut scratch, 0, 0, &op, &srcs, &dst).unwrap();
            scalar::simt(&kernel, &mut oracle, 0, 0, &op, &srcs, &dst).unwrap();
            assert_bitwise_equal(&fast, &oracle, "simt");
            cases += 1;
        }
    }
}
