//! Integer expression mini-language for device programs.
//!
//! Tile offsets, pipeline-stage indices and loop trip counts in a
//! [`crate::Kernel`] are expressions over block indices and loop variables,
//! evaluated per CTA / per iteration by the engine. Expressions are built
//! with ordinary Rust operators:
//!
//! ```
//! use cypress_sim::expr::Expr;
//!
//! let e = (Expr::block_x() * 128 + Expr::var(0)) % 3;
//! ```

use std::fmt;
use std::ops;

/// An integer expression evaluated against an [`Env`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Loop variable, identified by the kernel-unique id used in
    /// [`crate::Instr::Loop`].
    Var(usize),
    /// CTA index along x.
    BlockX,
    /// CTA index along y.
    BlockY,
    /// CTA index along z.
    BlockZ,
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Euclidean remainder.
    Mod(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Literal constant.
    #[must_use]
    pub fn lit(v: i64) -> Self {
        Expr::Lit(v)
    }

    /// Loop variable with id `id`.
    #[must_use]
    pub fn var(id: usize) -> Self {
        Expr::Var(id)
    }

    /// CTA x index.
    #[must_use]
    pub fn block_x() -> Self {
        Expr::BlockX
    }

    /// CTA y index.
    #[must_use]
    pub fn block_y() -> Self {
        Expr::BlockY
    }

    /// CTA z index (batch dimension in batched kernels).
    #[must_use]
    pub fn block_z() -> Self {
        Expr::BlockZ
    }

    /// Evaluate against `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for unbound loop variables or division by zero.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        match self {
            Expr::Lit(v) => Ok(*v),
            Expr::Var(id) => env.var(*id).ok_or(EvalError::UnboundVar(*id)),
            Expr::BlockX => Ok(env.block[0]),
            Expr::BlockY => Ok(env.block[1]),
            Expr::BlockZ => Ok(env.block[2]),
            Expr::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            Expr::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
            Expr::Mul(a, b) => Ok(a.eval(env)? * b.eval(env)?),
            Expr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.eval(env)?.div_euclid(d))
            }
            Expr::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.eval(env)?.rem_euclid(d))
            }
        }
    }

    /// `true` if the expression references any loop variable (used by the
    /// engine's static pre-pass, which requires launch-constant trip counts).
    #[must_use]
    pub fn references_vars(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::BlockX | Expr::BlockY | Expr::BlockZ => false,
            Expr::Var(_) => true,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => a.references_vars() || b.references_vars(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Lit(v)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Expr {
        Expr::Lit(v as i64)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::Lit(i64::from(v))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl<R: Into<Expr>> ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);
impl_binop!(Div, div, Div);
impl_binop!(Rem, rem, Mod);

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(id) => write!(f, "i{id}"),
            Expr::BlockX => write!(f, "bx"),
            Expr::BlockY => write!(f, "by"),
            Expr::BlockZ => write!(f, "bz"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
        }
    }
}

/// A boolean condition for [`crate::Instr::If`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a >= b`.
    Ge(Expr, Expr),
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a == b`.
    Eq(Expr, Expr),
}

impl Cond {
    /// Evaluate against `env`.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the operand expressions.
    pub fn eval(&self, env: &Env) -> Result<bool, EvalError> {
        Ok(match self {
            Cond::Ge(a, b) => a.eval(env)? >= b.eval(env)?,
            Cond::Lt(a, b) => a.eval(env)? < b.eval(env)?,
            Cond::Eq(a, b) => a.eval(env)? == b.eval(env)?,
        })
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Ge(a, b) => write!(f, "{a} >= {b}"),
            Cond::Lt(a, b) => write!(f, "{a} < {b}"),
            Cond::Eq(a, b) => write!(f, "{a} == {b}"),
        }
    }
}

/// Evaluation environment: the CTA's block indices plus bound loop variables.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// `[bx, by, bz]`.
    pub block: [i64; 3],
    vars: Vec<Option<i64>>,
}

impl Env {
    /// Environment for the CTA at `block` with no loop variables bound.
    #[must_use]
    pub fn for_block(block: [i64; 3]) -> Self {
        Env {
            block,
            vars: Vec::new(),
        }
    }

    /// Bind loop variable `id` to `value` (shadowing any previous binding).
    pub fn bind(&mut self, id: usize, value: i64) {
        if self.vars.len() <= id {
            self.vars.resize(id + 1, None);
        }
        self.vars[id] = Some(value);
    }

    /// Remove the binding for `id`.
    pub fn unbind(&mut self, id: usize) {
        if let Some(slot) = self.vars.get_mut(id) {
            *slot = None;
        }
    }

    /// The value bound to loop variable `id`, if any.
    #[must_use]
    pub fn var(&self, id: usize) -> Option<i64> {
        self.vars.get(id).copied().flatten()
    }
}

/// Expression evaluation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// A loop variable was referenced outside its loop.
    UnboundVar(usize),
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(id) => write!(f, "unbound loop variable i{id}"),
            EvalError::DivisionByZero => write!(f, "division by zero in index expression"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let env = Env::for_block([2, 3, 0]);
        let e = (Expr::block_x() * 128 + Expr::block_y()) % 5;
        assert_eq!(e.eval(&env).unwrap(), (2 * 128 + 3) % 5);
    }

    #[test]
    fn loop_vars_bind_and_unbind() {
        let mut env = Env::for_block([0, 0, 0]);
        let e = Expr::var(1) + 1;
        assert_eq!(e.eval(&env), Err(EvalError::UnboundVar(1)));
        env.bind(1, 41);
        assert_eq!(e.eval(&env).unwrap(), 42);
        env.unbind(1);
        assert_eq!(e.eval(&env), Err(EvalError::UnboundVar(1)));
    }

    #[test]
    fn division_by_zero_detected() {
        let env = Env::default();
        assert_eq!(
            (Expr::lit(1) / 0).eval(&env),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            (Expr::lit(1) % 0).eval(&env),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn references_vars() {
        assert!(!(Expr::block_x() * 4).references_vars());
        assert!((Expr::var(0) + 1).references_vars());
    }

    #[test]
    fn conditions() {
        let mut env = Env::default();
        env.bind(0, 3);
        assert!(Cond::Ge(Expr::var(0), Expr::lit(3)).eval(&env).unwrap());
        assert!(Cond::Lt(Expr::var(0), Expr::lit(4)).eval(&env).unwrap());
        assert!(Cond::Eq(Expr::var(0), Expr::lit(3)).eval(&env).unwrap());
        assert!(!Cond::Eq(Expr::var(0), Expr::lit(2)).eval(&env).unwrap());
    }

    #[test]
    fn display_round_trip_shape() {
        let e = (Expr::block_x() + 1) * Expr::var(2);
        assert_eq!(e.to_string(), "((bx + 1) * i2)");
        assert_eq!(Cond::Ge(Expr::var(0), Expr::lit(3)).to_string(), "i0 >= 3");
    }

    #[test]
    fn euclidean_semantics() {
        let env = Env::default();
        assert_eq!((Expr::lit(-1) % 3).eval(&env).unwrap(), 2);
        assert_eq!((Expr::lit(-4) / 3).eval(&env).unwrap(), -2);
    }
}
