//! Flat bytecode for the execution engine.
//!
//! Every launch of a kernel used to re-walk the instruction tree produced
//! by [`crate::flatten`]: each slice origin re-evaluated its [`Expr`]
//! tree, each device operation re-derived its byte and FLOP quantities,
//! and each loop header re-interpreted its trip-count expression — per
//! CTA, per iteration. [`lower`] performs that work **once per compiled
//! kernel**, producing a [`Program`]: a flat instruction stream with
//!
//! - index arithmetic compiled to a small register machine (`IdxOp`
//!   preludes over virtual `i64` registers, constant-folded and
//!   common-subexpression-eliminated per instruction),
//! - slice bounds (`prows`/`pcols`/`stages`) resolved from the kernel's
//!   declarations at lowering time,
//! - transfer bytes, WGMMA FLOPs and SIMT cost factors pre-computed with
//!   overflow-checked arithmetic.
//!
//! The engine's dispatch loop then executes bytecode positions one-to-one
//! with the walked program — same program counters, same evaluation
//! order, same error messages — so a bytecode run is **bit-identical** to
//! an IR-walk run in both data and simulated time. That contract is
//! pinned by the three-way differential suites (scalar oracle vs fast
//! IR-walk vs bytecode) and by the benchmark figures, which must
//! regenerate bit-identically.
//!
//! Index registers use wrapping arithmetic (the VM never panics on
//! overflow); division still reports [`EvalError::DivisionByZero`]
//! exactly where the tree walk would.

use std::collections::HashMap;

use crate::error::SimError;
use crate::expr::{Cond, Env, EvalError, Expr};
use crate::flatten::{flatten, Flat};
use crate::instr::{Instr, SimtOp};
use crate::kernel::Kernel;
use crate::mem::{MemRef, Slice, Space};

/// Operand of an index instruction: an immediate, a block index, a loop
/// variable read from the executor's environment, or a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Scalar {
    /// Constant, folded at lowering time.
    Imm(i64),
    /// Block index component (0 = x, 1 = y, 2 = z).
    Block(u8),
    /// Loop variable id, read through the executor's [`Env`] so unbound
    /// uses fail exactly like the tree walk.
    Var(usize),
    /// Virtual register written by an earlier [`IdxOp`] of the same
    /// instruction.
    Reg(u32),
}

/// One register-machine index operation. Arithmetic wraps (the walk's
/// release-mode behavior, made unconditional so the VM cannot panic);
/// division and remainder use Euclidean semantics like [`Expr::eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdxOp {
    /// `dst = a + b`.
    Add { dst: u32, a: Scalar, b: Scalar },
    /// `dst = a - b`.
    Sub { dst: u32, a: Scalar, b: Scalar },
    /// `dst = a * b`.
    Mul { dst: u32, a: Scalar, b: Scalar },
    /// `dst = a.div_euclid(b)`; `b == 0` raises division-by-zero.
    Div { dst: u32, a: Scalar, b: Scalar },
    /// `dst = a.rem_euclid(b)`; `b == 0` raises division-by-zero.
    Mod { dst: u32, a: Scalar, b: Scalar },
    /// Raise division-by-zero if `b == 0`. Emitted between a divisor's
    /// operations and a dividend's, replicating the tree walk's
    /// divisor-first evaluation order so error precedence is identical.
    CheckDiv { b: Scalar },
}

/// A lowered scalar expression: a prelude of index operations plus the
/// operand holding the final value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SVal {
    pub(crate) pre: Vec<IdxOp>,
    pub(crate) val: Scalar,
}

/// Comparison kind of a lowered branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CondKind {
    /// `a >= b`.
    Ge,
    /// `a < b`.
    Lt,
    /// `a == b`.
    Eq,
}

/// A lowered branch condition (operands evaluated left then right, like
/// [`Cond::eval`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BcCond {
    pub(crate) pre: Vec<IdxOp>,
    pub(crate) kind: CondKind,
    pub(crate) a: Scalar,
    pub(crate) b: Scalar,
}

/// A lowered slice: origin expressions compiled to a prelude + operands,
/// and the owning object's bounds baked in from the kernel declarations.
///
/// Each slice carries its **own** prelude (rather than one merged
/// per-instruction prelude) because the walk resolves operand slices one
/// at a time — evaluating, sign-checking and bounds-checking a source
/// completely before touching the destination's expressions. Keeping that
/// granularity preserves which error fires first when several would.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BcSlice {
    pub(crate) mem: MemRef,
    pub(crate) pre: Vec<IdxOp>,
    pub(crate) stage: Scalar,
    pub(crate) row0: Scalar,
    pub(crate) col0: Scalar,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Row bound of the owning object.
    pub(crate) prows: usize,
    /// Column bound of the owning object.
    pub(crate) pcols: usize,
    /// Stage bound of the owning object (1 outside shared memory).
    pub(crate) stages: usize,
}

/// Pre-computed cost factors of a SIMT operation, mirroring what the
/// walk's `simt_cost` derives from resolved slices (all of it depends
/// only on static extents and address spaces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SimtCost {
    pub(crate) elems: f64,
    pub(crate) sfu: bool,
    pub(crate) smem_bytes: f64,
    pub(crate) gl_read: f64,
    pub(crate) gl_write: f64,
}

/// A lowered device operation with its quantities pre-computed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BcOp {
    /// TMA global→shared copy arriving `bar` on completion.
    TmaLoad {
        src: BcSlice,
        dst: BcSlice,
        bar: usize,
        bytes: f64,
    },
    /// `cp.async` global→shared copy arriving `bar` on completion.
    CpAsyncLoad {
        src: BcSlice,
        dst: BcSlice,
        bar: usize,
        bytes: f64,
    },
    /// TMA shared→global copy tracked by [`BcOp::TmaStoreWait`].
    TmaStore {
        src: BcSlice,
        dst: BcSlice,
        bytes: f64,
    },
    /// Block until outstanding TMA stores drain.
    TmaStoreWait,
    /// Arrive mbarrier `bar` once.
    MbarArrive { bar: usize },
    /// Wait for the next phase of mbarrier `bar`.
    MbarWait { bar: usize },
    /// Asynchronous Tensor Core MMA with pre-computed FLOPs and operand
    /// shared-memory traffic.
    Wgmma {
        a: BcSlice,
        b: BcSlice,
        acc: BcSlice,
        accumulate: bool,
        transpose_b: bool,
        flops: f64,
        smem_bytes: f64,
    },
    /// Wait until at most `pending` WGMMAs remain outstanding.
    WgmmaWait { pending: usize },
    /// Bulk SIMT operation. `op` is an owned clone so the engine's
    /// deferred apply can borrow it for the program's lifetime.
    Simt {
        op: SimtOp,
        srcs: Vec<BcSlice>,
        dst: BcSlice,
        cost: SimtCost,
    },
    /// Named-barrier arrive-and-wait.
    NamedBarrier { id: usize, parties: usize },
    /// CTA-wide barrier.
    Syncthreads,
}

/// One bytecode position. Mirrors [`Flat`] one-to-one — same indices,
/// same jump targets — so program counters (and therefore error contexts
/// and deadlock descriptions) are identical across frontends.
///
/// Real instruction streams are dominated by [`BcInstr::Op`], so boxing
/// the large variant would put a pointer chase in the engine's hot
/// dispatch loop to shrink the few control-flow positions between ops.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BcInstr {
    /// A device operation.
    Op(BcOp),
    /// Loop header; `end` is the index just past the matching
    /// [`BcInstr::LoopEnd`].
    LoopStart { var: usize, count: SVal, end: usize },
    /// Loop back-edge (targets live in the executor's loop stack).
    LoopEnd,
    /// Conditional branch; `else_target` is taken when false.
    Branch { cond: BcCond, else_target: usize },
    /// Unconditional jump.
    Jump(usize),
    /// End of the role's program.
    End,
}

/// A kernel's functional body lowered once into flat bytecode.
///
/// Produced by [`lower`], cached by the runtime alongside the compiled
/// kernel, and executed by `Simulator::run_functional_lowered` /
/// `Simulator::run_timing_lowered`. Executing a program against a kernel
/// other than the one it was lowered from is rejected with a typed
/// [`SimError::Internal`] (a structural hash of the kernel is stored at
/// lowering time).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) roles: Vec<Vec<BcInstr>>,
    pub(crate) num_regs: usize,
    pub(crate) shape_hash: u64,
}

impl Program {
    /// Total bytecode positions across all role programs.
    #[must_use]
    pub fn num_instructions(&self) -> usize {
        self.roles.iter().map(Vec::len).sum()
    }

    /// Virtual `i64` index registers the dispatch loop needs.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.num_regs
    }
}

/// FNV-1a over the kernel's debug representation: a cheap structural
/// fingerprint tying a [`Program`] to the kernel it was lowered from.
pub(crate) fn kernel_shape_hash(kernel: &Kernel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{kernel:?}").as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lower `kernel`'s role bodies into a flat [`Program`].
///
/// # Errors
///
/// Returns [`SimError::Internal`] if a slice references an undeclared
/// memory object or a pre-computed quantity overflows `usize` — typed
/// errors instead of the index/overflow panics unchecked lowering would
/// risk.
pub fn lower(kernel: &Kernel) -> Result<Program, SimError> {
    let mut ctx = Lower {
        kernel,
        cse: HashMap::new(),
        next_reg: 0,
        max_regs: 0,
    };
    let roles = kernel
        .roles
        .iter()
        .map(|r| {
            flatten(&r.body)
                .iter()
                .map(|f| ctx.lower_flat(f))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Program {
        roles,
        num_regs: ctx.max_regs as usize,
        shape_hash: kernel_shape_hash(kernel),
    })
}

#[derive(Clone, Copy)]
enum ArithKind {
    Add,
    Sub,
    Mul,
}

struct Lower<'a> {
    kernel: &'a Kernel,
    /// Per-instruction value numbering: an expression already lowered in
    /// this instruction reuses its operand instead of re-emitting ops.
    cse: HashMap<Expr, Scalar>,
    next_reg: u32,
    max_regs: u32,
}

impl Lower<'_> {
    /// Reset the value-numbering scope; registers are reused across
    /// instructions (each instruction's prelude fully defines the
    /// registers it reads).
    fn begin_instr(&mut self) {
        self.cse.clear();
        self.next_reg = 0;
    }

    fn alloc_reg(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_regs = self.max_regs.max(self.next_reg);
        r
    }

    fn lower_flat(&mut self, f: &Flat<'_>) -> Result<BcInstr, SimError> {
        Ok(match f {
            Flat::Op(instr) => BcInstr::Op(self.lower_op(instr)?),
            Flat::LoopStart { var, count, end } => {
                self.begin_instr();
                let mut pre = Vec::new();
                let val = self.emit(count, &mut pre);
                BcInstr::LoopStart {
                    var: *var,
                    count: SVal { pre, val },
                    end: *end,
                }
            }
            Flat::LoopEnd { .. } => BcInstr::LoopEnd,
            Flat::Branch { cond, else_target } => {
                self.begin_instr();
                let mut pre = Vec::new();
                let (kind, a, b) = match cond {
                    Cond::Ge(x, y) => {
                        let a = self.emit(x, &mut pre);
                        let b = self.emit(y, &mut pre);
                        (CondKind::Ge, a, b)
                    }
                    Cond::Lt(x, y) => {
                        let a = self.emit(x, &mut pre);
                        let b = self.emit(y, &mut pre);
                        (CondKind::Lt, a, b)
                    }
                    Cond::Eq(x, y) => {
                        let a = self.emit(x, &mut pre);
                        let b = self.emit(y, &mut pre);
                        (CondKind::Eq, a, b)
                    }
                };
                BcInstr::Branch {
                    cond: BcCond { pre, kind, a, b },
                    else_target: *else_target,
                }
            }
            Flat::Jump(t) => BcInstr::Jump(*t),
            Flat::End => BcInstr::End,
        })
    }

    fn lower_op(&mut self, instr: &Instr) -> Result<BcOp, SimError> {
        self.begin_instr();
        Ok(match instr {
            Instr::TmaLoad { src, dst, bar } => {
                let src = self.lower_slice(src)?;
                let dst = self.lower_slice(dst)?;
                let bytes = self.slice_bytes(&src)?;
                BcOp::TmaLoad {
                    src,
                    dst,
                    bar: *bar,
                    bytes,
                }
            }
            Instr::CpAsyncLoad { src, dst, bar } => {
                let src = self.lower_slice(src)?;
                let dst = self.lower_slice(dst)?;
                let bytes = self.slice_bytes(&src)?;
                BcOp::CpAsyncLoad {
                    src,
                    dst,
                    bar: *bar,
                    bytes,
                }
            }
            Instr::TmaStore { src, dst } => {
                let src = self.lower_slice(src)?;
                let dst = self.lower_slice(dst)?;
                let bytes = self.slice_bytes(&src)?;
                BcOp::TmaStore { src, dst, bytes }
            }
            Instr::TmaStoreWait => BcOp::TmaStoreWait,
            Instr::MbarArrive { bar } => BcOp::MbarArrive { bar: *bar },
            Instr::MbarWait { bar } => BcOp::MbarWait { bar: *bar },
            Instr::Wgmma {
                a,
                b,
                acc,
                accumulate,
                transpose_b,
            } => {
                let a = self.lower_slice(a)?;
                let b = self.lower_slice(b)?;
                let acc = self.lower_slice(acc)?;
                let a_elems = a.rows.checked_mul(a.cols).ok_or_else(|| overflow(&a))?;
                // Same expression shape as the walk: 2 * |A| * N, left to
                // right in f64, so the value is bit-identical.
                let flops = 2.0 * a_elems as f64 * acc.cols as f64;
                let mut smem_bytes = self.slice_bytes(&b)?;
                if a.mem.space() == Space::Shared {
                    smem_bytes += self.slice_bytes(&a)?;
                }
                BcOp::Wgmma {
                    a,
                    b,
                    acc,
                    accumulate: *accumulate,
                    transpose_b: *transpose_b,
                    flops,
                    smem_bytes,
                }
            }
            Instr::WgmmaWait { pending } => BcOp::WgmmaWait { pending: *pending },
            Instr::Simt(op) => {
                let mut srcs = Vec::new();
                for s in op.sources() {
                    srcs.push(self.lower_slice(s)?);
                }
                let dst = self.lower_slice(op.dst())?;
                let cost = self.simt_cost(op, &srcs, &dst)?;
                BcOp::Simt {
                    op: op.clone(),
                    srcs,
                    dst,
                    cost,
                }
            }
            Instr::NamedBarrier { id, parties } => BcOp::NamedBarrier {
                id: *id,
                parties: *parties,
            },
            Instr::Syncthreads => BcOp::Syncthreads,
            Instr::Loop { .. } | Instr::If { .. } => {
                return Err(SimError::Internal {
                    what: "control flow reached bytecode lowering unflattened".into(),
                })
            }
        })
    }

    fn lower_slice(&mut self, s: &Slice) -> Result<BcSlice, SimError> {
        let undeclared = || SimError::Internal {
            what: format!("bytecode lowering: slice references undeclared {:?}", s.mem),
        };
        let (prows, pcols, stages) = match s.mem {
            MemRef::Param(i) => {
                let p = self.kernel.params.get(i).ok_or_else(undeclared)?;
                (p.rows, p.cols, 1)
            }
            MemRef::Smem(i) => {
                let d = self.kernel.smem.get(i).ok_or_else(undeclared)?;
                (d.rows, d.cols, d.stages)
            }
            MemRef::Frag(i) => {
                let f = self.kernel.frags.get(i).ok_or_else(undeclared)?;
                (f.rows, f.cols, 1)
            }
        };
        let mut pre = Vec::new();
        // Same order the walk resolves in: stage, then row, then column.
        let stage = self.emit(&s.stage, &mut pre);
        let row0 = self.emit(&s.row0, &mut pre);
        let col0 = self.emit(&s.col0, &mut pre);
        Ok(BcSlice {
            mem: s.mem,
            pre,
            stage,
            row0,
            col0,
            rows: s.rows,
            cols: s.cols,
            prows,
            pcols,
            stages,
        })
    }

    fn slice_bytes(&self, s: &BcSlice) -> Result<f64, SimError> {
        let elem = match s.mem {
            MemRef::Param(i) => self.kernel.params[i].dtype.size_bytes(),
            MemRef::Smem(i) => self.kernel.smem[i].dtype.size_bytes(),
            MemRef::Frag(_) => 4,
        };
        s.rows
            .checked_mul(s.cols)
            .and_then(|e| e.checked_mul(elem))
            .map(|b| b as f64)
            .ok_or_else(|| overflow(s))
    }

    fn slice_elems(&self, s: &BcSlice) -> Result<f64, SimError> {
        s.rows
            .checked_mul(s.cols)
            .map(|e| e as f64)
            .ok_or_else(|| overflow(s))
    }

    fn simt_cost(
        &self,
        op: &SimtOp,
        srcs: &[BcSlice],
        dst: &BcSlice,
    ) -> Result<SimtCost, SimError> {
        let mut elems = self.slice_elems(dst)?;
        for s in srcs {
            elems = elems.max(self.slice_elems(s)?);
        }
        let mut smem_bytes = 0.0;
        let mut gl_read = 0.0;
        let mut gl_write = 0.0;
        for s in srcs {
            match s.mem.space() {
                Space::Shared => smem_bytes += self.slice_bytes(s)?,
                Space::Global => gl_read += self.slice_bytes(s)?,
                Space::Register => {}
            }
        }
        match dst.mem.space() {
            Space::Shared => smem_bytes += self.slice_bytes(dst)?,
            Space::Global => gl_write += self.slice_bytes(dst)?,
            Space::Register => {}
        }
        Ok(SimtCost {
            elems,
            sfu: op.uses_sfu(),
            smem_bytes,
            gl_read,
            gl_write,
        })
    }

    fn emit(&mut self, e: &Expr, pre: &mut Vec<IdxOp>) -> Scalar {
        if let Some(&s) = self.cse.get(e) {
            return s;
        }
        let s = match e {
            Expr::Lit(v) => Scalar::Imm(*v),
            Expr::Var(id) => Scalar::Var(*id),
            Expr::BlockX => Scalar::Block(0),
            Expr::BlockY => Scalar::Block(1),
            Expr::BlockZ => Scalar::Block(2),
            Expr::Add(a, b) => self.emit_arith(ArithKind::Add, a, b, pre),
            Expr::Sub(a, b) => self.emit_arith(ArithKind::Sub, a, b, pre),
            Expr::Mul(a, b) => self.emit_arith(ArithKind::Mul, a, b, pre),
            Expr::Div(a, b) => self.emit_divmod(false, a, b, pre),
            Expr::Mod(a, b) => self.emit_divmod(true, a, b, pre),
        };
        self.cse.insert(e.clone(), s);
        s
    }

    fn emit_arith(&mut self, kind: ArithKind, a: &Expr, b: &Expr, pre: &mut Vec<IdxOp>) -> Scalar {
        let sa = self.emit(a, pre);
        let sb = self.emit(b, pre);
        if let (Scalar::Imm(x), Scalar::Imm(y)) = (sa, sb) {
            // Fold only when exact: on overflow fall back to the runtime
            // op (which wraps, the walk's release behavior).
            let folded = match kind {
                ArithKind::Add => x.checked_add(y),
                ArithKind::Sub => x.checked_sub(y),
                ArithKind::Mul => x.checked_mul(y),
            };
            if let Some(v) = folded {
                return Scalar::Imm(v);
            }
        }
        let dst = self.alloc_reg();
        pre.push(match kind {
            ArithKind::Add => IdxOp::Add { dst, a: sa, b: sb },
            ArithKind::Sub => IdxOp::Sub { dst, a: sa, b: sb },
            ArithKind::Mul => IdxOp::Mul { dst, a: sa, b: sb },
        });
        Scalar::Reg(dst)
    }

    fn emit_divmod(&mut self, is_mod: bool, a: &Expr, b: &Expr, pre: &mut Vec<IdxOp>) -> Scalar {
        // The walk evaluates the divisor first and zero-checks it before
        // touching the dividend; replicate that order so a zero divisor
        // outranks an unbound variable in the dividend.
        let sb = self.emit(b, pre);
        let statically_nonzero = matches!(sb, Scalar::Imm(d) if d != 0);
        if !statically_nonzero {
            pre.push(IdxOp::CheckDiv { b: sb });
        }
        let sa = self.emit(a, pre);
        if let (Scalar::Imm(x), Scalar::Imm(d)) = (sa, sb) {
            if d != 0 {
                let folded = if is_mod {
                    x.checked_rem_euclid(d)
                } else {
                    x.checked_div_euclid(d)
                };
                if let Some(v) = folded {
                    return Scalar::Imm(v);
                }
            }
        }
        let dst = self.alloc_reg();
        pre.push(if is_mod {
            IdxOp::Mod { dst, a: sa, b: sb }
        } else {
            IdxOp::Div { dst, a: sa, b: sb }
        });
        Scalar::Reg(dst)
    }
}

fn overflow(s: &BcSlice) -> SimError {
    SimError::Internal {
        what: format!(
            "byte size of a {:?} slice ({}x{}) overflows usize",
            s.mem, s.rows, s.cols
        ),
    }
}

/// Read one operand against the executor's environment and registers.
#[inline]
pub(crate) fn read_scalar(regs: &[i64], env: &Env, s: Scalar) -> Result<i64, EvalError> {
    match s {
        Scalar::Imm(v) => Ok(v),
        Scalar::Block(i) => Ok(env.block[usize::from(i)]),
        Scalar::Var(id) => env.var(id).ok_or(EvalError::UnboundVar(id)),
        Scalar::Reg(r) => Ok(regs[r as usize]),
    }
}

/// Run an index-operation prelude over `regs`. Arithmetic wraps; division
/// by zero and unbound variables surface as [`EvalError`] in the same
/// order the tree walk raises them.
pub(crate) fn run_pre(regs: &mut [i64], env: &Env, ops: &[IdxOp]) -> Result<(), EvalError> {
    for op in ops {
        match *op {
            IdxOp::Add { dst, a, b } => {
                let v = read_scalar(regs, env, a)?.wrapping_add(read_scalar(regs, env, b)?);
                regs[dst as usize] = v;
            }
            IdxOp::Sub { dst, a, b } => {
                let v = read_scalar(regs, env, a)?.wrapping_sub(read_scalar(regs, env, b)?);
                regs[dst as usize] = v;
            }
            IdxOp::Mul { dst, a, b } => {
                let v = read_scalar(regs, env, a)?.wrapping_mul(read_scalar(regs, env, b)?);
                regs[dst as usize] = v;
            }
            IdxOp::Div { dst, a, b } => {
                let d = read_scalar(regs, env, b)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                let n = read_scalar(regs, env, a)?;
                regs[dst as usize] = n.overflowing_div_euclid(d).0;
            }
            IdxOp::Mod { dst, a, b } => {
                let d = read_scalar(regs, env, b)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                let n = read_scalar(regs, env, a)?;
                regs[dst as usize] = n.overflowing_rem_euclid(d).0;
            }
            IdxOp::CheckDiv { b } => {
                if read_scalar(regs, env, b)? == 0 {
                    return Err(EvalError::DivisionByZero);
                }
            }
        }
    }
    Ok(())
}

/// Evaluate a lowered scalar expression.
pub(crate) fn eval_sval(regs: &mut [i64], env: &Env, s: &SVal) -> Result<i64, EvalError> {
    run_pre(regs, env, &s.pre)?;
    read_scalar(regs, env, s.val)
}

/// Evaluate a lowered branch condition.
pub(crate) fn eval_cond(regs: &mut [i64], env: &Env, c: &BcCond) -> Result<bool, EvalError> {
    run_pre(regs, env, &c.pre)?;
    let a = read_scalar(regs, env, c.a)?;
    let b = read_scalar(regs, env, c.b)?;
    Ok(match c.kind {
        CondKind::Ge => a >= b,
        CondKind::Lt => a < b,
        CondKind::Eq => a == b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lower one expression as an SVal (fresh instruction scope).
    fn lower_expr(kernel: &Kernel, e: &Expr) -> (SVal, usize) {
        let mut ctx = Lower {
            kernel,
            cse: HashMap::new(),
            next_reg: 0,
            max_regs: 0,
        };
        ctx.begin_instr();
        let mut pre = Vec::new();
        let val = ctx.emit(e, &mut pre);
        (SVal { pre, val }, ctx.max_regs as usize)
    }

    fn empty_kernel() -> Kernel {
        crate::KernelBuilder::new("k", [1, 1, 1]).build()
    }

    fn eval_both(e: &Expr, env: &Env) -> (Result<i64, EvalError>, Result<i64, EvalError>) {
        let kernel = empty_kernel();
        let (sval, regs) = lower_expr(&kernel, e);
        let mut r = vec![0i64; regs];
        (e.eval(env), eval_sval(&mut r, env, &sval))
    }

    #[test]
    fn vm_matches_tree_walk_on_arithmetic() {
        let mut env = Env::for_block([3, 5, 7]);
        env.bind(0, 11);
        let exprs = [
            Expr::block_x() * 128 + Expr::var(0),
            (Expr::block_y() + 1) * (Expr::block_z() - 2),
            (Expr::var(0) * 64 + Expr::block_x()) % 48,
            (Expr::var(0) + Expr::block_y()) / 3,
            Expr::lit(-4) / 3,
            Expr::lit(-1) % 3,
        ];
        for e in exprs {
            let (walk, vm) = eval_both(&e, &env);
            assert_eq!(walk, vm, "{e}");
        }
    }

    #[test]
    fn vm_matches_tree_walk_on_errors() {
        let env = Env::for_block([0, 0, 0]);
        // Unbound loop variable.
        let (walk, vm) = eval_both(&(Expr::var(3) + 1), &env);
        assert_eq!(walk, vm);
        assert_eq!(vm, Err(EvalError::UnboundVar(3)));
        // Division by a statically-zero divisor fires *before* the
        // unbound dividend is touched — same precedence as the walk.
        let (walk, vm) = eval_both(&(Expr::var(9) / 0), &env);
        assert_eq!(walk, vm);
        assert_eq!(vm, Err(EvalError::DivisionByZero));
        // Runtime-zero divisor.
        let mut env = Env::for_block([0, 0, 0]);
        env.bind(0, 0);
        let (walk, vm) = eval_both(&(Expr::lit(7) / Expr::var(0)), &env);
        assert_eq!(walk, vm);
        assert_eq!(vm, Err(EvalError::DivisionByZero));
    }

    #[test]
    fn constants_fold_to_immediates() {
        let kernel = empty_kernel();
        let (sval, regs) = lower_expr(&kernel, &((Expr::lit(6) * 7) + Expr::lit(0)));
        assert_eq!(regs, 0, "pure-literal expression needs no registers");
        assert!(sval.pre.is_empty());
        assert_eq!(sval.val, Scalar::Imm(42));
    }

    #[test]
    fn common_subexpressions_are_numbered_once() {
        let kernel = empty_kernel();
        let shared = Expr::block_x() * 128 + Expr::var(0);
        let e = shared.clone() * 2 + shared % 3;
        let (sval, _) = lower_expr(&kernel, &e);
        // shared (2 ops), *2, %3 (CheckDiv folded: literal divisor), +.
        let muls = sval
            .pre
            .iter()
            .filter(|op| matches!(op, IdxOp::Mul { .. }))
            .count();
        assert_eq!(muls, 2, "bx*128 emitted once, *2 once: {:?}", sval.pre);
    }

    /// A small pipelined kernel exercising every control construct: a DMA
    /// role driving staged TMA loads in a loop, and a compute role with a
    /// branch, WGMMA, and SIMT tail.
    fn pipelined_kernel() -> Kernel {
        use crate::instr::{BinOp, UnOp};
        use crate::kernel::RoleKind;
        use cypress_tensor::DType;

        let mut b = crate::KernelBuilder::new("bc_test", [2, 1, 1]);
        let c = b.param("C", 64, 32, DType::F16);
        let a = b.param("A", 64, 32, DType::F16);
        let w = b.param("B", 32, 32, DType::F16);
        let sa = b.smem("sA", 32, 32, DType::F16, 2);
        let sb = b.smem("sB", 32, 32, DType::F16, 2);
        let acc = b.frag("acc", 32, 32);
        let ready = b.mbar(2);
        let k = b.fresh_var();
        b.role(
            RoleKind::Dma,
            vec![Instr::Loop {
                var: k,
                count: Expr::lit(2),
                body: vec![
                    Instr::TmaLoad {
                        src: Slice::param(a)
                            .at(Expr::block_x() * 32, Expr::var(k) * 16)
                            .extent(32, 16),
                        dst: Slice::smem(sa).stage(Expr::var(k) % 2).extent(32, 16),
                        bar: ready,
                    },
                    Instr::TmaLoad {
                        src: Slice::param(w).at(Expr::var(k) * 16, 0).extent(16, 32),
                        dst: Slice::smem(sb).stage(Expr::var(k) % 2).extent(16, 32),
                        bar: ready,
                    },
                ],
            }],
        );
        let j = b.fresh_var();
        b.role(
            RoleKind::Compute(0),
            vec![
                Instr::Simt(SimtOp::Fill {
                    dst: Slice::frag(acc).extent(32, 32),
                    value: 0.0,
                }),
                Instr::Loop {
                    var: j,
                    count: Expr::lit(2),
                    body: vec![
                        Instr::MbarWait { bar: ready },
                        Instr::If {
                            cond: Cond::Ge(Expr::var(j), Expr::lit(1)),
                            then_: vec![Instr::Simt(SimtOp::Map {
                                op: UnOp::Scale(0.5),
                                src: Slice::frag(acc).extent(32, 32),
                                dst: Slice::frag(acc).extent(32, 32),
                            })],
                            else_: vec![],
                        },
                        Instr::Wgmma {
                            a: Slice::smem(sa).stage(Expr::var(j) % 2).extent(32, 16),
                            b: Slice::smem(sb).stage(Expr::var(j) % 2).extent(16, 32),
                            acc: Slice::frag(acc).extent(32, 32),
                            accumulate: true,
                            transpose_b: false,
                        },
                        Instr::WgmmaWait { pending: 0 },
                    ],
                },
                Instr::Simt(SimtOp::Zip {
                    op: BinOp::Add,
                    a: Slice::frag(acc).extent(32, 32),
                    b: Slice::frag(acc).extent(32, 32),
                    dst: Slice::frag(acc).extent(32, 32),
                }),
                Instr::Simt(SimtOp::Copy {
                    src: Slice::frag(acc).extent(32, 32),
                    dst: Slice::param(c).at(Expr::block_x() * 32, 0).extent(32, 32),
                }),
            ],
        );
        b.build()
    }

    #[test]
    fn lowered_program_mirrors_flat_shape() {
        let kernel = pipelined_kernel();
        let program = lower(&kernel).unwrap();
        assert_eq!(program.roles.len(), kernel.roles.len());
        for (role, bc) in kernel.roles.iter().zip(&program.roles) {
            let flat = flatten(&role.body);
            assert_eq!(flat.len(), bc.len(), "one-to-one with the walked program");
            for (f, b) in flat.iter().zip(bc) {
                match (f, b) {
                    (Flat::Op(_), BcInstr::Op(_))
                    | (Flat::LoopEnd { .. }, BcInstr::LoopEnd)
                    | (Flat::End, BcInstr::End) => {}
                    (Flat::Jump(t), BcInstr::Jump(u)) => assert_eq!(t, u),
                    (Flat::LoopStart { end: t, .. }, BcInstr::LoopStart { end: u, .. }) => {
                        assert_eq!(t, u);
                    }
                    (
                        Flat::Branch { else_target: t, .. },
                        BcInstr::Branch { else_target: u, .. },
                    ) => assert_eq!(t, u),
                    other => panic!("frontends disagree on instruction shape: {other:?}"),
                }
            }
        }
        assert!(program.num_instructions() > 0);
    }

    #[test]
    fn shape_hash_distinguishes_kernels() {
        let k1 = pipelined_kernel();
        let mut k2 = k1.clone();
        k2.name.push('x');
        assert_ne!(kernel_shape_hash(&k1), kernel_shape_hash(&k2));
        assert_eq!(lower(&k1).unwrap().shape_hash, kernel_shape_hash(&k1));
    }
}
