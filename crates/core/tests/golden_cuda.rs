//! Golden checks on the generated pseudo-CUDA: the compiled GEMM must have
//! the structure of the paper's Fig. 1b — a DMA warp running ahead with
//! TMA loads guarded by consumer barriers, compute warpgroups issuing
//! `wgmma` with group waits, and a staged TMA store-out.

use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm::{self, GemmConfig};
use cypress_sim::MachineConfig;

fn compile(cfg: GemmConfig) -> cypress_core::Compiled {
    let machine = MachineConfig::h100_sxm5();
    let (reg, mapping, args) = gemm::build_with(4096, 4096, 4096, cfg).unwrap();
    CypressCompiler::new(CompilerOptions {
        machine,
        ..Default::default()
    })
    .compile(&reg, &mapping, "gemm", &args)
    .unwrap()
}

#[test]
fn generated_gemm_has_fig1b_structure() {
    let compiled = compile(GemmConfig::h100());
    let cuda = &compiled.cuda;

    // Warp specialization: a DMA warp section and two compute warpgroups.
    assert!(cuda.contains("// DMA warp"), "{cuda}");
    assert!(cuda.contains("// compute warpgroup 0"), "{cuda}");
    assert!(cuda.contains("// compute warpgroup 1"), "{cuda}");

    // The DMA warp waits for the consumer from iteration PIPE onward
    // (Fig. 1b line 9-10) and issues TMA loads.
    let dma = cuda
        .split("// DMA warp")
        .nth(1)
        .unwrap()
        .split("// compute")
        .next()
        .unwrap();
    assert!(dma.contains(">= 3"), "pipeline guard missing:\n{dma}");
    assert!(
        dma.matches("TMA_load").count() >= 2,
        "A and B loads:\n{dma}"
    );
    assert!(dma.contains("TMA_store"), "{dma}");
    assert!(dma.contains("tma_store_wait"), "{dma}");

    // Compute warpgroups wait on producer barriers, run wgmma, group-wait,
    // and release buffers (Fig. 1b lines 23-29).
    let wg = cuda.split("// compute warpgroup 0").nth(1).unwrap();
    let wg0 = wg.split("// compute warpgroup 1").next().unwrap();
    assert!(wg0.contains("wgmma("), "{wg0}");
    assert!(wg0.contains("warpgroup_wait<0>"), "{wg0}");
    assert!(
        wg0.matches("wait(bar").count() >= 2,
        "producer waits:\n{wg0}"
    );
    assert!(
        wg0.matches("arrive(bar").count() >= 2,
        "consumer arrivals:\n{wg0}"
    );

    // Pipelined buffers are stage-indexed modulo the pipeline depth.
    assert!(cuda.contains("% 3"), "stage indexing:\n{cuda}");

    // Shared memory declarations carry the pipeline dimension.
    assert!(cuda.contains("[3]["), "3-stage buffers:\n{cuda}");
}

#[test]
fn warpgroup_count_follows_the_mapping() {
    // One warpgroup needs 64-row block tiles (the WGMMA instruction's m);
    // the mapping controls both, with no change to the task tree.
    let one = compile(GemmConfig {
        wgs: 1,
        u: 64,
        ..GemmConfig::h100()
    });
    assert_eq!(one.kernel.num_compute_warpgroups(), 1);
    assert_eq!(one.kernel.grid, [64, 16, 1]);
    let two = compile(GemmConfig::h100());
    assert_eq!(two.kernel.num_compute_warpgroups(), 2);
    assert_eq!(two.kernel.grid, [32, 16, 1]);
    // Both materialize one 64-row accumulator fragment per warpgroup.
    assert_eq!(one.kernel.frags[0].rows, 64);
    assert_eq!(two.kernel.frags[0].rows, 64);
}

#[test]
fn illegal_single_warpgroup_tile_is_rejected() {
    // wgs=1 with 128-row tiles would need a 128-row warp-level MMA
    // partition; the architecture mandates 64 (Fig. 4), and the partition
    // operator reports it.
    let machine = MachineConfig::h100_sxm5();
    let cfg = GemmConfig {
        wgs: 1,
        ..GemmConfig::h100()
    };
    let (reg, mapping, args) = gemm::build_with(4096, 4096, 4096, cfg).unwrap();
    let err = CypressCompiler::new(CompilerOptions {
        machine,
        ..Default::default()
    })
    .compile(&reg, &mapping, "gemm", &args);
    assert!(
        matches!(err, Err(cypress_core::CompileError::Partition(_))),
        "{err:?}"
    );
}

#[test]
fn register_accounting_respects_the_hopper_limit() {
    let compiled = compile(GemmConfig::h100());
    // 64x256 f32 accumulator = 128 registers per thread + base, under 255.
    let regs = compiled.kernel.regs_per_thread();
    assert!(regs <= 255, "regs {regs}");
    assert!(
        regs >= 128,
        "accumulator must live in registers, got {regs}"
    );
}

#[test]
fn smem_footprint_matches_hand_count() {
    let compiled = compile(GemmConfig::h100());
    // sA 128x64x2B x3 + sB 64x256x2B x3 + sC 128x256x2B = 48K + 96K + 64K.
    assert_eq!(compiled.smem_bytes, 48 * 1024 + 96 * 1024 + 64 * 1024);
}
