//! Calibration of the analytical cost model against the simulator on
//! the five paper kernels (see `cypress_core::kernels::cost`).
//!
//! The stored [`CostConstants`] literals were produced by running
//! [`cost::calibrate`] over exactly the sweep below; these tests re-run
//! the fit and check (a) the stored constants still match it, and
//! (b) the model's *ranking* is good enough for a guided tuner: on
//! every space, a candidate within 5% of the measured best ranks in
//! the predicted top half.

use cypress_core::kernels::cost::{self, CalibrationSample};
use cypress_core::kernels::{attention, batched, dual_gemm, gemm, gemm_reduction};
use cypress_core::{CompilerOptions, CypressCompiler, MappingConfig, MappingSpace, Shape};
use cypress_sim::{CostConstants, MachineConfig, Simulator};
use std::sync::Arc;

/// The five paper kernels (attention contributes both algorithms).
fn paper_spaces() -> Vec<Arc<dyn MappingSpace>> {
    vec![
        Arc::new(gemm::GemmSpace),
        Arc::new(batched::BatchedGemmSpace),
        Arc::new(dual_gemm::DualGemmSpace),
        Arc::new(gemm_reduction::GemmReductionSpace),
        Arc::new(attention::AttentionSpace {
            algorithm: attention::Algorithm::Fa2,
        }),
        Arc::new(attention::AttentionSpace {
            algorithm: attention::Algorithm::Fa3,
        }),
    ]
}

fn shape_for(entry: &str, size: usize) -> Shape {
    match entry {
        "bgemm" => Shape::of(&[4, size, size, size]),
        "fa" => Shape::of(&[8, size, 128]),
        _ => Shape::of(&[size, size, size]),
    }
}

/// The calibration sweep: compile + simulate every candidate of every
/// paper space at `sizes`, alongside its prediction under the stored
/// constants.
#[allow(clippy::type_complexity)]
fn measure(
    machine: &MachineConfig,
    sizes: &[usize],
) -> Vec<(String, Shape, Vec<(MappingConfig, Option<f64>, f64)>)> {
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let mut out = Vec::new();
    for space in paper_spaces() {
        let fa3 = format!("{space:?}").contains("Fa3");
        for &size in sizes {
            let shape = shape_for(space.entry(), size);
            let candidates = space.candidates(machine, &shape);
            if candidates.is_empty() {
                continue;
            }
            let mut rows = Vec::new();
            for cfg in candidates {
                let Ok((registry, mapping, args)) = space.build(&shape, &cfg) else {
                    continue;
                };
                let Ok(compiled) = compiler.compile(&registry, &mapping, space.entry(), &args)
                else {
                    continue;
                };
                let measured = sim
                    .run_timing_lowered(&compiled.kernel, &compiled.lowered)
                    .expect("paper kernels simulate")
                    .cycles;
                let predicted = space.estimate(machine, &shape, &cfg).map(|e| e.cycles);
                rows.push((cfg, predicted, measured));
            }
            let label = format!("{}{}", space.entry(), if fa3 { "3" } else { "" });
            out.push((label, shape, rows));
        }
    }
    out
}

/// The shapes each machine is calibrated on: the paper's benchmark
/// sizes for H100, small shapes for the unit-test machine.
fn calibration_sizes(machine: &MachineConfig) -> Vec<usize> {
    if machine.name == "H100-SXM5" {
        vec![512, 4096]
    } else {
        vec![128, 256]
    }
}

/// Every valid candidate of every paper space must be priceable — the
/// guided tuner only falls back to exhaustive sweeps for kernels the
/// model does not know.
#[test]
fn every_paper_candidate_is_priceable() {
    for machine in [MachineConfig::test_gpu(), MachineConfig::h100_sxm5()] {
        for space in paper_spaces() {
            for &size in &calibration_sizes(&machine) {
                let shape = shape_for(space.entry(), size);
                for cfg in space.candidates(&machine, &shape) {
                    assert!(
                        space.estimate(&machine, &shape, &cfg).is_some(),
                        "{} candidate {} must price on {}",
                        space.entry(),
                        cfg.label(),
                        machine.name
                    );
                }
            }
        }
    }
}

/// Lock the stored [`CostConstants`]: re-running [`cost::calibrate`]
/// over the calibration sweep must reproduce the literals stored next
/// to [`MachineConfig`]. If a simulator or model change shifts the fit,
/// this test names the new constants to store.
#[test]
fn stored_constants_match_the_calibration_fit() {
    for machine in [MachineConfig::test_gpu(), MachineConfig::h100_sxm5()] {
        let mut samples = Vec::new();
        for (label, shape, rows) in measure(&machine, &calibration_sizes(&machine)) {
            for (cfg, _, measured) in rows {
                samples.push(CalibrationSample {
                    entry: if label.starts_with("fa") {
                        "fa".into()
                    } else {
                        label.clone()
                    },
                    shape: shape.clone(),
                    config: cfg,
                    measured_cycles: measured,
                });
            }
        }
        let fit = cost::calibrate(&machine, &samples);
        let stored = CostConstants::for_machine(&machine);
        assert_eq!(
            fit, stored,
            "stored CostConstants for {} are stale: refit produced {fit:?}",
            machine.name
        );
    }
}

/// The ranking-quality contract the guided tuner relies on: for every
/// paper space and calibration shape, the predicted top half of the
/// candidate list contains a candidate whose measured cycles are within
/// 5% of the measured best. (On the current fit the top half contains
/// the exact best everywhere; 5% is the gated slack.)
#[test]
fn predicted_top_half_contains_a_near_best_candidate() {
    for machine in [MachineConfig::test_gpu(), MachineConfig::h100_sxm5()] {
        for (label, shape, rows) in measure(&machine, &calibration_sizes(&machine)) {
            let best = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
            let mut ranked: Vec<_> = rows.iter().collect();
            ranked.sort_by(|a, b| {
                a.1.unwrap_or(f64::INFINITY)
                    .total_cmp(&b.1.unwrap_or(f64::INFINITY))
            });
            let half = ranked.len().div_ceil(2).max(1);
            let top_half_best = ranked[..half]
                .iter()
                .map(|r| r.2)
                .fold(f64::INFINITY, f64::min);
            assert!(
                top_half_best <= best * 1.05,
                "{label} {shape} on {}: top-half best {top_half_best} vs best {best}",
                machine.name
            );
        }
    }
}
