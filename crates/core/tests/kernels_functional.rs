//! Functional correctness of every evaluation kernel: each compiled
//! Cypress program is executed on the simulator and checked against the
//! host reference oracle.

use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::{attention, batched, comm, dual_gemm, gemm, gemm_reduction};
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compile_and_run(
    reg: &cypress_core::TaskRegistry,
    mapping: &cypress_core::MappingSpec,
    name: &str,
    args: &[cypress_core::EntryArg],
    params: Vec<Tensor>,
) -> Vec<Tensor> {
    let machine = MachineConfig::test_gpu();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let compiled = compiler.compile(reg, mapping, name, args).unwrap();
    let sim = Simulator::new(machine);
    sim.run_functional(&compiled.kernel, params).unwrap().params
}

#[test]
fn batched_gemm_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let (l, m, n, k) = (2, 64, 64, 64);
    let (reg, mapping, args) = batched::build(l, m, n, k, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let a = Tensor::random(DType::F16, &[l * m, k], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[l * k, n], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[l * m, n]);

    let out = compile_and_run(
        &reg,
        &mapping,
        "bgemm",
        &args,
        vec![c, a.clone(), b.clone()],
    );
    // Check each batch element against its own reference GEMM.
    for li in 0..l {
        let al = Tensor::from_data(
            DType::F16,
            &[m, k],
            a.data()[li * m * k..(li + 1) * m * k].to_vec(),
        )
        .unwrap();
        let bl = Tensor::from_data(
            DType::F16,
            &[k, n],
            b.data()[li * k * n..(li + 1) * k * n].to_vec(),
        )
        .unwrap();
        let want = reference::matmul(&al, &bl, DType::F16).unwrap();
        let got = Tensor::from_data(
            DType::F16,
            &[m, n],
            out[0].data()[li * m * n..(li + 1) * m * n].to_vec(),
        )
        .unwrap();
        let err = got.relative_error(&want).unwrap();
        assert!(err < 2e-2, "batch {li}: relative error {err}");
    }
}

#[test]
fn dual_gemm_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let (m, n, k) = (64, 64, 128);
    let (reg, mapping, args) = dual_gemm::build(m, n, k, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(22);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -0.7, 0.7);
    let b1 = Tensor::random(DType::F16, &[k, n], &mut rng, -0.7, 0.7);
    let b2 = Tensor::random(DType::F16, &[k, n], &mut rng, -0.7, 0.7);
    let c = Tensor::zeros(DType::F16, &[m, n]);

    let c1 = reference::matmul(&a, &b1, DType::F32).unwrap();
    let c2 = reference::matmul(&a, &b2, DType::F32).unwrap();
    let mut want = Tensor::zeros(DType::F16, &[m, n]);
    for i in 0..m * n {
        want.data_mut()[i] = DType::F16.quantize(c1.data()[i] + c2.data()[i]);
    }

    let out = compile_and_run(&reg, &mapping, "dual", &args, vec![c, a, b1, b2]);
    let err = out[0].relative_error(&want).unwrap();
    assert!(err < 2e-2, "relative error {err}");
}

#[test]
fn gemm_reduction_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let (m, n, k) = (64, 64, 128);
    let cfg = gemm::GemmConfig::test();
    let (reg, mapping, args) = gemm_reduction::build(m, n, k, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -0.7, 0.7);
    let b = Tensor::random(DType::F16, &[k, n], &mut rng, -0.7, 0.7);
    let c = Tensor::zeros(DType::F16, &[m, n]);
    let y = Tensor::zeros(DType::F16, &[m, n / cfg.v]);

    let want_c = reference::matmul(&a, &b, DType::F16).unwrap();
    let want_y = reference::row_sum(&a, DType::F16).unwrap();

    let out = compile_and_run(&reg, &mapping, "gr", &args, vec![c, y, a, b]);
    let err_c = out[0].relative_error(&want_c).unwrap();
    assert!(err_c < 2e-2, "C relative error {err_c}");
    // Sum the per-block-column partials of Y.
    let nv = n / cfg.v;
    let mut y_total = Tensor::zeros(DType::F32, &[m, 1]);
    for i in 0..m {
        let s: f32 = (0..nv).map(|j| out[1].data()[i * nv + j]).sum();
        y_total.data_mut()[i] = s;
    }
    let err_y = y_total.relative_error(&want_y).unwrap();
    assert!(err_y < 2e-2, "Y relative error {err_y}");
}

fn attention_case(alg: attention::Algorithm, heads: usize, seq: usize, d: usize) {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = attention::build(alg, heads, seq, d, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(24);
    let rows = heads * seq;
    let q = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let k = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let v = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let o = Tensor::zeros(DType::F16, &[rows, d]);

    let out = compile_and_run(
        &reg,
        &mapping,
        "fa",
        &args,
        vec![o, q.clone(), k.clone(), v.clone()],
    );

    for h in 0..heads {
        let sl = |t: &Tensor| {
            Tensor::from_data(
                DType::F16,
                &[seq, d],
                t.data()[h * seq * d..(h + 1) * seq * d].to_vec(),
            )
            .unwrap()
        };
        let want = reference::attention(&sl(&q), &sl(&k), &sl(&v), DType::F16).unwrap();
        let got = sl(&out[0]);
        let err = got.relative_error(&want).unwrap();
        assert!(err < 3e-2, "head {h}: relative error {err}");
    }
}

#[test]
fn transfer_is_a_bitwise_copy() {
    let machine = MachineConfig::test_gpu();
    let (m, n) = (128, 192);
    let (reg, mapping, args) = comm::build_transfer(m, n, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(25);
    let x = Tensor::random(DType::F16, &[m, n], &mut rng, -1.0, 1.0);
    let y = Tensor::zeros(DType::F16, &[m, n]);

    let out = compile_and_run(&reg, &mapping, "xfer", &args, vec![y, x.clone()]);
    assert_eq!(out[0].data(), x.data(), "transfer must copy bitwise");
}

#[test]
fn halo_is_a_bitwise_copy_of_the_band() {
    let machine = MachineConfig::test_gpu();
    let (rows, n) = (64, 256);
    let (reg, mapping, args) = comm::build_halo(rows, n, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(26);
    let x = Tensor::random(DType::F16, &[rows, n], &mut rng, -1.0, 1.0);
    let y = Tensor::zeros(DType::F16, &[rows, n]);

    let out = compile_and_run(&reg, &mapping, "halo", &args, vec![y, x.clone()]);
    assert_eq!(out[0].data(), x.data(), "halo exchange must copy bitwise");
}

#[test]
fn all_reduce_matches_elementwise_sum() {
    let machine = MachineConfig::test_gpu();
    let (ways, m, n) = (3, 64, 64);
    let (reg, mapping, args) = comm::build_all_reduce(ways, m, n, &machine).unwrap();
    let mut rng = StdRng::seed_from_u64(27);
    let xs: Vec<Tensor> = (0..ways)
        .map(|_| Tensor::random(DType::F16, &[m, n], &mut rng, -1.0, 1.0))
        .collect();
    let y = Tensor::zeros(DType::F16, &[m, n]);

    let mut want = Tensor::zeros(DType::F16, &[m, n]);
    for i in 0..m * n {
        let s: f32 = xs.iter().map(|x| x.data()[i]).sum();
        want.data_mut()[i] = DType::F16.quantize(s);
    }

    let mut params = vec![y];
    params.extend(xs);
    let out = compile_and_run(&reg, &mapping, "allred", &args, params);
    assert_eq!(out[0].data(), want.data(), "all-reduce must sum exactly");
}

#[test]
fn fa2_matches_reference() {
    attention_case(attention::Algorithm::Fa2, 1, 128, 64);
}

#[test]
fn fa2_multi_head_multi_tile() {
    attention_case(attention::Algorithm::Fa2, 2, 256, 64);
}

#[test]
fn fa3_matches_reference() {
    attention_case(attention::Algorithm::Fa3, 1, 256, 64);
}
