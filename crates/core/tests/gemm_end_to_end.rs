//! End-to-end test of the whole Cypress stack: the Fig. 5 GEMM task tree
//! is compiled through every pass and executed functionally on the
//! simulator, then checked against the host reference.

use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm;
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compiler(machine: &MachineConfig) -> CypressCompiler {
    CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        spill_first: true,
        dump_ir: true,
    })
}

#[test]
fn gemm_compiles_to_warp_specialized_kernel() {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine).unwrap();
    let compiled = compiler(&machine)
        .compile(&reg, &mapping, "gemm", &args)
        .unwrap();
    let k = &compiled.kernel;
    assert!(
        k.has_dma_warp(),
        "warp specialization requested by the mapping"
    );
    assert_eq!(k.num_compute_warpgroups(), 1);
    assert_eq!(k.grid, [2, 2, 1]);
    assert_eq!(k.params.len(), 3);
    // The pseudo-CUDA must show the Fig. 1b structure.
    assert!(
        compiled.cuda.contains("TMA_load"),
        "cuda:\n{}",
        compiled.cuda
    );
    assert!(compiled.cuda.contains("wgmma"), "cuda:\n{}", compiled.cuda);
    assert!(
        compiled.cuda.contains("TMA_store"),
        "cuda:\n{}",
        compiled.cuda
    );
    // Copy elimination must have removed the vast majority of copies.
    assert!(compiled.copyelim_stats.removed_copies > 10);
}

#[test]
fn gemm_functional_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine).unwrap();
    let compiled = compiler(&machine)
        .compile(&reg, &mapping, "gemm", &args)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(11);
    let a = Tensor::random(DType::F16, &[128, 64], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[64, 128], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[128, 128]);
    let want = reference::matmul(&a, &b, DType::F16).unwrap();

    let sim = Simulator::new(machine);
    let run = sim.run_functional(&compiled.kernel, vec![c, a, b]).unwrap();
    let err = run.params[0].relative_error(&want).unwrap();
    assert!(err < 1e-2, "relative error {err}\ncuda:\n{}", compiled.cuda);
}

#[test]
fn gemm_multi_k_iterations() {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(64, 64, 256, &machine).unwrap();
    let compiled = compiler(&machine)
        .compile(&reg, &mapping, "gemm", &args)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(12);
    let a = Tensor::random(DType::F16, &[64, 256], &mut rng, -0.5, 0.5);
    let b = Tensor::random(DType::F16, &[256, 64], &mut rng, -0.5, 0.5);
    let c = Tensor::zeros(DType::F16, &[64, 64]);
    let want = reference::matmul(&a, &b, DType::F16).unwrap();

    let sim = Simulator::new(machine);
    let run = sim.run_functional(&compiled.kernel, vec![c, a, b]).unwrap();
    let err = run.params[0].relative_error(&want).unwrap();
    assert!(err < 2e-2, "relative error {err}");
}

#[test]
fn gemm_h100_mapping_compiles_and_times() {
    let machine = MachineConfig::h100_sxm5();
    let (reg, mapping, args) = gemm::build(4096, 4096, 4096, &machine).unwrap();
    let compiled = compiler(&machine)
        .compile(&reg, &mapping, "gemm", &args)
        .unwrap();
    assert_eq!(compiled.kernel.grid, [32, 16, 1]);
    assert_eq!(compiled.kernel.num_compute_warpgroups(), 2);

    let sim = Simulator::new(machine);
    let report = sim.run_timing(&compiled.kernel).unwrap();
    let tflops = report.tflops_for(gemm::flops(4096, 4096, 4096));
    // The paper's Fig. 13a: Cypress reaches within ~0.88-1.06x of cuBLAS
    // (~700-800 TFLOP/s); the model must land in a plausible band.
    assert!(
        tflops > 400.0 && tflops < 1000.0,
        "implausible {tflops} TFLOP/s\n{report}"
    );
    assert!(
        report.tc_utilization > 0.5,
        "tensor core underutilized\n{report}"
    );
}
