//! Pass-level IR tests mirroring the paper's Fig. 8/9/10: dependence
//! analysis emits the copy-in/copy-out structure, vectorization flattens
//! implicit parallelism into event arrays, and the copy-elimination
//! patterns remove exactly the copies that imply no data movement.

use cypress_core::ir::printer::print_program;
use cypress_core::ir::OpKind;
use cypress_core::kernels::gemm;
use cypress_core::passes::{copyelim, depan, vectorize};
use cypress_sim::MachineConfig;

fn analyzed() -> cypress_core::ir::IrProgram {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine).unwrap();
    depan::analyze(&reg, &mapping, "gemm", &args).unwrap()
}

#[test]
fn depan_emits_copy_in_copy_out_structure() {
    let prog = analyzed();
    let text = print_program(&prog);
    // Fig. 8b structure: pfor over blocks, for over K, copies everywhere.
    assert!(text.contains("pfor i0 in [0, 2) @BLOCK"), "{text}");
    assert!(text.contains("@WARPGROUP"), "{text}");
    assert!(text.contains("@THREAD"), "{text}");
    assert!(text.contains("for "), "{text}");
    // The copy-in/copy-out discipline introduces many copies before
    // elimination.
    assert!(prog.copy_count() > 15, "only {} copies", prog.copy_count());
    // None-memory tensors exist at this stage (the accumulator).
    assert!(prog
        .tensors
        .iter()
        .any(|t| t.mem == cypress_core::MemLevel::None && t.name.contains("Cacc")));
}

#[test]
fn vectorization_flattens_intra_block_parallelism() {
    let mut prog = analyzed();
    vectorize::run(&mut prog);
    vectorize::normalize_ranks(&mut prog);
    let text = print_program(&prog);
    // No WARPGROUP/WARP/THREAD pfors survive; BLOCK pfors remain.
    assert!(!text.contains("@WARPGROUP,"), "{text}");
    assert!(text.contains("@BLOCK"), "{text}");
    // Event arrays carry the flattened dimensions (Fig. 9c).
    assert!(text.contains("(4, WARP)"), "{text}");
    assert!(text.contains("(32, THREAD)"), "{text}");
    // Flattened loop variables became processor indices.
    assert!(!prog.proc_vars.is_empty());
}

#[test]
fn copy_elimination_leaves_only_real_data_movement() {
    let mut prog = analyzed();
    vectorize::run(&mut prog);
    vectorize::normalize_ranks(&mut prog);
    let before = prog.copy_count();
    let stats = copyelim::run(&mut prog, copyelim::Options::default()).unwrap();
    let after = prog.copy_count();
    assert!(stats.removed_copies > 0);
    assert!(after < before / 2, "{before} -> {after}");
    // The surviving copies are exactly the memory-level crossings:
    // global->shared loads (A and B) and shared->global store (C).
    let mut crossings = 0;
    fn count(prog: &cypress_core::ir::IrProgram, b: &cypress_core::ir::Block, n: &mut usize) {
        for op in &b.ops {
            match &op.kind {
                OpKind::Copy { src, dst } => {
                    let sm = prog.tensors[src.tensor].mem;
                    let dm = prog.tensors[dst.tensor].mem;
                    assert_ne!(sm, dm, "same-memory copy survived: {sm} -> {dm}");
                    *n += 1;
                }
                OpKind::For { body, .. } | OpKind::Pfor { body, .. } => count(prog, body, n),
                _ => {}
            }
        }
    }
    count(&prog, &prog.body, &mut crossings);
    assert_eq!(crossings, 3, "expected loads of A and B plus the C store");
}

#[test]
fn pattern_order_ablation_still_converges() {
    let mut a = analyzed();
    vectorize::run(&mut a);
    vectorize::normalize_ranks(&mut a);
    let mut b = a.clone();
    let sf = copyelim::run(
        &mut a,
        copyelim::Options {
            spill_first: true,
            max_rounds: 512,
        },
    )
    .unwrap();
    let sl = copyelim::run(
        &mut b,
        copyelim::Options {
            spill_first: false,
            max_rounds: 512,
        },
    )
    .unwrap();
    // Both orderings reach a fixpoint with the same surviving copies (the
    // paper orders spill patterns first to elide more synchronization; the
    // copy count converges either way).
    assert_eq!(a.copy_count(), b.copy_count());
    assert!(sf.rounds > 0 && sl.rounds > 0);
}

#[test]
fn bad_none_mapping_is_rejected_not_miscompiled() {
    // §3.3: mapping decisions affect performance, never correctness. A
    // mapping that puts the Tensor Core operands in the `none` memory
    // cannot be realized (wgmma needs shared-memory operands); the
    // compiler must reject it rather than emit a wrong kernel.
    use cypress_core::compile::{CompilerOptions, CypressCompiler};
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine).unwrap();
    let mut instances: Vec<_> = mapping.iter().cloned().collect();
    for i in &mut instances {
        // Deny shared memory to the whole gemm chain: the Tensor Core
        // operands then have no legal home.
        if i.instance.starts_with("gemm_")
            && i.instance != "gemm_host"
            && i.instance != "gemm_block"
        {
            i.mems = vec![
                cypress_core::MemLevel::None,
                cypress_core::MemLevel::None,
                cypress_core::MemLevel::None,
            ];
        }
    }
    let broken = cypress_core::MappingSpec::new(instances).unwrap();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine,
        ..Default::default()
    });
    let err = compiler.compile(&reg, &broken, "gemm", &args);
    assert!(err.is_err(), "broken mapping must be rejected, got {err:?}");
}

#[test]
fn none_memory_survivor_is_reported() {
    // A `none`-mapped tensor that survives every elimination pattern is
    // reported with the §3.3 diagnostic. Construct one synthetically: a
    // none tensor copied to two *different* destinations can be neither
    // forwarded nor identified.
    use cypress_core::front::machine::MemLevel;
    use cypress_core::ir::{Block, EventType, IrProgram, Op, OpKind, TensorRef};
    use cypress_tensor::DType;
    let mut prog = IrProgram::new("synthetic");
    let t = prog.add_tensor("ghost", 8, 8, DType::F16, MemLevel::None, None);
    let d1 = prog.add_tensor("d1", 8, 8, DType::F16, MemLevel::Register, None);
    let d2 = prog.add_tensor("d2", 8, 8, DType::F16, MemLevel::Shared, None);
    let s = prog.add_tensor("s", 8, 8, DType::F16, MemLevel::Shared, None);
    let (e1, e2, e3) = (prog.fresh_event(), prog.fresh_event(), prog.fresh_event());
    prog.body = Block {
        ops: vec![
            Op {
                result: e1,
                ty: EventType::Unit,
                pre: vec![],
                kind: OpKind::Copy {
                    src: TensorRef::whole(s),
                    dst: TensorRef::whole(t),
                },
            },
            Op {
                result: e2,
                ty: EventType::Unit,
                pre: vec![],
                kind: OpKind::Copy {
                    src: TensorRef::whole(t),
                    dst: TensorRef::whole(d1),
                },
            },
            Op {
                result: e3,
                ty: EventType::Unit,
                pre: vec![],
                kind: OpKind::Copy {
                    src: TensorRef::whole(t),
                    dst: TensorRef::whole(d2),
                },
            },
        ],
    };
    let err = copyelim::run(&mut prog, copyelim::Options::default());
    assert!(
        matches!(
            err,
            Err(cypress_core::CompileError::NoneMemoryMaterialized { .. }) | Ok(_)
        ),
        "unexpected {err:?}"
    );
    // Either the ghost was eliminated (fine) or reported (fine); what must
    // never happen is a `none` tensor surviving silently.
    if err.is_ok() {
        let text = print_program(&prog);
        assert!(!text.contains("ghost") || prog.copy_count() == 0, "{text}");
    }
}
