use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm;
use cypress_sim::{MachineConfig, Simulator};

fn main() {
    let machine = MachineConfig::h100_sxm5();
    let sim = Simulator::new(machine.clone());
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    for size in [4096usize, 6144, 8192] {
        let (reg, mapping, args) = gemm::build(size, size, size, &machine).unwrap();
        let compiled = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
        let r = sim.run_timing(&compiled.kernel).unwrap();
        println!(
            "gemm {size}: {:.0} TFLOP/s  tc={:.2} tma={:.2} cycles={:.0} ctas={} waves~{:.1}",
            r.tflops_for(gemm::flops(size, size, size)),
            r.tc_utilization,
            r.tma_utilization,
            r.cycles,
            r.ctas,
            r.ctas as f64 / r.active_sms as f64
        );
    }
}
