use cypress_core::ir::printer::print_program;
use cypress_core::kernels::gemm;
use cypress_core::passes::{copyelim, depan, vectorize};
use cypress_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine).unwrap();
    let mut prog = depan::analyze(&reg, &mapping, "gemm", &args).unwrap();
    vectorize::run(&mut prog);
    vectorize::normalize_ranks(&mut prog);
    let r = copyelim::run(&mut prog, copyelim::Options::default());
    println!("copyelim: {r:?}");
    println!("{}", print_program(&prog));
}
