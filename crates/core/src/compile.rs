//! The compiler driver: runs the pass pipeline of Fig. 6.

use crate::error::CompileError;
use crate::front::mapping::MappingSpec;
use crate::front::task::TaskRegistry;
use crate::ir::printer::print_program;
use crate::passes::depan::EntryArg;
use crate::passes::{alloc, copyelim, depan, vectorize, warpspec};
use cypress_sim::{Kernel, MachineConfig};

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Target machine (used for shared-memory budgets and validation).
    pub machine: MachineConfig,
    /// Copy-elimination pattern ordering (§4.2.3); the ablation flips it.
    pub spill_first: bool,
    /// Keep per-pass IR dumps in the result.
    pub dump_ir: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            machine: MachineConfig::h100_sxm5(),
            spill_first: true,
            dump_ir: false,
        }
    }
}

/// A compiled Cypress program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The device kernel, ready for [`cypress_sim::Simulator`].
    pub kernel: Kernel,
    /// Pseudo-CUDA rendering of the kernel.
    pub cuda: String,
    /// IR dumps per pass (`depan`, `vectorize`, `copyelim`), if requested.
    pub ir_dumps: Vec<(String, String)>,
    /// Copy-elimination statistics.
    pub copyelim_stats: copyelim::Stats,
    /// Shared-memory bytes allocated per CTA.
    pub smem_bytes: usize,
    /// The kernel's functional body lowered once into flat bytecode (see
    /// [`cypress_sim::bytecode`]); the runtime replays it on every launch
    /// instead of re-walking the kernel IR.
    pub lowered: cypress_sim::Program,
    /// Stable fingerprint of the compiler inputs that produced this kernel
    /// (see [`crate::fingerprint::fingerprint`]); the cache key of the
    /// `cypress-runtime` kernel cache.
    pub fingerprint: u64,
    /// Host wall-clock nanoseconds each compiler pass took, in pipeline
    /// order. Observability only: the numbers are nondeterministic, are
    /// never part of [`Compiled::fingerprint`], and downstream consumers
    /// (the runtime's telemetry layer) treat them as opt-in host-time
    /// fields.
    pub pass_nanos: Vec<(String, u64)>,
}

/// The Cypress compiler.
#[derive(Debug, Clone, Default)]
pub struct CypressCompiler {
    opts: CompilerOptions,
}

impl CypressCompiler {
    /// A compiler with default options (H100 target).
    #[must_use]
    pub fn new(opts: CompilerOptions) -> Self {
        CypressCompiler { opts }
    }

    /// Compile a logical description + mapping specification into a device
    /// kernel (paper Fig. 6: dependence analysis → vectorization → copy
    /// elimination → resource allocation → warp specialization → codegen).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from any pass; backend validation
    /// failures are wrapped in [`CompileError::Backend`].
    pub fn compile(
        &self,
        registry: &TaskRegistry,
        mapping: &MappingSpec,
        name: &str,
        entry_args: &[EntryArg],
    ) -> Result<Compiled, CompileError> {
        let fingerprint = self.fingerprint(registry, mapping, name, entry_args);
        self.compile_with_fingerprint(registry, mapping, name, entry_args, fingerprint)
    }

    /// [`CypressCompiler::compile`] with a fingerprint the caller already
    /// computed (kernel caches hash the inputs to form their key; this
    /// avoids hashing them a second time on a miss). `fingerprint` must
    /// come from [`CypressCompiler::fingerprint`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from any pass; backend validation
    /// failures are wrapped in [`CompileError::Backend`].
    pub fn compile_with_fingerprint(
        &self,
        registry: &TaskRegistry,
        mapping: &MappingSpec,
        name: &str,
        entry_args: &[EntryArg],
        fingerprint: u64,
    ) -> Result<Compiled, CompileError> {
        let mut dumps = Vec::new();
        // Pass wall-clock timings (observability only; kept out of the
        // fingerprint so cache keys and BENCH rows are unaffected).
        let mut pass_nanos: Vec<(String, u64)> = Vec::with_capacity(6);
        let mut timed = |name: &str, since: std::time::Instant| {
            pass_nanos.push((name.to_string(), since.elapsed().as_nanos() as u64));
        };

        // 1. Dependence analysis (§4.2.1).
        let t = std::time::Instant::now();
        let mut prog = depan::analyze(registry, mapping, name, entry_args)?;
        timed("depan", t);
        if self.opts.dump_ir {
            dumps.push(("depan".to_string(), print_program(&prog)));
        }

        // 2. Vectorization (§4.2.2).
        let t = std::time::Instant::now();
        vectorize::run(&mut prog);
        vectorize::normalize_ranks(&mut prog);
        timed("vectorize", t);
        if self.opts.dump_ir {
            dumps.push(("vectorize".to_string(), print_program(&prog)));
        }

        // 3. Copy elimination (§4.2.3).
        let ce_opts = copyelim::Options {
            spill_first: self.opts.spill_first,
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let stats = copyelim::run(&mut prog, ce_opts)?;
        timed("copyelim", t);
        if self.opts.dump_ir {
            dumps.push(("copyelim".to_string(), print_program(&prog)));
        }

        // 4. Resource allocation (§4.2.4).
        let limit = mapping.smem_limit.unwrap_or(self.opts.machine.smem_per_sm);
        let t = std::time::Instant::now();
        let allocation = alloc::run(&prog, limit)?;
        timed("alloc", t);

        // 5/6. Warp specialization, pipelining, and code generation
        // (§4.2.5, §4.2.6).
        let sched = warpspec::SchedOptions {
            warpspecialize: mapping.iter().any(|i| i.warpspecialize),
            pipeline: mapping.iter().map(|i| i.pipeline).max().unwrap_or(0).max(1),
        };
        let t = std::time::Instant::now();
        let kernel = warpspec::lower(&prog, &allocation, sched)?;
        kernel
            .validate(&self.opts.machine)
            .map_err(|e| CompileError::Backend(e.to_string()))?;
        timed("warpspec", t);

        let t = std::time::Instant::now();
        let cuda = crate::codegen::cuda::render(&kernel);
        timed("codegen", t);

        // 7. Bytecode lowering: compile the kernel body once into the flat
        // instruction stream the simulator's dispatch loop executes.
        let t = std::time::Instant::now();
        let lowered = cypress_sim::bytecode::lower(&kernel)
            .map_err(|e| CompileError::Backend(e.to_string()))?;
        timed("lower", t);

        let smem_bytes = kernel.smem_bytes();
        Ok(Compiled {
            kernel,
            cuda,
            ir_dumps: dumps,
            copyelim_stats: stats,
            smem_bytes,
            lowered,
            fingerprint,
            pass_nanos,
        })
    }

    /// Stable fingerprint of a compile invocation under this compiler's
    /// options — equal fingerprints guarantee an equal [`Compiled::kernel`],
    /// so callers may reuse a cached result instead of compiling.
    #[must_use]
    pub fn fingerprint(
        &self,
        registry: &TaskRegistry,
        mapping: &MappingSpec,
        name: &str,
        entry_args: &[EntryArg],
    ) -> u64 {
        crate::fingerprint::fingerprint(
            registry,
            mapping,
            name,
            entry_args,
            &self.opts.machine,
            self.opts.spill_first,
        )
    }

    /// The options this compiler was constructed with.
    #[must_use]
    pub fn options(&self) -> &CompilerOptions {
        &self.opts
    }
}
