//! Enumerable, validated mapping spaces (the paper's §3.3 separation,
//! made searchable).
//!
//! The paper's core thesis is that the *logical description* of a kernel
//! is fixed while its *mapping specification* — tile sizes, warpgroup
//! counts, pipeline depth, warp specialization — can be swapped freely.
//! [`MappingSpace`] is the machinery that exploits the separation: each
//! evaluation kernel exposes one space whose points are [`MappingConfig`]
//! values, with
//!
//! - [`MappingSpace::default_for`] — the hand-tuned mapping (what the
//!   fixed `for_machine` pickers used to return, bit for bit);
//! - [`MappingSpace::candidates`] — every valid point for a machine and
//!   problem shape. Points that blow the shared-memory budget or do not
//!   divide the problem are filtered through [`MappingSpace::validate`],
//!   which reports a typed [`CompileError`] rather than panicking;
//! - [`MappingSpace::build`] — the program at a given point.
//!
//! Spaces only enumerate *functionally transparent* dimensions: every
//! candidate a space emits computes bitwise-identical outputs to the
//! default mapping (the functional simulator accumulates in unrounded
//! f32 register fragments, so re-tiling a parallel dimension preserves
//! each element's addition order). Parameters that change the
//! computation's structure are pinned to the hand-tuned default:
//! GEMM+Reduction's `V` (which fixes the partial-sum output shape),
//! Dual-GEMM's `W` (which fixes the `B1`/`B2` accumulation
//! interleaving), attention's `Bc` (which fixes the online-softmax
//! rescale grouping), and the GEMM family's warpgroup count. A search
//! over a space (see `cypress-runtime`'s tuner) therefore never changes
//! results, only time.

use crate::error::CompileError;
use crate::front::mapping::MappingSpec;
use crate::front::task::TaskRegistry;
use crate::kernels::attention::AttentionConfig;
use crate::kernels::gemm::GemmConfig;
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use std::fmt;

/// A problem shape: flat extents whose meaning is per kernel
/// (GEMM/Dual-GEMM/GEMM+Reduction: `[m, n, k]`; batched GEMM:
/// `[l, m, n, k]`; attention: `[heads, seq, head_dim]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shorthand constructor.
    #[must_use]
    pub fn of(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The extents.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extract exactly `N` dims, or a typed error naming the kernel.
    pub(crate) fn expect_dims<const N: usize>(
        &self,
        kernel: &str,
    ) -> Result<[usize; N], CompileError> {
        <[usize; N]>::try_from(self.0.as_slice()).map_err(|_| {
            CompileError::Unsupported(format!(
                "`{kernel}` shape needs {N} extents, got {:?}",
                self.0
            ))
        })
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// One point in a kernel's mapping space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingConfig {
    /// A GEMM-family point (GEMM, batched, dual, GEMM+Reduction).
    Gemm(GemmConfig),
    /// An attention point.
    Attention(AttentionConfig),
}

impl MappingConfig {
    /// Compact human-readable label, e.g. `u128 v256 w64 wgs2 p3 ws`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MappingConfig::Gemm(c) => format!(
                "u{} v{} w{} wgs{} p{}{}",
                c.u,
                c.v,
                c.w,
                c.wgs,
                c.pipeline,
                if c.warpspecialize { " ws" } else { "" }
            ),
            MappingConfig::Attention(c) => {
                format!("br{} bc{} wgs{} p{}", c.br, c.bc, c.wgs, c.pipeline)
            }
        }
    }

    /// Canonical single-token encoding, inverse of [`MappingConfig::decode`].
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            MappingConfig::Gemm(c) => format!(
                "gemm:u={},v={},w={},wgs={},pipe={},ws={}",
                c.u,
                c.v,
                c.w,
                c.wgs,
                c.pipeline,
                u8::from(c.warpspecialize)
            ),
            MappingConfig::Attention(c) => format!(
                "attn:br={},bc={},wgs={},pipe={}",
                c.br, c.bc, c.wgs, c.pipeline
            ),
        }
    }

    /// Parse a token produced by [`MappingConfig::encode`].
    #[must_use]
    pub fn decode(s: &str) -> Option<Self> {
        let (kind, fields) = s.split_once(':')?;
        let get = |key: &str| -> Option<usize> {
            fields.split(',').find_map(|f| {
                let (k, v) = f.split_once('=')?;
                (k == key).then(|| v.parse().ok())?
            })
        };
        match kind {
            "gemm" => Some(MappingConfig::Gemm(GemmConfig {
                u: get("u")?,
                v: get("v")?,
                w: get("w")?,
                wgs: get("wgs")?,
                pipeline: get("pipe")?,
                warpspecialize: get("ws")? != 0,
            })),
            "attn" => Some(MappingConfig::Attention(AttentionConfig {
                br: get("br")?,
                bc: get("bc")?,
                wgs: get("wgs")?,
                pipeline: get("pipe")?,
            })),
            _ => None,
        }
    }

    /// The GEMM-family payload, or a typed error.
    pub(crate) fn as_gemm(&self, kernel: &str) -> Result<GemmConfig, CompileError> {
        match self {
            MappingConfig::Gemm(c) => Ok(*c),
            MappingConfig::Attention(_) => Err(CompileError::Unsupported(format!(
                "`{kernel}` needs a GEMM-family mapping config, got an attention config"
            ))),
        }
    }

    /// The attention payload, or a typed error.
    pub(crate) fn as_attention(&self, kernel: &str) -> Result<AttentionConfig, CompileError> {
        match self {
            MappingConfig::Attention(c) => Ok(*c),
            MappingConfig::Gemm(_) => Err(CompileError::Unsupported(format!(
                "`{kernel}` needs an attention mapping config, got a GEMM-family config"
            ))),
        }
    }
}

/// An enumerable, validated mapping space for one kernel.
///
/// The trait is object-safe so a runtime can carry `Arc<dyn MappingSpace>`
/// next to a compiled program; `candidates` therefore returns a `Vec`
/// rather than an opaque iterator. The candidate list is deterministic:
/// the grid is walked in a fixed order, so two processes enumerating the
/// same `(machine, shape)` see the same list — the property a
/// deterministic autotuner needs.
pub trait MappingSpace: fmt::Debug + Send + Sync {
    /// The entry task name of programs this space builds (`"gemm"`,
    /// `"bgemm"`, `"dual"`, `"gr"`, `"fa"`).
    fn entry(&self) -> &'static str;

    /// The hand-tuned default mapping for `machine` — exactly what the
    /// kernel's `build` uses, so `build(shape, &default_for(machine))`
    /// reproduces the pre-space programs bit for bit.
    fn default_for(&self, machine: &MachineConfig) -> MappingConfig;

    /// Check one point against `machine` and `shape`: tile divisibility
    /// and the shared-memory budget.
    ///
    /// # Errors
    ///
    /// [`CompileError::Partition`] for tiles that do not divide the
    /// problem, [`CompileError::OutOfSharedMemory`] for points whose
    /// staged working set exceeds the machine, and
    /// [`CompileError::Unsupported`] for malformed shapes or configs.
    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError>;

    /// Every valid point for `(machine, shape)`, in a deterministic
    /// order. All returned points compile, and all compute bitwise the
    /// same function as [`MappingSpace::default_for`]'s point.
    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig>;

    /// Build the kernel's program at `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from validation or registration.
    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError>;

    /// Analytically predict the cost of one candidate (see
    /// [`crate::kernels::cost`]): what a guided tuner ranks by before
    /// paying the simulator. The default dispatches on
    /// [`MappingSpace::entry`]; spaces whose footprint the entry name
    /// alone cannot determine (FA2 vs FA3 attention) override it.
    /// `None` means the point is unpriceable — a guided sweep falls
    /// back to the exhaustive one.
    fn estimate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Option<crate::kernels::cost::CostEstimate> {
        crate::kernels::cost::estimate(self.entry(), shape, cfg, machine)
    }
}

// ---------------------------------------------------------------------------
// GEMM family: shared grid enumeration and validation.
// ---------------------------------------------------------------------------

/// f16 element size in bytes.
const ELEM: usize = 2;

/// How a GEMM-family kernel's shared-memory working set scales, for the
/// candidate filter (a conservative over-estimate of what the allocator
/// and pipeline staging will bind; aliasing only shrinks it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GemmFootprint {
    /// `B`-shaped tiles staged per pipeline stage (dual-GEMM has two).
    pub b_tiles: usize,
    /// Fixed extra bytes outside the pipelined loop (vector staging etc.).
    pub extra_bytes: usize,
}

/// Validate a GEMM-family point: warpgroup row split, divisibility, and
/// the staged shared-memory footprint.
pub(crate) fn validate_gemm_family(
    kernel: &str,
    machine: &MachineConfig,
    m: usize,
    n: usize,
    k: usize,
    cfg: &GemmConfig,
    foot: GemmFootprint,
) -> Result<(), CompileError> {
    if cfg.wgs == 0 || cfg.pipeline == 0 {
        return Err(CompileError::Unsupported(format!(
            "`{kernel}` mapping needs wgs >= 1 and pipeline >= 1"
        )));
    }
    if cfg.u != 64 * cfg.wgs {
        return Err(CompileError::Partition(format!(
            "`{kernel}` block tile rows {} must equal 64 x wgs ({} warpgroups of one wgmma row band)",
            cfg.u, cfg.wgs
        )));
    }
    for (dim, name, tile, tname) in [
        (m, "M", cfg.u, "U"),
        (n, "N", cfg.v, "V"),
        (k, "K", cfg.w, "W"),
    ] {
        if tile == 0 || dim % tile != 0 {
            return Err(CompileError::Partition(format!(
                "`{kernel}` tile {tname}={tile} does not divide {name}={dim}"
            )));
        }
    }
    let staged = cfg.pipeline * (cfg.u * cfg.w + foot.b_tiles * cfg.w * cfg.v) * ELEM;
    let required = staged + cfg.u * cfg.v * ELEM + foot.extra_bytes;
    if required > machine.smem_per_sm {
        return Err(CompileError::OutOfSharedMemory {
            required,
            limit: machine.smem_per_sm,
        });
    }
    Ok(())
}

/// The GEMM-family candidate grid (fixed walk order), filtered through
/// `validate`. The warpgroup count (and with it the row tile `U`) is
/// pinned to the hand-tuned default — re-splitting rows across
/// warpgroups interacts with warp specialization in ways the functional
/// guarantee does not cover. `vary_v` / `vary_w` let a kernel pin a
/// structural tile: GEMM+Reduction's `V` fixes its partial-sum output
/// shape, and Dual-GEMM's `W` fixes the `B1`/`B2` accumulation
/// interleaving (both would change results, not just time).
pub(crate) fn gemm_family_candidates(
    space: &dyn MappingSpace,
    machine: &MachineConfig,
    shape: &Shape,
    default: GemmConfig,
    vary_v: bool,
    vary_w: bool,
) -> Vec<MappingConfig> {
    let v_choices: Vec<usize> = if vary_v {
        let mut c = vec![64, 128, 256];
        if !c.contains(&default.v) {
            c.push(default.v);
        }
        c
    } else {
        vec![default.v]
    };
    let w_choices: Vec<usize> = if vary_w {
        let mut c = vec![32, 64];
        if !c.contains(&default.w) {
            c.push(default.w);
        }
        c
    } else {
        vec![default.w]
    };
    let mut out = Vec::new();
    for &v in &v_choices {
        for &w in &w_choices {
            for pipeline in [1usize, 2, 3] {
                for warpspecialize in [true, false] {
                    let cfg = MappingConfig::Gemm(GemmConfig {
                        u: default.u,
                        v,
                        w,
                        wgs: default.wgs,
                        pipeline,
                        warpspecialize,
                    });
                    if space.validate(machine, shape, &cfg).is_ok() {
                        out.push(cfg);
                    }
                }
            }
        }
    }
    out
}

/// The space's hand-tuned default when it validates for `(machine,
/// shape)`, otherwise the first valid candidate of the deterministic
/// enumeration, otherwise `None` — the shape-adaptive fallback fused
/// kernels use, since their defaults cannot anticipate every
/// intermediate width.
pub(crate) fn default_or_first_candidate(
    space: &dyn MappingSpace,
    machine: &MachineConfig,
    shape: &Shape,
) -> Option<MappingConfig> {
    let default = space.default_for(machine);
    if space.validate(machine, shape, &default).is_ok() {
        return Some(default);
    }
    space.candidates(machine, shape).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_displays_and_extracts() {
        let s = Shape::of(&[4096, 4096, 64]);
        assert_eq!(s.to_string(), "4096x4096x64");
        assert_eq!(s.expect_dims::<3>("gemm").unwrap(), [4096, 4096, 64]);
        assert!(matches!(
            s.expect_dims::<4>("bgemm"),
            Err(CompileError::Unsupported(_))
        ));
    }

    #[test]
    fn config_encoding_round_trips() {
        let g = MappingConfig::Gemm(GemmConfig::h100());
        assert_eq!(MappingConfig::decode(&g.encode()), Some(g));
        let a = MappingConfig::Attention(AttentionConfig::fa3_h100());
        assert_eq!(MappingConfig::decode(&a.encode()), Some(a));
        assert_eq!(MappingConfig::decode("nope"), None);
        assert_eq!(MappingConfig::decode("gemm:u=1"), None);
    }

    #[test]
    fn gemm_family_validation_is_typed() {
        let machine = MachineConfig::test_gpu();
        let foot = GemmFootprint {
            b_tiles: 1,
            extra_bytes: 0,
        };
        let ok = GemmConfig::test();
        assert!(validate_gemm_family("gemm", &machine, 128, 128, 64, &ok, foot).is_ok());
        // Indivisible N.
        let err = validate_gemm_family("gemm", &machine, 128, 100, 64, &ok, foot);
        assert!(matches!(err, Err(CompileError::Partition(_))), "{err:?}");
        // H100 mapping blows the test GPU's shared memory.
        let err = validate_gemm_family("gemm", &machine, 128, 256, 64, &GemmConfig::h100(), foot);
        assert!(
            matches!(err, Err(CompileError::OutOfSharedMemory { .. })),
            "{err:?}"
        );
        // Row tile must match the warpgroup split.
        let bad = GemmConfig {
            u: 128,
            wgs: 1,
            ..GemmConfig::test()
        };
        let err = validate_gemm_family("gemm", &machine, 128, 128, 64, &bad, foot);
        assert!(matches!(err, Err(CompileError::Partition(_))), "{err:?}");
    }
}
