//! Communication kernels: tensor transfer (exchange), halo exchange,
//! and all-reduce — first-class Cypress kernels for multi-device
//! execution.
//!
//! A sharded task graph (see `cypress-runtime`'s placement policy) moves
//! tensors between devices with explicit graph nodes, and those nodes
//! compile, cache, tune, and execute like any paper kernel:
//!
//! - [`TransferSpace`] (`xfer`): `Y[m,n] = X[m,n]`, a tiled
//!   global→shared→register→shared→global copy. This is the kernel the
//!   runtime's graph sharder inserts on every cross-device edge; on the
//!   timing side its solo cost is replaced by the link-derived transfer
//!   time (`cypress_sim::topology::Link::transfer_cycles`), while the
//!   functional side runs the compiled copy so tensors stay bitwise
//!   identical to an unsharded run.
//! - [`HaloSpace`] (`halo`): the same copy under its own entry name,
//!   sized to a boundary band (`[halo_rows, n]`). Stencil-style sharding
//!   exchanges only the halo rows instead of whole operands.
//! - [`AllReduceSpace`] (`allred`): `Y = X0 + X1 + … + X{w-1}`, the
//!   per-device combine step of a w-way reduction. Inputs accumulate in
//!   ascending order in unrounded f32 register fragments, so the sum is
//!   bitwise identical at every tiling — the same transparency argument
//!   as the paper kernels' spaces.
//!
//! Each space enumerates only functionally transparent dimensions (the
//! `V` column tile), prices candidates with an explicit
//! [`CostEstimate`] override (bandwidth-bound, no tensor-core term),
//! and validates shared-memory budgets with typed errors.

use crate::error::CompileError;
use crate::front::ast::{LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::cost::CostEstimate;
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{MappingConfig, MappingSpace, Shape};
use crate::passes::depan::EntryArg;
use cypress_sim::{CostConstants, MachineConfig};
use cypress_tensor::DType;

/// f16 element size in bytes.
const ELEM: usize = 2;

/// Bytes one `[rows, cols]` f16 tensor occupies — what a transfer of it
/// moves across a link.
#[must_use]
pub fn tensor_bytes(rows: usize, cols: usize) -> f64 {
    rows as f64 * cols as f64 * ELEM as f64
}

/// Algorithmic FLOPs of a `ways`-input all-reduce: one add per element
/// per extra input.
#[must_use]
pub fn all_reduce_flops(ways: usize, m: usize, n: usize) -> f64 {
    (ways.saturating_sub(1) * m * n) as f64
}

// ---------------------------------------------------------------------------
// Shared program construction.
// ---------------------------------------------------------------------------

/// Register the `radd` accumulate tree: `T += X` per block tile, rows
/// split across warpgroups, `X` staged through shared memory. The
/// elementwise analogue of the reduction kernel's `rstep`.
fn register_accumulate(reg: &mut TaskRegistry, task: &str) -> Result<(), CompileError> {
    let params = vec![p("T", Privilege::ReadWrite), p("X", Privilege::Read)];
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_tile"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("T", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("T", 1),
            },
            Stmt::PartitionBlocks {
                name: "Tp".into(),
                tensor: "T".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Xp".into(),
                tensor: "X".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Tp", vec![v("w"), SExpr::lit(0)]),
                        piece("Xp", vec![v("w"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params,
        body: vec![Stmt::CallExternal {
            f: LeafFn::AddExt,
            args: vec![t("T"), t("X"), t("T")],
        }],
    })
}

/// Mapping instances for an accumulate tree rooted at the BLOCK level:
/// `X` staged in shared memory, `T` held in register fragments.
fn accumulate_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register, MemLevel::Shared],
        ),
    ]
}

/// Mapping instances for an inbound copy tree (`register_vec_store`'s
/// task shape with the memory placement reversed): the *source* is
/// staged through shared memory and the destination lands in register
/// fragments.
fn vec_load_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::Shared, MemLevel::None],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Shared, MemLevel::Register],
        ),
    ]
}

/// Build the transfer program for `Y[m,n] = X[m,n]` under the entry
/// task name `task` (`"xfer"` or `"halo"`).
fn build_copy(
    task: &str,
    m: usize,
    n: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    // Inbound X → T copy and outbound T → Y copy share the vec-store
    // task shape; only the mapping's memory placement differs.
    common::register_vec_store(&mut reg, "xin")?;
    common::register_vec_store(&mut reg, "xout")?;

    let params = vec![p("Y", Privilege::Write), p("X", Privilege::Read)];
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_host"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("Y", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("Y", 1),
            },
            Stmt::PartitionBlocks {
                name: "Yp".into(),
                tensor: "Y".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "Xp".into(),
                tensor: "X".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PRange {
                vars: vec!["i".into(), "j".into()],
                extents: vec![v("M") / v("U"), v("N") / v("V")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Yp", vec![v("i"), v("j")]),
                        piece("Xp", vec![v("i"), v("j")]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_block"),
        kind: VariantKind::Inner,
        params,
        body: vec![
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("Y", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("Y", 1),
            },
            Stmt::MakeTensor {
                name: "T".into(),
                rows: v("M"),
                cols: v("N"),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "xin".into(),
                args: vec![t("X"), t("T")],
            },
            Stmt::Launch {
                task: "xout".into(),
                args: vec![t("T"), t("Y")],
            },
        ],
    })?;

    let g2 = vec![MemLevel::Global; 2];
    let mut instances = vec![
        TaskMapping::new(
            &format!("{task}_host"),
            &format!("{task}_host"),
            ProcLevel::Host,
            g2.clone(),
        )
        .tunable("U", cfg.u as i64)
        .tunable("V", cfg.v as i64)
        .calls(&[&format!("{task}_block")])
        .entrypoint(),
        TaskMapping::new(
            &format!("{task}_block"),
            &format!("{task}_block"),
            ProcLevel::Block,
            g2,
        )
        .calls(&["xin_tile", "xout_tile"]),
    ];
    instances.extend(vec_load_mappings("xin", cfg.wgs as i64));
    instances.extend(common::vec_store_mappings("xout", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "Y".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "X".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}

/// Shared validation for the copy-family spaces (`xfer`, `halo`):
/// divisibility, warpgroup row split, and the two staged tiles
/// (inbound `X` + outbound `Y`) against the shared-memory budget.
fn validate_copy(
    kernel: &str,
    machine: &MachineConfig,
    m: usize,
    n: usize,
    cfg: &GemmConfig,
    staged_tiles: usize,
) -> Result<(), CompileError> {
    if cfg.wgs == 0 || cfg.pipeline == 0 {
        return Err(CompileError::Unsupported(format!(
            "`{kernel}` mapping needs wgs >= 1 and pipeline >= 1"
        )));
    }
    if cfg.u == 0 || !cfg.u.is_multiple_of(cfg.wgs) {
        return Err(CompileError::Partition(format!(
            "`{kernel}` block tile rows {} must split across {} warpgroups",
            cfg.u, cfg.wgs
        )));
    }
    for (dim, name, tile, tname) in [(m, "M", cfg.u, "U"), (n, "N", cfg.v, "V")] {
        if tile == 0 || dim % tile != 0 {
            return Err(CompileError::Partition(format!(
                "`{kernel}` tile {tname}={tile} does not divide {name}={dim}"
            )));
        }
    }
    let required = staged_tiles * cfg.u * cfg.v * ELEM;
    if required > machine.smem_per_sm {
        return Err(CompileError::OutOfSharedMemory {
            required,
            limit: machine.smem_per_sm,
        });
    }
    Ok(())
}

/// The copy-family candidate grid: the column tile `V` is the one
/// functionally transparent dimension worth enumerating (rows are
/// pinned to the warpgroup split, and the copy has no K loop, so
/// pipeline depth and warp specialization change nothing). Deterministic
/// fixed walk order, filtered through the space's `validate`.
fn copy_candidates(
    space: &dyn MappingSpace,
    machine: &MachineConfig,
    shape: &Shape,
) -> Vec<MappingConfig> {
    let MappingConfig::Gemm(default) = space.default_for(machine) else {
        return Vec::new();
    };
    let mut v_choices = vec![64usize, 128, 256];
    if !v_choices.contains(&default.v) {
        v_choices.push(default.v);
    }
    let mut out = Vec::new();
    for &vv in &v_choices {
        let cfg = MappingConfig::Gemm(GemmConfig { v: vv, ..default });
        if space.validate(machine, shape, &cfg).is_ok() {
            out.push(cfg);
        }
    }
    out
}

/// Analytical price of a bandwidth-bound communication kernel: no
/// tensor-core term, HBM traffic of `inputs + 1` tensor passes, per-CTA
/// launch overhead amortized over waves. Deterministic pure arithmetic,
/// like [`crate::kernels::cost::estimate`].
fn comm_estimate(
    m: usize,
    n: usize,
    inputs: usize,
    cfg: &MappingConfig,
    machine: &MachineConfig,
) -> Option<CostEstimate> {
    let c = match cfg {
        MappingConfig::Gemm(c) => *c,
        MappingConfig::Attention(_) => return None,
    };
    if c.u == 0 || c.v == 0 || !m.is_multiple_of(c.u) || !n.is_multiple_of(c.v) {
        return None;
    }
    let ctas = (m / c.u).checked_mul(n / c.v)?.max(1);
    let active_sms = ctas.min(machine.sms).max(1);
    let waves = ctas.div_ceil(active_sms);
    // Every input streams in once, the output streams out once; an
    // elementwise copy has no reuse, so every load is an HBM load.
    let hbm_bytes = tensor_bytes(m, n) * (inputs as f64 + 1.0);
    let constants = CostConstants::for_machine(machine);
    let mem = hbm_bytes / (machine.hbm_bytes_per_cycle * constants.mem_efficiency);
    let serial = waves as f64 * (machine.cta_launch_cycles + constants.cta_overhead_cycles);
    Some(CostEstimate {
        ctas,
        occupancy: 1,
        waves,
        hbm_bytes,
        wgmma_flops: 0.0,
        overlap: 0.0,
        cycles: machine.kernel_launch_cycles + mem + serial,
    })
}

/// The copy-family default mapping: the machine's hand-tuned GEMM point
/// (its `U`/`V`/`WGS` are exactly the tile/warpgroup split the copy
/// trees need).
fn copy_default(machine: &MachineConfig) -> MappingConfig {
    MappingConfig::Gemm(GemmConfig::for_machine(machine))
}

// ---------------------------------------------------------------------------
// Transfer (tensor exchange).
// ---------------------------------------------------------------------------

/// The transfer mapping space: shape `[m, n]` for `Y[m,n] = X[m,n]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferSpace;

impl MappingSpace for TransferSpace {
    fn entry(&self) -> &'static str {
        "xfer"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        copy_default(machine)
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n] = shape.expect_dims::<2>("xfer")?;
        validate_copy("xfer", machine, m, n, &cfg.as_gemm("xfer")?, 2)
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        copy_candidates(self, machine, shape)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n] = shape.expect_dims::<2>("xfer")?;
        build_copy("xfer", m, n, cfg.as_gemm("xfer")?)
    }

    fn estimate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Option<CostEstimate> {
        let [m, n] = shape.expect_dims::<2>("xfer").ok()?;
        comm_estimate(m, n, 1, cfg, machine)
    }
}

/// Build the transfer program `Y[m,n] = X[m,n]` with the default
/// mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for
/// this machine/shape combination.
pub fn build_transfer(
    m: usize,
    n: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, n]);
    let cfg = TransferSpace.default_for(machine);
    TransferSpace.validate(machine, &shape, &cfg)?;
    TransferSpace.build(&shape, &cfg)
}

// ---------------------------------------------------------------------------
// Halo exchange.
// ---------------------------------------------------------------------------

/// The halo-exchange mapping space: shape `[halo_rows, n]`, the
/// boundary band one stencil shard sends a neighbor. The program is the
/// transfer copy under its own entry name, so halo nodes cache and
/// report separately from bulk tensor exchanges.
#[derive(Debug, Clone, Copy, Default)]
pub struct HaloSpace;

impl MappingSpace for HaloSpace {
    fn entry(&self) -> &'static str {
        "halo"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        // Halo bands are a handful of rows: one warpgroup-row tile keeps
        // `U` dividing even a single-block-row band.
        let MappingConfig::Gemm(c) = copy_default(machine) else {
            unreachable!("copy_default always returns a GEMM point");
        };
        MappingConfig::Gemm(GemmConfig {
            u: 64.min(c.u),
            wgs: 1,
            ..c
        })
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n] = shape.expect_dims::<2>("halo")?;
        validate_copy("halo", machine, m, n, &cfg.as_gemm("halo")?, 2)
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        copy_candidates(self, machine, shape)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n] = shape.expect_dims::<2>("halo")?;
        build_copy("halo", m, n, cfg.as_gemm("halo")?)
    }

    fn estimate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Option<CostEstimate> {
        let [m, n] = shape.expect_dims::<2>("halo").ok()?;
        comm_estimate(m, n, 1, cfg, machine)
    }
}

/// Build the halo-exchange program for a `[halo_rows, n]` boundary band
/// with the default mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for
/// this machine/shape combination.
pub fn build_halo(
    halo_rows: usize,
    n: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[halo_rows, n]);
    let cfg = HaloSpace.default_for(machine);
    HaloSpace.validate(machine, &shape, &cfg)?;
    HaloSpace.build(&shape, &cfg)
}

// ---------------------------------------------------------------------------
// All-reduce.
// ---------------------------------------------------------------------------

/// The all-reduce mapping space: shape `[ways, m, n]` for
/// `Y[m,n] = X0 + X1 + … + X{ways-1}`, the combine step of a `ways`-way
/// reduction. Inputs accumulate in ascending index order per element in
/// unrounded f32 register fragments, so every candidate tiling computes
/// bitwise-identical sums.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllReduceSpace;

impl MappingSpace for AllReduceSpace {
    fn entry(&self) -> &'static str {
        "allred"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        copy_default(machine)
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [ways, m, n] = shape.expect_dims::<3>("allred")?;
        if ways < 2 {
            return Err(CompileError::Unsupported(format!(
                "`allred` needs at least 2 inputs, got {ways}"
            )));
        }
        // Staged at once: one inbound input tile, the accumulator's
        // outbound staging, and one radd-staged tile.
        validate_copy("allred", machine, m, n, &cfg.as_gemm("allred")?, 3)
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        copy_candidates(self, machine, shape)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [ways, m, n] = shape.expect_dims::<3>("allred")?;
        if ways < 2 {
            return Err(CompileError::Unsupported(format!(
                "`allred` needs at least 2 inputs, got {ways}"
            )));
        }
        build_all_reduce_with(ways, m, n, cfg.as_gemm("allred")?)
    }

    fn estimate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Option<CostEstimate> {
        let [ways, m, n] = shape.expect_dims::<3>("allred").ok()?;
        comm_estimate(m, n, ways, cfg, machine)
    }
}

/// Build the all-reduce program `Y = X0 + … + X{ways-1}` with the
/// default mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when `ways < 2` or the default mapping is
/// invalid for this machine/shape combination.
pub fn build_all_reduce(
    ways: usize,
    m: usize,
    n: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[ways, m, n]);
    let cfg = AllReduceSpace.default_for(machine);
    AllReduceSpace.validate(machine, &shape, &cfg)?;
    AllReduceSpace.build(&shape, &cfg)
}

/// Build the all-reduce program with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_all_reduce_with(
    ways: usize,
    m: usize,
    n: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    common::register_vec_store(&mut reg, "xin")?;
    common::register_vec_store(&mut reg, "xout")?;
    register_accumulate(&mut reg, "radd")?;

    let mut params = vec![p("Y", Privilege::Write)];
    for i in 0..ways {
        params.push(p(&format!("X{i}"), Privilege::Read));
    }

    let mut host_body = vec![
        Stmt::Tunable { name: "U".into() },
        Stmt::Tunable { name: "V".into() },
        Stmt::Let {
            name: "M".into(),
            value: SExpr::shape("Y", 0),
        },
        Stmt::Let {
            name: "N".into(),
            value: SExpr::shape("Y", 1),
        },
        Stmt::PartitionBlocks {
            name: "Yp".into(),
            tensor: "Y".into(),
            tile_rows: v("U"),
            tile_cols: v("V"),
        },
    ];
    for i in 0..ways {
        host_body.push(Stmt::PartitionBlocks {
            name: format!("X{i}p"),
            tensor: format!("X{i}"),
            tile_rows: v("U"),
            tile_cols: v("V"),
        });
    }
    let mut launch_args = vec![piece("Yp", vec![v("i"), v("j")])];
    for i in 0..ways {
        launch_args.push(piece(&format!("X{i}p"), vec![v("i"), v("j")]));
    }
    host_body.push(Stmt::PRange {
        vars: vec!["i".into(), "j".into()],
        extents: vec![v("M") / v("U"), v("N") / v("V")],
        body: vec![Stmt::Launch {
            task: "allred".into(),
            args: launch_args,
        }],
    });
    reg.register(TaskVariant {
        task: "allred".into(),
        name: "allred_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: host_body,
    })?;

    // Block level: seed the accumulator from X0, fold the remaining
    // inputs in ascending order, stage the result out. The fixed fold
    // order makes the sum independent of the tiling.
    let mut block_body = vec![
        Stmt::Let {
            name: "M".into(),
            value: SExpr::shape("Y", 0),
        },
        Stmt::Let {
            name: "N".into(),
            value: SExpr::shape("Y", 1),
        },
        Stmt::MakeTensor {
            name: "T".into(),
            rows: v("M"),
            cols: v("N"),
            dtype: DType::F16,
        },
        Stmt::Launch {
            task: "xin".into(),
            args: vec![t("X0"), t("T")],
        },
    ];
    for i in 1..ways {
        block_body.push(Stmt::Launch {
            task: "radd".into(),
            args: vec![t("T"), t(&format!("X{i}"))],
        });
    }
    block_body.push(Stmt::Launch {
        task: "xout".into(),
        args: vec![t("T"), t("Y")],
    });
    reg.register(TaskVariant {
        task: "allred".into(),
        name: "allred_block".into(),
        kind: VariantKind::Inner,
        params,
        body: block_body,
    })?;

    let gn = vec![MemLevel::Global; ways + 1];
    let mut instances = vec![
        TaskMapping::new("allred_host", "allred_host", ProcLevel::Host, gn.clone())
            .tunable("U", cfg.u as i64)
            .tunable("V", cfg.v as i64)
            .calls(&["allred_block"])
            .entrypoint(),
        TaskMapping::new("allred_block", "allred_block", ProcLevel::Block, gn).calls(&[
            "xin_tile",
            "radd_tile",
            "xout_tile",
        ]),
    ];
    instances.extend(vec_load_mappings("xin", cfg.wgs as i64));
    instances.extend(accumulate_mappings("radd", cfg.wgs as i64));
    instances.extend(common::vec_store_mappings("xout", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let mut args = vec![EntryArg {
        name: "Y".into(),
        rows: m,
        cols: n,
        dtype: DType::F16,
    }];
    for i in 0..ways {
        args.push(EntryArg {
            name: format!("X{i}"),
            rows: m,
            cols: n,
            dtype: DType::F16,
        });
    }
    Ok((reg, mapping, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_builds_and_validates() {
        let machine = MachineConfig::test_gpu();
        let (reg, mapping, args) = build_transfer(128, 128, &machine).unwrap();
        assert!(reg.variant("xfer_host").is_ok());
        assert_eq!(mapping.entry().instance, "xfer_host");
        assert_eq!(args.len(), 2);
        let err = build_transfer(100, 128, &machine);
        assert!(matches!(err, Err(CompileError::Partition(_))), "{err:?}");
    }

    #[test]
    fn halo_handles_thin_bands() {
        let machine = MachineConfig::test_gpu();
        let (reg, mapping, args) = build_halo(64, 256, &machine).unwrap();
        assert!(reg.variant("halo_host").is_ok());
        assert_eq!(mapping.entry().instance, "halo_host");
        assert_eq!(args[0].rows, 64);
        assert_eq!(args[0].cols, 256);
    }

    #[test]
    fn all_reduce_builds_for_two_and_four_ways() {
        let machine = MachineConfig::test_gpu();
        for ways in [2usize, 4] {
            let (reg, mapping, args) = build_all_reduce(ways, 128, 128, &machine).unwrap();
            assert!(reg.variant("allred_host").is_ok());
            assert_eq!(mapping.entry().instance, "allred_host");
            assert_eq!(args.len(), ways + 1);
        }
        assert!(matches!(
            build_all_reduce(1, 128, 128, &machine),
            Err(CompileError::Unsupported(_))
        ));
        assert_eq!(all_reduce_flops(4, 8, 8), 192.0);
    }

    #[test]
    fn spaces_enumerate_deterministic_valid_candidates() {
        let machine = MachineConfig::h100_sxm5();
        for (space, shape) in [
            (
                &TransferSpace as &dyn MappingSpace,
                Shape::of(&[1024, 1024]),
            ),
            (&HaloSpace as &dyn MappingSpace, Shape::of(&[64, 1024])),
            (
                &AllReduceSpace as &dyn MappingSpace,
                Shape::of(&[2, 1024, 1024]),
            ),
        ] {
            let cands = space.candidates(&machine, &shape);
            assert!(!cands.is_empty(), "{} has candidates", space.entry());
            assert_eq!(cands, space.candidates(&machine, &shape));
            for c in &cands {
                assert!(space.validate(&machine, &shape, c).is_ok());
            }
            let default = space.default_for(&machine);
            assert!(space.validate(&machine, &shape, &default).is_ok());
        }
    }

    #[test]
    fn comm_estimates_are_finite_and_bandwidth_bound() {
        let machine = MachineConfig::h100_sxm5();
        let shape = Shape::of(&[1024, 1024]);
        let cfg = TransferSpace.default_for(&machine);
        let est = TransferSpace.estimate(&machine, &shape, &cfg).unwrap();
        assert!(est.cycles.is_finite() && est.cycles > 0.0);
        assert_eq!(est.wgmma_flops, 0.0);
        assert!((est.hbm_bytes - 2.0 * tensor_bytes(1024, 1024)).abs() < 1e-9);
        // A 4-way all-reduce moves more bytes than a transfer.
        let ar = AllReduceSpace
            .estimate(&machine, &Shape::of(&[4, 1024, 1024]), &cfg)
            .unwrap();
        assert!(ar.hbm_bytes > est.hbm_bytes);
    }

    #[test]
    fn transfer_mapping_space_smem_budget_is_typed() {
        // A tile too large for the test GPU's 64 KiB shared memory.
        let machine = MachineConfig::test_gpu();
        let cfg = MappingConfig::Gemm(GemmConfig {
            u: 256,
            v: 256,
            ..GemmConfig::test()
        });
        let err = TransferSpace.validate(&machine, &Shape::of(&[256, 256]), &cfg);
        assert!(
            matches!(err, Err(CompileError::OutOfSharedMemory { .. })),
            "{err:?}"
        );
    }
}
