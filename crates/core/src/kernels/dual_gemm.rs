//! Dual-GEMM (paper Fig. 13c): `C = A·B1 + A·B2` in one kernel, the core
//! of Gated Linear Units. The A tile is loaded once per iteration and the
//! two accumulating GEMMs share it; the compiler overlaps the `B2` load
//! with the first GEMM because only sequential semantics constrain it —
//! the behaviour Triton misses (§5.2).

use crate::error::CompileError;
use crate::front::ast::{Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{
    gemm_family_candidates, validate_gemm_family, GemmFootprint, MappingConfig, MappingSpace, Shape,
};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs: two GEMMs.
#[must_use]
pub fn flops(m: usize, n: usize, k: usize) -> f64 {
    4.0 * m as f64 * n as f64 * k as f64
}

/// The Dual-GEMM mapping space: shape `[m, n, k]`. Each pipeline stage
/// carries three operand tiles (`A`, `B1`, `B2`), which the validator's
/// footprint accounts for — on the H100 budget that caps the pipeline at
/// depth 2, exactly the hand-tuned clamp the builder used to hard-code.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualGemmSpace;

impl MappingSpace for DualGemmSpace {
    fn entry(&self) -> &'static str {
        "dual"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        let mut cfg = GemmConfig::for_machine(machine);
        // Three operand buffers per stage: depth 2 is the deepest pipeline
        // that fits shared memory.
        cfg.pipeline = cfg.pipeline.min(2);
        MappingConfig::Gemm(cfg)
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("dual")?;
        let c = cfg.as_gemm("dual")?;
        validate_gemm_family(
            "dual",
            machine,
            m,
            n,
            k,
            &c,
            GemmFootprint {
                b_tiles: 2,
                extra_bytes: 0,
            },
        )
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        // `W` is structural here: it interleaves the B1/B2 accumulations,
        // so re-tiling K would change rounding, not just time.
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        gemm_family_candidates(self, machine, shape, default, true, false)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("dual")?;
        build_with(m, n, k, cfg.as_gemm("dual")?)
    }
}

/// Build the Dual-GEMM program with the default mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination.
pub fn build(
    m: usize,
    n: usize,
    k: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, n, k]);
    let cfg = DualGemmSpace.default_for(machine);
    DualGemmSpace.validate(machine, &shape, &cfg)?;
    DualGemmSpace.build(&shape, &cfg)
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    m: usize,
    n: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_mma_chain(&mut reg, "gemm", crate::front::ast::LeafFn::MmaAccum)?;

    let params = vec![
        p("C", Privilege::ReadWrite),
        p("A", Privilege::Read),
        p("B1", Privilege::Read),
        p("B2", Privilege::Read),
    ];

    reg.register(TaskVariant {
        task: "dual".into(),
        name: "dual_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("U"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "B1p".into(),
                tensor: "B1".into(),
                tile_rows: v("K"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "B2p".into(),
                tensor: "B2".into(),
                tile_rows: v("K"),
                tile_cols: v("V"),
            },
            Stmt::PRange {
                vars: vec!["i".into(), "j".into()],
                extents: vec![v("M") / v("U"), v("N") / v("V")],
                body: vec![Stmt::Launch {
                    task: "dual".into(),
                    args: vec![
                        piece("Cp", vec![v("i"), v("j")]),
                        piece("Ap", vec![v("i"), SExpr::lit(0)]),
                        piece("B1p", vec![SExpr::lit(0), v("j")]),
                        piece("B2p", vec![SExpr::lit(0), v("j")]),
                    ],
                }],
            },
        ],
    })?;

    reg.register(TaskVariant {
        task: "dual".into(),
        name: "dual_block".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "W".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::PartitionBlocks {
                name: "B1p".into(),
                tensor: "B1".into(),
                tile_rows: v("W"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "B2p".into(),
                tensor: "B2".into(),
                tile_rows: v("W"),
                tile_cols: v("N"),
            },
            Stmt::MakeTensor {
                name: "Cacc".into(),
                rows: v("M"),
                cols: v("N"),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "clear".into(),
                args: vec![t("Cacc")],
            },
            Stmt::SRange {
                var: "k".into(),
                extent: SExpr::cdiv(v("K"), v("W")),
                body: vec![Stmt::Launch {
                    task: "dual".into(),
                    args: vec![
                        t("Cacc"),
                        piece("Ap", vec![SExpr::lit(0), v("k")]),
                        piece("B1p", vec![v("k"), SExpr::lit(0)]),
                        piece("B2p", vec![v("k"), SExpr::lit(0)]),
                    ],
                }],
            },
            Stmt::Launch {
                task: "store".into(),
                args: vec![t("Cacc"), t("C")],
            },
        ],
    })?;

    // Tile level: split rows across warpgroups; each warpgroup issues the
    // two GEMMs back-to-back against the shared A tile.
    reg.register(TaskVariant {
        task: "dual".into(),
        name: "dual_tile".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("K"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: "dual".into(),
                    args: vec![
                        piece("Cp", vec![v("w"), SExpr::lit(0)]),
                        piece("Ap", vec![v("w"), SExpr::lit(0)]),
                        t("B1"),
                        t("B2"),
                    ],
                }],
            },
        ],
    })?;

    reg.register(TaskVariant {
        task: "dual".into(),
        name: "dual_wg".into(),
        kind: VariantKind::Inner,
        params,
        body: vec![
            Stmt::Launch {
                task: "gemm".into(),
                args: vec![t("C"), t("A"), t("B1")],
            },
            Stmt::Launch {
                task: "gemm".into(),
                args: vec![t("C"), t("A"), t("B2")],
            },
        ],
    })?;

    let g4 = vec![MemLevel::Global; 4];
    let mut instances = vec![
        TaskMapping::new("dual_host", "dual_host", ProcLevel::Host, g4.clone())
            .tunable("U", cfg.u as i64)
            .tunable("V", cfg.v as i64)
            .calls(&["dual_block"])
            .entrypoint(),
        common::accumulate_block_instance(
            "dual_block",
            "dual_block",
            g4,
            &cfg,
            &["clear_tile", "dual_tile", "store_tile"],
        ),
        TaskMapping::new(
            "dual_tile",
            "dual_tile",
            ProcLevel::Block,
            vec![
                MemLevel::None,
                MemLevel::Shared,
                MemLevel::Shared,
                MemLevel::Shared,
            ],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["dual_wg"]),
        TaskMapping::new(
            "dual_wg",
            "dual_wg",
            ProcLevel::Warpgroup,
            vec![
                MemLevel::Register,
                MemLevel::Shared,
                MemLevel::Shared,
                MemLevel::Shared,
            ],
        )
        .calls(&["gemm_wgmma"]),
    ];
    instances.extend(common::mma_chain_mappings("gemm", MemLevel::Shared));
    instances.extend(common::clear_mappings("clear", cfg.wgs as i64));
    instances.extend(common::store_mappings("store", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B1".into(),
            rows: k,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B2".into(),
            rows: k,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}
