//! The evaluation kernels of the paper, written in the Cypress model:
//! GEMM (Fig. 13a), batched GEMM (13b), Dual-GEMM (13c), GEMM+Reduction
//! (13d), and FlashAttention-2/3 (Fig. 14).

pub mod attention;
pub mod batched;
pub mod chain;
pub mod comm;
pub(crate) mod common;
pub mod cost;
pub mod dual_gemm;
pub mod gemm;
pub mod gemm_reduction;
pub mod reduction;
pub mod space;
