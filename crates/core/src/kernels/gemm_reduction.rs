//! GEMM+Reduction (paper Fig. 13d): `C = A·B` fused with
//! `y(i) = Σ_k A(i,k)` in one kernel. The row-sum runs on the SIMT units
//! while the Tensor Core computes asynchronously; Cypress overlaps them
//! because no event orders them — the behaviour Triton misses by waiting
//! on the Tensor Core and by placing the accumulator in shared memory
//! (§5.2).
//!
//! The reduction output is materialized as per-block-column partials
//! `Y[M, N/V]` (each CTA column writes its own partial sum), preserving
//! the prange no-aliasing rule; a negligible final pass would combine the
//! `N/V` columns.

use crate::error::CompileError;
use crate::front::ast::{LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{
    gemm_family_candidates, validate_gemm_family, GemmFootprint, MappingConfig, MappingSpace, Shape,
};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs (the figure reports GEMM FLOPs; the reduction is
/// O(MK) and not counted, as in the paper).
#[must_use]
pub fn flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// The GEMM+Reduction mapping space: shape `[m, n, k]`. The `V` tile is
/// *structural* here — the partial-sum output `Y` has `N / V` columns —
/// so the space pins it to the machine default and enumerates only the
/// functionally transparent dimensions (wgs/`U`, `W`, pipeline, warp
/// specialization).
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmReductionSpace;

impl MappingSpace for GemmReductionSpace {
    fn entry(&self) -> &'static str {
        "gr"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        MappingConfig::Gemm(GemmConfig::for_machine(machine))
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("gr")?;
        let c = cfg.as_gemm("gr")?;
        validate_gemm_family(
            "gr",
            machine,
            m,
            n,
            k,
            &c,
            GemmFootprint {
                b_tiles: 1,
                // The Y partial column staged through shared on store.
                extra_bytes: c.u * 2,
            },
        )
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        gemm_family_candidates(self, machine, shape, default, false, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("gr")?;
        build_with(m, n, k, cfg.as_gemm("gr")?)
    }
}

/// The GEMM+Reduction mapping space with `V` pinned to an explicit
/// value instead of the machine default.
///
/// `V` is structural for this kernel — the partial-sum output is
/// `Y[M, N/V]` — so a graph-level rewrite that must preserve a specific
/// `Y` shape (the fusion rewriter fuses a GEMM with a standalone
/// row-reduction whose output is `M x 1`, forcing `V = N`) tunes over a
/// space whose every candidate keeps that `V`. The enumerated
/// dimensions (`W`, pipeline depth, warp specialization) remain
/// functionally transparent.
#[derive(Debug, Clone, Copy)]
pub struct PinnedVSpace {
    /// The pinned `V` tile (the fused kernel's output-column tile).
    pub v: usize,
}

impl MappingSpace for PinnedVSpace {
    fn entry(&self) -> &'static str {
        "gr"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        let mut cfg = GemmConfig::for_machine(machine);
        cfg.v = self.v;
        MappingConfig::Gemm(cfg)
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let c = cfg.as_gemm("gr")?;
        if c.v != self.v {
            return Err(CompileError::Unsupported(format!(
                "`gr` V={} is structural here and pinned to {}",
                c.v, self.v
            )));
        }
        GemmReductionSpace.validate(machine, shape, cfg)
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        // `default` already carries the pinned `v`, and `validate`
        // rejects any other, so the shared grid stays pinned.
        gemm_family_candidates(self, machine, shape, default, false, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("gr")?;
        build_with(m, n, k, cfg.as_gemm("gr")?)
    }
}

/// The first `V = v` config for `(machine, shape)` that validates: the
/// pinned default when it fits, otherwise the first valid candidate.
/// `None` when no pinned config is valid on this machine.
#[must_use]
pub fn config_for_pinned_v(machine: &MachineConfig, shape: &Shape, v: usize) -> Option<GemmConfig> {
    crate::kernels::space::default_or_first_candidate(&PinnedVSpace { v }, machine, shape)
        .and_then(|c| c.as_gemm("gr").ok())
}

/// Build the fused GEMM+Reduction program.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination.
pub fn build(
    m: usize,
    n: usize,
    k: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, n, k]);
    let cfg = GemmReductionSpace.default_for(machine);
    GemmReductionSpace.validate(machine, &shape, &cfg)?;
    GemmReductionSpace.build(&shape, &cfg)
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    m: usize,
    n: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_vec_clear(&mut reg, "vclear", 0.0)?;
    common::register_vec_store(&mut reg, "vstore")?;
    common::register_mma_chain(&mut reg, "gemm", LeafFn::MmaAccum)?;
    common::register_leaf(
        &mut reg,
        "rsum",
        vec![p("Y", Privilege::ReadWrite), p("A", Privilege::Read)],
        LeafFn::RowSumAccum,
        &["A", "Y"],
    )?;

    let params = vec![
        p("C", Privilege::ReadWrite),
        p("Y", Privilege::ReadWrite),
        p("A", Privilege::Read),
        p("B", Privilege::Read),
    ];

    reg.register(TaskVariant {
        task: "gr".into(),
        name: "gr_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "Yp".into(),
                tensor: "Y".into(),
                tile_rows: v("U"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("U"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "Bp".into(),
                tensor: "B".into(),
                tile_rows: v("K"),
                tile_cols: v("V"),
            },
            Stmt::PRange {
                vars: vec!["i".into(), "j".into()],
                extents: vec![v("M") / v("U"), v("N") / v("V")],
                body: vec![Stmt::Launch {
                    task: "gr".into(),
                    args: vec![
                        piece("Cp", vec![v("i"), v("j")]),
                        piece("Yp", vec![v("i"), v("j")]),
                        piece("Ap", vec![v("i"), SExpr::lit(0)]),
                        piece("Bp", vec![SExpr::lit(0), v("j")]),
                    ],
                }],
            },
        ],
    })?;

    reg.register(TaskVariant {
        task: "gr".into(),
        name: "gr_block".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "W".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::PartitionBlocks {
                name: "Bp".into(),
                tensor: "B".into(),
                tile_rows: v("W"),
                tile_cols: v("N"),
            },
            Stmt::MakeTensor {
                name: "Cacc".into(),
                rows: v("M"),
                cols: v("N"),
                dtype: DType::F16,
            },
            Stmt::MakeTensor {
                name: "Yacc".into(),
                rows: v("M"),
                cols: SExpr::lit(1),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "clear".into(),
                args: vec![t("Cacc")],
            },
            Stmt::Launch {
                task: "vclear".into(),
                args: vec![t("Yacc")],
            },
            Stmt::SRange {
                var: "k".into(),
                extent: SExpr::cdiv(v("K"), v("W")),
                body: vec![Stmt::Launch {
                    task: "gr".into(),
                    args: vec![
                        t("Cacc"),
                        t("Yacc"),
                        piece("Ap", vec![SExpr::lit(0), v("k")]),
                        piece("Bp", vec![v("k"), SExpr::lit(0)]),
                    ],
                }],
            },
            Stmt::Launch {
                task: "store".into(),
                args: vec![t("Cacc"), t("C")],
            },
            Stmt::Launch {
                task: "vstore".into(),
                args: vec![t("Yacc"), t("Y")],
            },
        ],
    })?;

    reg.register(TaskVariant {
        task: "gr".into(),
        name: "gr_tile".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Yp".into(),
                tensor: "Y".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("K"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: "gr".into(),
                    args: vec![
                        piece("Cp", vec![v("w"), SExpr::lit(0)]),
                        piece("Yp", vec![v("w"), SExpr::lit(0)]),
                        piece("Ap", vec![v("w"), SExpr::lit(0)]),
                        t("B"),
                    ],
                }],
            },
        ],
    })?;

    // Per-warpgroup: the Tensor Core GEMM and the SIMT row-sum, unordered
    // with respect to each other (they only read A).
    reg.register(TaskVariant {
        task: "gr".into(),
        name: "gr_wg".into(),
        kind: VariantKind::Inner,
        params,
        body: vec![
            Stmt::Launch {
                task: "gemm".into(),
                args: vec![t("C"), t("A"), t("B")],
            },
            Stmt::Launch {
                task: "rsum".into(),
                args: vec![t("Y"), t("A")],
            },
        ],
    })?;

    let g4 = vec![MemLevel::Global; 4];
    let mut instances = vec![
        TaskMapping::new("gr_host", "gr_host", ProcLevel::Host, g4.clone())
            .tunable("U", cfg.u as i64)
            .tunable("V", cfg.v as i64)
            .calls(&["gr_block"])
            .entrypoint(),
        common::accumulate_block_instance(
            "gr_block",
            "gr_block",
            g4,
            &cfg,
            &[
                "clear_tile",
                "vclear_tile",
                "gr_tile",
                "store_tile",
                "vstore_tile",
            ],
        ),
        TaskMapping::new(
            "gr_tile",
            "gr_tile",
            ProcLevel::Block,
            vec![
                MemLevel::None,
                MemLevel::None,
                MemLevel::Shared,
                MemLevel::Shared,
            ],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["gr_wg"]),
        TaskMapping::new(
            "gr_wg",
            "gr_wg",
            ProcLevel::Warpgroup,
            vec![
                MemLevel::Register,
                MemLevel::Register,
                MemLevel::Shared,
                MemLevel::Shared,
            ],
        )
        .calls(&["gemm_wgmma", "rsum_leaf"]),
        common::leaf_mapping("rsum", vec![MemLevel::Register, MemLevel::Shared]),
    ];
    instances.extend(common::mma_chain_mappings("gemm", MemLevel::Shared));
    instances.extend(common::clear_mappings("clear", cfg.wgs as i64));
    instances.extend(common::store_mappings("store", cfg.wgs as i64));
    instances.extend(common::vec_clear_mappings("vclear", cfg.wgs as i64));
    instances.extend(common::vec_store_mappings("vstore", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "Y".into(),
            rows: m,
            cols: n / cfg.v,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B".into(),
            rows: k,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}
