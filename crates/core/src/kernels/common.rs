//! Shared task trees used by every evaluation kernel: the `clear` tree
//! (zero-initialize an accumulator down to per-thread register fragments)
//! and the `store` tree (stage an accumulator through shared memory and
//! out to global memory). Both follow the Fig. 5 pattern: block-level
//! decomposition across warpgroups, then the Tensor-Core-mandated `mma`
//! partitions at warp and thread level.

use crate::error::CompileError;
use crate::front::ast::{ArgExpr, LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::TaskMapping;
use crate::front::task::{ParamSig, TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::gemm::GemmConfig;
use cypress_sim::MachineConfig;
use cypress_tensor::partition::{MmaLevel, MmaOperand};
use cypress_tensor::DType;

/// Whether `machine` is an H100-class part (>= 200 KiB shared memory
/// per SM) — the one predicate every kernel's hand-tuned dispatch keys
/// on.
pub(crate) fn is_h100_class(machine: &MachineConfig) -> bool {
    machine.smem_per_sm >= 200 * 1024
}

/// The one machine dispatch every GEMM-family kernel shares: the paper's
/// hand-tuned H100 mapping on H100-class parts, the small unit-test
/// mapping elsewhere. The former per-kernel `for_machine` copies all
/// route through here.
pub(crate) fn default_gemm_config(machine: &MachineConfig) -> GemmConfig {
    if is_h100_class(machine) {
        GemmConfig::h100()
    } else {
        GemmConfig::test()
    }
}

/// The BLOCK-level accumulate instance every GEMM-family kernel uses:
/// binds the K tile `W`, the pipeline depth, and warp specialization
/// from `cfg`.
pub(crate) fn accumulate_block_instance(
    instance: &str,
    variant: &str,
    mems: Vec<MemLevel>,
    cfg: &GemmConfig,
    calls: &[&str],
) -> TaskMapping {
    let mut m = TaskMapping::new(instance, variant, ProcLevel::Block, mems)
        .tunable("W", cfg.w as i64)
        .calls(calls)
        .pipeline(cfg.pipeline);
    if cfg.warpspecialize {
        m = m.warpspecialize();
    }
    m
}

/// The full per-matrix GEMM mapping tree — grid (`gemm_host` variant at
/// `grid_proc` under `grid_instance`) → block → tile plus the shared
/// mma/clear/store trees. Plain GEMM roots it at HOST as the entrypoint;
/// batched GEMM re-binds the same variants one level down (the §3.2
/// reuse).
pub(crate) fn gemm_tree_instances(
    grid_instance: &str,
    grid_proc: ProcLevel,
    entry: bool,
    cfg: &GemmConfig,
) -> Vec<TaskMapping> {
    let g3 = vec![MemLevel::Global; 3];
    let mut grid = TaskMapping::new(grid_instance, "gemm_host", grid_proc, g3.clone())
        .tunable("U", cfg.u as i64)
        .tunable("V", cfg.v as i64)
        .calls(&["gemm_block"]);
    if entry {
        grid = grid.entrypoint();
    }
    let mut instances = vec![
        grid,
        accumulate_block_instance(
            "gemm_block",
            "gemm_block",
            g3,
            cfg,
            &["clear_tile", "gemm_tile", "store_tile"],
        ),
        TaskMapping::new(
            "gemm_tile",
            "gemm_tile",
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared, MemLevel::Shared],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["gemm_wgmma"]),
    ];
    instances.extend(mma_chain_mappings("gemm", MemLevel::Shared));
    instances.extend(clear_mappings("clear", cfg.wgs as i64));
    instances.extend(store_mappings("store", cfg.wgs as i64));
    instances
}

/// Shorthand: tensor parameter signature.
pub(crate) fn p(name: &str, privilege: Privilege) -> ParamSig {
    ParamSig {
        name: name.to_string(),
        dtype: DType::F16,
        privilege,
    }
}

/// Shorthand: whole-tensor argument.
pub(crate) fn t(name: &str) -> ArgExpr {
    ArgExpr::tensor(name)
}

/// Shorthand: partition piece argument.
pub(crate) fn piece(part: &str, idx: Vec<SExpr>) -> ArgExpr {
    ArgExpr::piece(part, idx)
}

/// Shorthand: variable expression.
pub(crate) fn v(name: &str) -> SExpr {
    SExpr::var(name)
}

/// Register the `clear` task tree (prefix allows several independent trees
/// in one program, e.g. clearing both an accumulator and a row-statistic).
pub(crate) fn register_clear(reg: &mut TaskRegistry, task: &str) -> Result<(), CompileError> {
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_tile"),
        kind: VariantKind::Inner,
        params: vec![p("C", Privilege::Write)],
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Cp", vec![v("w"), SExpr::lit(0)])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_wg"),
        kind: VariantKind::Inner,
        params: vec![p("C", Privilege::Write)],
        body: vec![
            Stmt::PartitionMma {
                name: "Cp".into(),
                tensor: "C".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::C,
            },
            Stmt::PRange {
                vars: vec!["q".into()],
                extents: vec![SExpr::lit(4)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Cp", vec![v("q")])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_warp"),
        kind: VariantKind::Inner,
        params: vec![p("C", Privilege::Write)],
        body: vec![
            Stmt::PartitionMma {
                name: "Cp".into(),
                tensor: "C".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::C,
            },
            Stmt::PRange {
                vars: vec!["l".into()],
                extents: vec![SExpr::lit(32)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Cp", vec![v("l")])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params: vec![p("C", Privilege::Write)],
        body: vec![Stmt::CallExternal {
            f: LeafFn::Fill(0.0),
            args: vec![t("C")],
        }],
    })?;
    Ok(())
}

/// Mapping instances for a `clear` tree rooted at the BLOCK level.
pub(crate) fn clear_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::None],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_wg")]),
        TaskMapping::new(
            &format!("{task}_wg"),
            &format!("{task}_wg"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register],
        )
        .calls(&[&format!("{task}_warp")]),
        TaskMapping::new(
            &format!("{task}_warp"),
            &format!("{task}_warp"),
            ProcLevel::Warp,
            vec![MemLevel::Register],
        )
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Thread,
            vec![MemLevel::Register],
        ),
    ]
}

/// Register the `store` task tree: accumulator → shared staging → global.
pub(crate) fn register_store(reg: &mut TaskRegistry, task: &str) -> Result<(), CompileError> {
    let params = vec![p("S", Privilege::Read), p("D", Privilege::Write)];
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_tile"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("S", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("S", 1),
            },
            Stmt::PartitionBlocks {
                name: "Sp".into(),
                tensor: "S".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Dp".into(),
                tensor: "D".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Sp", vec![v("w"), SExpr::lit(0)]),
                        piece("Dp", vec![v("w"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_wg"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::PartitionMma {
                name: "Sp".into(),
                tensor: "S".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::C,
            },
            Stmt::PartitionMma {
                name: "Dp".into(),
                tensor: "D".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::C,
            },
            Stmt::PRange {
                vars: vec!["q".into()],
                extents: vec![SExpr::lit(4)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Sp", vec![v("q")]), piece("Dp", vec![v("q")])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_warp"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::PartitionMma {
                name: "Sp".into(),
                tensor: "S".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::C,
            },
            Stmt::PartitionMma {
                name: "Dp".into(),
                tensor: "D".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::C,
            },
            Stmt::PRange {
                vars: vec!["l".into()],
                extents: vec![SExpr::lit(32)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Sp", vec![v("l")]), piece("Dp", vec![v("l")])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params,
        body: vec![Stmt::CallExternal {
            f: LeafFn::CopyExt,
            args: vec![t("S"), t("D")],
        }],
    })?;
    Ok(())
}

/// Mapping instances for a `store` tree rooted at the BLOCK level. The
/// destination is staged through shared memory, which the compiler's
/// copy-out turns into a TMA store.
pub(crate) fn store_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_wg")]),
        TaskMapping::new(
            &format!("{task}_wg"),
            &format!("{task}_wg"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register, MemLevel::Shared],
        )
        .calls(&[&format!("{task}_warp")]),
        TaskMapping::new(
            &format!("{task}_warp"),
            &format!("{task}_warp"),
            ProcLevel::Warp,
            vec![MemLevel::Register, MemLevel::Shared],
        )
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Thread,
            vec![MemLevel::Register, MemLevel::Shared],
        ),
    ]
}

/// Register a column-vector clear tree (`fill` down to per-warpgroup
/// register pieces, no Tensor Core partitioning): used for row statistics
/// and the GEMM+Reduction partial sums.
pub(crate) fn register_vec_clear(
    reg: &mut TaskRegistry,
    task: &str,
    value: f32,
) -> Result<(), CompileError> {
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_tile"),
        kind: VariantKind::Inner,
        params: vec![p("C", Privilege::Write)],
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![piece("Cp", vec![v("w"), SExpr::lit(0)])],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params: vec![p("C", Privilege::Write)],
        body: vec![Stmt::CallExternal {
            f: LeafFn::Fill(value),
            args: vec![t("C")],
        }],
    })?;
    Ok(())
}

/// Mapping instances for a vector-clear tree.
pub(crate) fn vec_clear_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::None],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register],
        ),
    ]
}

/// Register a column-vector store tree (register pieces → shared staging →
/// global), the vector analogue of `register_store`.
pub(crate) fn register_vec_store(reg: &mut TaskRegistry, task: &str) -> Result<(), CompileError> {
    let params = vec![p("S", Privilege::Read), p("D", Privilege::Write)];
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_tile"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("S", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("S", 1),
            },
            Stmt::PartitionBlocks {
                name: "Sp".into(),
                tensor: "S".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Dp".into(),
                tensor: "D".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Sp", vec![v("w"), SExpr::lit(0)]),
                        piece("Dp", vec![v("w"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params,
        body: vec![Stmt::CallExternal {
            f: LeafFn::CopyExt,
            args: vec![t("S"), t("D")],
        }],
    })?;
    Ok(())
}

/// Mapping instances for a vector-store tree.
pub(crate) fn vec_store_mappings(task: &str, wgs: i64) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_tile"),
            &format!("{task}_tile"),
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared],
        )
        .tunable("WGS", wgs)
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register, MemLevel::Shared],
        ),
    ]
}

/// Register a one-leaf task: `name` with the given parameter privileges
/// and a single `call-external`. Argument order for the call is given by
/// `arg_names` (destination last).
pub(crate) fn register_leaf(
    reg: &mut TaskRegistry,
    task: &str,
    params: Vec<ParamSig>,
    f: LeafFn,
    arg_names: &[&str],
) -> Result<(), CompileError> {
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params,
        body: vec![Stmt::CallExternal {
            f,
            args: arg_names.iter().map(|n| t(n)).collect(),
        }],
    })
}

/// Mapping instance for a warpgroup-level leaf task.
pub(crate) fn leaf_mapping(task: &str, mems: Vec<MemLevel>) -> TaskMapping {
    TaskMapping::new(
        &format!("{task}_leaf"),
        &format!("{task}_leaf"),
        ProcLevel::Warpgroup,
        mems,
    )
}

/// Register the warpgroup→warp→thread `mma` decomposition of a GEMM-like
/// task named `task` (paper Fig. 5a `gemm_inner`/`gemm_thread`), with the
/// given leaf function (plain MMA or transposed-B for attention).
pub(crate) fn register_mma_chain(
    reg: &mut TaskRegistry,
    task: &str,
    leaf: LeafFn,
) -> Result<(), CompileError> {
    let params = vec![
        p("C", Privilege::ReadWrite),
        p("A", Privilege::Read),
        p("B", Privilege::Read),
    ];
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_wgmma"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::PartitionMma {
                name: "Cp".into(),
                tensor: "C".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::C,
            },
            Stmt::PartitionMma {
                name: "Ap".into(),
                tensor: "A".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::A,
            },
            Stmt::PartitionMma {
                name: "Bp".into(),
                tensor: "B".into(),
                level: MmaLevel::Warp,
                operand: MmaOperand::B,
            },
            Stmt::PRange {
                vars: vec!["q".into()],
                extents: vec![SExpr::lit(4)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Cp", vec![v("q")]),
                        piece("Ap", vec![v("q")]),
                        piece("Bp", vec![v("q")]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_warp"),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::PartitionMma {
                name: "Cp".into(),
                tensor: "C".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::C,
            },
            Stmt::PartitionMma {
                name: "Ap".into(),
                tensor: "A".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::A,
            },
            Stmt::PartitionMma {
                name: "Bp".into(),
                tensor: "B".into(),
                level: MmaLevel::Thread,
                operand: MmaOperand::B,
            },
            Stmt::PRange {
                vars: vec!["l".into()],
                extents: vec![SExpr::lit(32)],
                body: vec![Stmt::Launch {
                    task: task.into(),
                    args: vec![
                        piece("Cp", vec![v("l")]),
                        piece("Ap", vec![v("l")]),
                        piece("Bp", vec![v("l")]),
                    ],
                }],
            },
        ],
    })?;
    reg.register(TaskVariant {
        task: task.into(),
        name: format!("{task}_leaf"),
        kind: VariantKind::Leaf,
        params,
        body: vec![Stmt::CallExternal {
            f: leaf,
            args: vec![t("A"), t("B"), t("C")],
        }],
    })?;
    Ok(())
}

/// Mapping instances for an `mma` chain rooted at the WARPGROUP level.
/// `a_mem` lets attention place the left operand in registers (the `P`
/// matrix lives in fragments).
pub(crate) fn mma_chain_mappings(task: &str, a_mem: MemLevel) -> Vec<TaskMapping> {
    vec![
        TaskMapping::new(
            &format!("{task}_wgmma"),
            &format!("{task}_wgmma"),
            ProcLevel::Warpgroup,
            vec![MemLevel::Register, a_mem, MemLevel::Shared],
        )
        .calls(&[&format!("{task}_warp")]),
        TaskMapping::new(
            &format!("{task}_warp"),
            &format!("{task}_warp"),
            ProcLevel::Warp,
            vec![MemLevel::Register, a_mem, MemLevel::Shared],
        )
        .calls(&[&format!("{task}_leaf")]),
        TaskMapping::new(
            &format!("{task}_leaf"),
            &format!("{task}_leaf"),
            ProcLevel::Thread,
            vec![MemLevel::Register, a_mem, MemLevel::Shared],
        ),
    ]
}
