//! Standalone row-reduction kernel: `Y[i, 0] = Σ_k A[i, k]` — the
//! reduction half of the Fig. 13d GEMM+Reduction kernel as its own
//! launch.
//!
//! A task graph that wants the row statistic of a tensor without the
//! fused kernel expresses it with this primitive next to a plain GEMM;
//! the runtime's fusion rewriter (`cypress-runtime::fuse`) recognizes a
//! GEMM and a row-reduction reading the *same* `A` and collapses the
//! pair back into the fused `gr` kernel. The accumulation walks each
//! row's `k` dimension in ascending order in unrounded f32 register
//! fragments — exactly the order the fused kernel uses — so the fused
//! and unfused row sums are bitwise identical.

use crate::error::CompileError;
use crate::front::ast::{LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{gemm_family_candidates, MappingConfig, MappingSpace, Shape};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs: one add per element.
#[must_use]
pub fn flops(m: usize, k: usize) -> f64 {
    m as f64 * k as f64
}

/// The row-reduction mapping space: shape `[m, k]` for
/// `Y[m,1] = Σ_k A[m,k]`. Only `U`/`wgs`, `W`, pipeline depth, and warp
/// specialization are enumerated; all are functionally transparent
/// because each row's sum is accumulated in ascending `k` order in f32
/// fragments regardless of the tiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionSpace;

impl MappingSpace for ReductionSpace {
    fn entry(&self) -> &'static str {
        "reduce"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        MappingConfig::Gemm(GemmConfig::for_machine(machine))
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, k] = shape.expect_dims::<2>("reduce")?;
        let c = cfg.as_gemm("reduce")?;
        if c.wgs == 0 || c.pipeline == 0 {
            return Err(CompileError::Unsupported(
                "`reduce` mapping needs wgs >= 1 and pipeline >= 1".into(),
            ));
        }
        if c.u != 64 * c.wgs {
            return Err(CompileError::Partition(format!(
                "`reduce` block tile rows {} must equal 64 x wgs",
                c.u
            )));
        }
        for (dim, name, tile, tname) in [(m, "M", c.u, "U"), (k, "K", c.w, "W")] {
            if tile == 0 || dim % tile != 0 {
                return Err(CompileError::Partition(format!(
                    "`reduce` tile {tname}={tile} does not divide {name}={dim}"
                )));
            }
        }
        // Staged per pipeline stage: one A tile; plus the Y staging.
        let elem = 2usize;
        let required = c.pipeline * c.u * c.w * elem + c.u * elem;
        if required > machine.smem_per_sm {
            return Err(CompileError::OutOfSharedMemory {
                required,
                limit: machine.smem_per_sm,
            });
        }
        Ok(())
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        gemm_family_candidates(self, machine, shape, default, false, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, k] = shape.expect_dims::<2>("reduce")?;
        build_with(m, k, cfg.as_gemm("reduce")?)
    }
}

/// Build the row-reduction program with the default mapping for
/// `machine`: `Y[m,1] = Σ_k A[m,k]`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination.
pub fn build(
    m: usize,
    k: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, k]);
    let cfg = ReductionSpace.default_for(machine);
    ReductionSpace.validate(machine, &shape, &cfg)?;
    ReductionSpace.build(&shape, &cfg)
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    m: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    common::register_vec_clear(&mut reg, "vclear", 0.0)?;
    common::register_vec_store(&mut reg, "vstore")?;
    common::register_leaf(
        &mut reg,
        "rsum",
        vec![p("Y", Privilege::ReadWrite), p("A", Privilege::Read)],
        LeafFn::RowSumAccum,
        &["A", "Y"],
    )?;

    let params = vec![p("Y", Privilege::ReadWrite), p("A", Privilege::Read)];

    reg.register(TaskVariant {
        task: "reduce".into(),
        name: "red_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("A", 0),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Yp".into(),
                tensor: "Y".into(),
                tile_rows: v("U"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("U"),
                tile_cols: v("K"),
            },
            Stmt::PRange {
                vars: vec!["i".into()],
                extents: vec![v("M") / v("U")],
                body: vec![Stmt::Launch {
                    task: "reduce".into(),
                    args: vec![
                        piece("Yp", vec![v("i"), SExpr::lit(0)]),
                        piece("Ap", vec![v("i"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    reg.register(TaskVariant {
        task: "reduce".into(),
        name: "red_block".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "W".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("A", 0),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::MakeTensor {
                name: "Yacc".into(),
                rows: v("M"),
                cols: SExpr::lit(1),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "vclear".into(),
                args: vec![t("Yacc")],
            },
            Stmt::SRange {
                var: "k".into(),
                extent: SExpr::cdiv(v("K"), v("W")),
                body: vec![Stmt::Launch {
                    task: "rstep".into(),
                    args: vec![t("Yacc"), piece("Ap", vec![SExpr::lit(0), v("k")])],
                }],
            },
            Stmt::Launch {
                task: "vstore".into(),
                args: vec![t("Yacc"), t("Y")],
            },
        ],
    })?;

    // Tile level: split rows across warpgroups; each warpgroup folds its
    // band of the A tile into its band of the running sums.
    reg.register(TaskVariant {
        task: "rstep".into(),
        name: "rstep_tile".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("A", 0),
            },
            Stmt::Let {
                name: "W".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Yp".into(),
                tensor: "Y".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("W"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: "rsum".into(),
                    args: vec![
                        piece("Yp", vec![v("w"), SExpr::lit(0)]),
                        piece("Ap", vec![v("w"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    let g2 = vec![MemLevel::Global; 2];
    let mut block = TaskMapping::new("red_block", "red_block", ProcLevel::Block, g2.clone())
        .tunable("W", cfg.w as i64)
        .calls(&["vclear_tile", "rstep_tile", "vstore_tile"])
        .pipeline(cfg.pipeline);
    if cfg.warpspecialize {
        block = block.warpspecialize();
    }
    let mut instances = vec![
        TaskMapping::new("red_host", "red_host", ProcLevel::Host, g2)
            .tunable("U", cfg.u as i64)
            .calls(&["red_block"])
            .entrypoint(),
        block,
        TaskMapping::new(
            "rstep_tile",
            "rstep_tile",
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["rsum_leaf"]),
        common::leaf_mapping("rsum", vec![MemLevel::Register, MemLevel::Shared]),
    ];
    instances.extend(common::vec_clear_mappings("vclear", cfg.wgs as i64));
    instances.extend(common::vec_store_mappings("vstore", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "Y".into(),
            rows: m,
            cols: 1,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: m,
            cols: k,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_has_two_params() {
        let (reg, mapping, args) = build(128, 64, &MachineConfig::test_gpu()).unwrap();
        assert!(reg.variant("red_host").is_ok());
        assert_eq!(mapping.entry().instance, "red_host");
        assert_eq!(args.len(), 2);
        assert_eq!(flops(4, 8), 32.0);
    }

    #[test]
    fn indivisible_shapes_are_typed_errors() {
        let err = build(100, 64, &MachineConfig::test_gpu());
        assert!(matches!(err, Err(CompileError::Partition(_))), "{err:?}");
    }
}
