//! Batched GEMM (paper Fig. 13b): `L` independent GEMMs in one launch.
//!
//! Batch dimensions are folded into rows (tensors are rank-2 in this
//! reproduction); the host level peels the batch with a `blocks` partition
//! and a BLOCK-level `prange`, which the scheduler maps onto the third
//! grid dimension.

use crate::error::CompileError;
use crate::front::ast::{Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, v};
use crate::kernels::gemm::GemmConfig;
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs (Fig. 13b reports `L` GEMMs).
#[must_use]
pub fn flops(l: usize, m: usize, n: usize, k: usize) -> f64 {
    2.0 * l as f64 * m as f64 * n as f64 * k as f64
}

/// Build the batched GEMM program: `C[l] = A[l] @ B[l]` for `l < batch`.
///
/// # Panics
///
/// Panics if the statically well-formed program fails to register.
#[must_use]
pub fn build(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    machine: &MachineConfig,
) -> (TaskRegistry, MappingSpec, Vec<EntryArg>) {
    build_with(batch, m, n, k, GemmConfig::for_machine(machine))
        .expect("batched gemm program is well-formed")
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    // The per-matrix levels are exactly the plain GEMM tree.
    crate::kernels::gemm::register_gemm_tasks(&mut reg)?;
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_mma_chain(&mut reg, "gemm", crate::front::ast::LeafFn::MmaAccum)?;

    // Host level: peel the batch.
    reg.register(TaskVariant {
        task: "bgemm".into(),
        name: "bgemm_host".into(),
        kind: VariantKind::Inner,
        params: vec![
            p("C", Privilege::ReadWrite),
            p("A", Privilege::Read),
            p("B", Privilege::Read),
        ],
        body: vec![
            Stmt::Tunable { name: "L".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0) / v("L"),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::Let {
                name: "KL".into(),
                value: SExpr::shape("B", 0) / v("L"),
            },
            Stmt::PartitionBlocks {
                name: "Cb".into(),
                tensor: "C".into(),
                tile_rows: v("M"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Ab".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "Bb".into(),
                tensor: "B".into(),
                tile_rows: v("KL"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["l".into()],
                extents: vec![v("L")],
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        piece("Cb", vec![v("l"), SExpr::lit(0)]),
                        piece("Ab", vec![v("l"), SExpr::lit(0)]),
                        piece("Bb", vec![v("l"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    let mut instances = vec![TaskMapping::new(
        "bgemm_host",
        "bgemm_host",
        ProcLevel::Host,
        vec![MemLevel::Global, MemLevel::Global, MemLevel::Global],
    )
    .tunable("L", batch as i64)
    .calls(&["gemm_grid"])
    .entrypoint()];
    // The per-matrix grid reuses the `gemm_host` *variant* at BLOCK level —
    // the same logical description bound to a different machine point, the
    // reuse §3.2 promises.
    instances.push(
        TaskMapping::new(
            "gemm_grid",
            "gemm_host",
            ProcLevel::Block,
            vec![MemLevel::Global, MemLevel::Global, MemLevel::Global],
        )
        .tunable("U", cfg.u as i64)
        .tunable("V", cfg.v as i64)
        .calls(&["gemm_block"]),
    );
    instances.push({
        let mut mm = TaskMapping::new(
            "gemm_block",
            "gemm_block",
            ProcLevel::Block,
            vec![MemLevel::Global, MemLevel::Global, MemLevel::Global],
        )
        .tunable("W", cfg.w as i64)
        .calls(&["clear_tile", "gemm_tile", "store_tile"])
        .pipeline(cfg.pipeline);
        if cfg.warpspecialize {
            mm = mm.warpspecialize();
        }
        mm
    });
    instances.push(
        TaskMapping::new(
            "gemm_tile",
            "gemm_tile",
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared, MemLevel::Shared],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["gemm_wgmma"]),
    );
    instances.extend(common::mma_chain_mappings("gemm", MemLevel::Shared));
    instances.extend(common::clear_mappings("clear", cfg.wgs as i64));
    instances.extend(common::store_mappings("store", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: batch * m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: batch * m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B".into(),
            rows: batch * k,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}
