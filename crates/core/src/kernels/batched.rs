//! Batched GEMM (paper Fig. 13b): `L` independent GEMMs in one launch.
//!
//! Batch dimensions are folded into rows (tensors are rank-2 in this
//! reproduction); the host level peels the batch with a `blocks` partition
//! and a BLOCK-level `prange`, which the scheduler maps onto the third
//! grid dimension.

use crate::error::CompileError;
use crate::front::ast::{Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, v};
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{
    gemm_family_candidates, validate_gemm_family, GemmFootprint, MappingConfig, MappingSpace, Shape,
};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs (Fig. 13b reports `L` GEMMs).
#[must_use]
pub fn flops(l: usize, m: usize, n: usize, k: usize) -> f64 {
    2.0 * l as f64 * m as f64 * n as f64 * k as f64
}

/// The batched-GEMM mapping space: shape `[l, m, n, k]`. The batch is
/// peeled at the grid level, so the per-matrix space is exactly the GEMM
/// one.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedGemmSpace;

impl MappingSpace for BatchedGemmSpace {
    fn entry(&self) -> &'static str {
        "bgemm"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        MappingConfig::Gemm(GemmConfig::for_machine(machine))
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [l, m, n, k] = shape.expect_dims::<4>("bgemm")?;
        if l == 0 {
            return Err(CompileError::Unsupported(
                "`bgemm` needs a batch of at least 1".into(),
            ));
        }
        let c = cfg.as_gemm("bgemm")?;
        validate_gemm_family(
            "bgemm",
            machine,
            m,
            n,
            k,
            &c,
            GemmFootprint {
                b_tiles: 1,
                extra_bytes: 0,
            },
        )
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        gemm_family_candidates(self, machine, shape, default, true, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [l, m, n, k] = shape.expect_dims::<4>("bgemm")?;
        build_with(l, m, n, k, cfg.as_gemm("bgemm")?)
    }
}

/// Build the batched GEMM program: `C[l] = A[l] @ B[l]` for `l < batch`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination.
pub fn build(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[batch, m, n, k]);
    let cfg = BatchedGemmSpace.default_for(machine);
    BatchedGemmSpace.validate(machine, &shape, &cfg)?;
    BatchedGemmSpace.build(&shape, &cfg)
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    // The per-matrix levels are exactly the plain GEMM tree.
    crate::kernels::gemm::register_gemm_tasks(&mut reg)?;
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_mma_chain(&mut reg, "gemm", crate::front::ast::LeafFn::MmaAccum)?;

    // Host level: peel the batch.
    reg.register(TaskVariant {
        task: "bgemm".into(),
        name: "bgemm_host".into(),
        kind: VariantKind::Inner,
        params: vec![
            p("C", Privilege::ReadWrite),
            p("A", Privilege::Read),
            p("B", Privilege::Read),
        ],
        body: vec![
            Stmt::Tunable { name: "L".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0) / v("L"),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::Let {
                name: "KL".into(),
                value: SExpr::shape("B", 0) / v("L"),
            },
            Stmt::PartitionBlocks {
                name: "Cb".into(),
                tensor: "C".into(),
                tile_rows: v("M"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Ab".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "Bb".into(),
                tensor: "B".into(),
                tile_rows: v("KL"),
                tile_cols: v("N"),
            },
            Stmt::PRange {
                vars: vec!["l".into()],
                extents: vec![v("L")],
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        piece("Cb", vec![v("l"), SExpr::lit(0)]),
                        piece("Ab", vec![v("l"), SExpr::lit(0)]),
                        piece("Bb", vec![v("l"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    let mut instances = vec![TaskMapping::new(
        "bgemm_host",
        "bgemm_host",
        ProcLevel::Host,
        vec![MemLevel::Global, MemLevel::Global, MemLevel::Global],
    )
    .tunable("L", batch as i64)
    .calls(&["gemm_grid"])
    .entrypoint()];
    // The per-matrix grid reuses the `gemm_host` *variant* at BLOCK level —
    // the same logical description bound to a different machine point, the
    // reuse §3.2 promises.
    instances.extend(common::gemm_tree_instances(
        "gemm_grid",
        ProcLevel::Block,
        false,
        &cfg,
    ));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: batch * m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: batch * m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B".into(),
            rows: batch * k,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}
