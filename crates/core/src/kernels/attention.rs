//! FlashAttention-2 and FlashAttention-3 (paper §5.3, Fig. 14) in the
//! Cypress model.
//!
//! FA2: per K/V tile, one `Q Kᵀ` GEMM, an online-softmax update, and a
//! `P V` GEMM — the Tensor Core serializes against the SIMT softmax within
//! a warpgroup, and throughput comes from interleaving multiple consumer
//! warpgroups (the paper's observation that FA2 with extra warpgroups
//! rivals FA3).
//!
//! FA3: the main loop is rewritten (as §5.3 describes) to process two K/V
//! tiles per iteration with two score buffers, issuing the second `Q Kᵀ`
//! *before* the first softmax; the compiler's hazard analysis then only
//! group-waits the first GEMM, overlapping softmax with Tensor Core work.

use crate::error::CompileError;
use crate::front::ast::{LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::space::{MappingConfig, MappingSpace, Shape};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Which attention algorithm to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// FlashAttention-2.
    Fa2,
    /// FlashAttention-3 (two-tile software pipelining).
    Fa3,
}

/// Mapping configuration for attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionConfig {
    /// Row tile (`Br`); `wgs` warpgroups of 64 rows each.
    pub br: usize,
    /// Column (K/V) tile (`Bc`).
    pub bc: usize,
    /// Consumer warpgroups.
    pub wgs: usize,
    /// Pipeline depth for K/V loads.
    pub pipeline: usize,
}

impl AttentionConfig {
    /// H100 FA2 mapping (two consumer warpgroups, 128-row tiles).
    #[must_use]
    pub fn fa2_h100() -> Self {
        AttentionConfig {
            br: 128,
            bc: 128,
            wgs: 2,
            pipeline: 2,
        }
    }

    /// H100 FA3 mapping (smaller K/V tiles, two in flight).
    #[must_use]
    pub fn fa3_h100() -> Self {
        AttentionConfig {
            br: 128,
            bc: 64,
            wgs: 2,
            pipeline: 2,
        }
    }

    /// Small mapping for the unit-test machine.
    #[must_use]
    pub fn test() -> Self {
        AttentionConfig {
            br: 128,
            bc: 64,
            wgs: 2,
            pipeline: 1,
        }
    }

    /// The hand-tuned mapping for `algorithm` on `machine` (H100-class
    /// parts get the paper's FA2/FA3 mappings, the test machine the small
    /// one).
    #[must_use]
    pub fn for_machine(algorithm: Algorithm, machine: &MachineConfig) -> Self {
        if common::is_h100_class(machine) {
            match algorithm {
                Algorithm::Fa2 => AttentionConfig::fa2_h100(),
                Algorithm::Fa3 => AttentionConfig::fa3_h100(),
            }
        } else {
            AttentionConfig::test()
        }
    }
}

/// The attention mapping space: shape `[heads, seq, head_dim]`. The K/V
/// column tile `Bc` is *structural* — it fixes the online-softmax rescale
/// grouping, so different `Bc` values round differently — and is pinned
/// to the algorithm's default; the space enumerates the warpgroup count
/// (row tile `Br = 64·wgs`) and the K/V pipeline depth.
#[derive(Debug, Clone, Copy)]
pub struct AttentionSpace {
    /// Which attention algorithm the space builds.
    pub algorithm: Algorithm,
}

impl MappingSpace for AttentionSpace {
    fn entry(&self) -> &'static str {
        "fa"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        MappingConfig::Attention(AttentionConfig::for_machine(self.algorithm, machine))
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [heads, seq, head_dim] = shape.expect_dims::<3>("fa")?;
        let c = cfg.as_attention("fa")?;
        if heads == 0 || c.wgs == 0 || c.pipeline == 0 {
            return Err(CompileError::Unsupported(
                "`fa` needs heads >= 1, wgs >= 1 and pipeline >= 1".into(),
            ));
        }
        if c.br != 64 * c.wgs {
            return Err(CompileError::Partition(format!(
                "`fa` row tile Br={} must equal 64 x wgs ({} warpgroups of one 64-row band)",
                c.br, c.wgs
            )));
        }
        if c.bc == 0 || c.bc % 16 != 0 {
            return Err(CompileError::Partition(format!(
                "`fa` K/V tile Bc={} must be a positive multiple of 16",
                c.bc
            )));
        }
        let kv_step = match self.algorithm {
            Algorithm::Fa2 => c.bc,
            Algorithm::Fa3 => 2 * c.bc,
        };
        for (tile, tname) in [(c.br, "Br"), (kv_step, "Bc per iteration")] {
            if seq % tile != 0 {
                return Err(CompileError::Partition(format!(
                    "`fa` tile {tname}={tile} does not divide seq={seq}"
                )));
            }
        }
        // Staged per pipeline stage: the K/V tiles (FA3 keeps two pairs
        // in flight) plus the Q tile, which is reloaded per iteration of
        // the K/V loop; the output store staging sits outside the loop.
        let in_flight = match self.algorithm {
            Algorithm::Fa2 => 2,
            Algorithm::Fa3 => 4,
        };
        let required = c.pipeline * (in_flight * c.bc + c.br) * head_dim * 2 + c.br * head_dim * 2;
        if required > machine.smem_per_sm {
            return Err(CompileError::OutOfSharedMemory {
                required,
                limit: machine.smem_per_sm,
            });
        }
        Ok(())
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Attention(default) = self.default_for(machine) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for wgs in [1usize, 2] {
            for pipeline in [1usize, 2, 3] {
                let cfg = MappingConfig::Attention(AttentionConfig {
                    br: 64 * wgs,
                    bc: default.bc,
                    wgs,
                    pipeline,
                });
                if self.validate(machine, shape, &cfg).is_ok() {
                    out.push(cfg);
                }
            }
        }
        out
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [heads, seq, head_dim] = shape.expect_dims::<3>("fa")?;
        build_with(
            self.algorithm,
            heads,
            seq,
            head_dim,
            cfg.as_attention("fa")?,
        )
    }

    /// The entry name `"fa"` covers both algorithms, but their staged
    /// footprints differ (FA3 keeps two K/V pairs in flight), so the
    /// space passes the algorithm to the cost model explicitly.
    fn estimate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Option<crate::kernels::cost::CostEstimate> {
        crate::kernels::cost::estimate_attention(
            shape,
            cfg,
            machine,
            matches!(self.algorithm, Algorithm::Fa3),
        )
    }
}

/// Algorithmic FLOPs of forward attention (Fig. 14's convention):
/// `4 · heads · seq² · head_dim`.
#[must_use]
pub fn flops(heads: usize, seq: usize, head_dim: usize) -> f64 {
    4.0 * heads as f64 * seq as f64 * seq as f64 * head_dim as f64
}

/// Build attention with the default mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination.
pub fn build(
    algorithm: Algorithm,
    heads: usize,
    seq: usize,
    head_dim: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let space = AttentionSpace { algorithm };
    let shape = Shape::of(&[heads, seq, head_dim]);
    let cfg = space.default_for(machine);
    space.validate(machine, &shape, &cfg)?;
    space.build(&shape, &cfg)
}

/// Build with an explicit configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
#[allow(clippy::too_many_lines)]
pub fn build_with(
    algorithm: Algorithm,
    heads: usize,
    seq: usize,
    head_dim: usize,
    cfg: AttentionConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_vec_clear(&mut reg, "vclear", 0.0)?;
    common::register_vec_clear(&mut reg, "nclear", -30000.0)?;

    // Elementwise leaf tasks of the online softmax.
    let scale = 1.0 / (head_dim as f64).sqrt() as f32;
    common::register_leaf(
        &mut reg,
        "szero",
        vec![p("X", Privilege::Write)],
        LeafFn::Fill(0.0),
        &["X"],
    )?;
    common::register_leaf(
        &mut reg,
        "qk",
        vec![
            p("S", Privilege::ReadWrite),
            p("Q", Privilege::Read),
            p("K", Privilege::Read),
        ],
        LeafFn::MmaAccumBT,
        &["Q", "K", "S"],
    )?;
    common::register_leaf(
        &mut reg,
        "sscale",
        vec![p("X", Privilege::ReadWrite)],
        LeafFn::Scale(scale),
        &["X", "X"],
    )?;
    common::register_leaf(
        &mut reg,
        "vcopy",
        vec![p("S", Privilege::Read), p("D", Privilege::Write)],
        LeafFn::CopyExt,
        &["S", "D"],
    )?;
    common::register_leaf(
        &mut reg,
        "rmax",
        vec![p("M", Privilege::ReadWrite), p("S", Privilege::Read)],
        LeafFn::RowMaxAccum,
        &["S", "M"],
    )?;
    common::register_leaf(
        &mut reg,
        "vsub",
        vec![p("X", Privilege::ReadWrite), p("R", Privilege::Read)],
        LeafFn::SubRow,
        &["X", "R", "X"],
    )?;
    common::register_leaf(
        &mut reg,
        "vexp",
        vec![p("X", Privilege::ReadWrite)],
        LeafFn::Exp,
        &["X", "X"],
    )?;
    common::register_leaf(
        &mut reg,
        "vmul",
        vec![p("X", Privilege::ReadWrite), p("R", Privilege::Read)],
        LeafFn::MulRow,
        &["X", "R", "X"],
    )?;
    common::register_leaf(
        &mut reg,
        "rsum",
        vec![p("Y", Privilege::ReadWrite), p("A", Privilege::Read)],
        LeafFn::RowSumAccum,
        &["A", "Y"],
    )?;
    common::register_leaf(
        &mut reg,
        "pv",
        vec![
            p("O", Privilege::ReadWrite),
            p("P", Privilege::Read),
            p("V", Privilege::Read),
        ],
        LeafFn::MmaAccum,
        &["P", "V", "O"],
    )?;
    common::register_leaf(
        &mut reg,
        "fin",
        vec![p("O", Privilege::ReadWrite), p("L", Privilege::Read)],
        LeafFn::DivRow,
        &["O", "L", "O"],
    )?;

    // finish tree: divide O by the softmax denominator, per warpgroup row
    // band.
    reg.register(TaskVariant {
        task: "finish".into(),
        name: "finish_tile".into(),
        kind: VariantKind::Inner,
        params: vec![p("O", Privilege::ReadWrite), p("L", Privilege::Read)],
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("O", 0),
            },
            Stmt::Let {
                name: "D".into(),
                value: SExpr::shape("O", 1),
            },
            Stmt::PartitionBlocks {
                name: "Op".into(),
                tensor: "O".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "Lp".into(),
                tensor: "L".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: "fin".into(),
                    args: vec![
                        piece("Op", vec![v("w"), SExpr::lit(0)]),
                        piece("Lp", vec![v("w"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    // The per-warpgroup online-softmax step (FA2: one tile; FA3: two).
    let softmax_block = |sname: &str| -> Vec<Stmt> {
        vec![
            // Scale the scores, save the old max, fold in the tile max.
            Stmt::Launch {
                task: "sscale".into(),
                args: vec![t(sname)],
            },
            Stmt::Launch {
                task: "vcopy".into(),
                args: vec![t("m"), t("tm")],
            },
            Stmt::Launch {
                task: "rmax".into(),
                args: vec![t("m"), t(sname)],
            },
            // alpha = exp(m_old - m_new), stored in tm.
            Stmt::Launch {
                task: "vsub".into(),
                args: vec![t("tm"), t("m")],
            },
            Stmt::Launch {
                task: "vexp".into(),
                args: vec![t("tm")],
            },
            // Rescale running denominator and output.
            Stmt::Launch {
                task: "vmul".into(),
                args: vec![t("l"), t("tm")],
            },
            Stmt::Launch {
                task: "vmul".into(),
                args: vec![t("O"), t("tm")],
            },
            // P = exp(S - m), fold into l.
            Stmt::Launch {
                task: "vsub".into(),
                args: vec![t(sname), t("m")],
            },
            Stmt::Launch {
                task: "vexp".into(),
                args: vec![t(sname)],
            },
            Stmt::Launch {
                task: "rsum".into(),
                args: vec![t("l"), t(sname)],
            },
        ]
    };

    let step_params_fa2 = vec![
        p("O", Privilege::ReadWrite),
        p("m", Privilege::ReadWrite),
        p("l", Privilege::ReadWrite),
        p("Q", Privilege::Read),
        p("K", Privilege::Read),
        p("V", Privilege::Read),
    ];
    let mut fa2_wg_body = vec![
        Stmt::MakeTensor {
            name: "Sc".into(),
            rows: SExpr::lit(64),
            cols: SExpr::lit(cfg.bc as i64),
            dtype: DType::F16,
        },
        Stmt::MakeTensor {
            name: "tm".into(),
            rows: SExpr::lit(64),
            cols: SExpr::lit(1),
            dtype: DType::F16,
        },
        Stmt::Launch {
            task: "szero".into(),
            args: vec![t("Sc")],
        },
        Stmt::Launch {
            task: "qk".into(),
            args: vec![t("Sc"), t("Q"), t("K")],
        },
    ];
    fa2_wg_body.extend(softmax_block("Sc"));
    fa2_wg_body.push(Stmt::Launch {
        task: "pv".into(),
        args: vec![t("O"), t("Sc"), t("V")],
    });
    reg.register(TaskVariant {
        task: "fstep".into(),
        name: "fstep_wg".into(),
        kind: VariantKind::Inner,
        params: step_params_fa2.clone(),
        body: fa2_wg_body,
    })?;

    let step_params_fa3 = vec![
        p("O", Privilege::ReadWrite),
        p("m", Privilege::ReadWrite),
        p("l", Privilege::ReadWrite),
        p("Q", Privilege::Read),
        p("K0", Privilege::Read),
        p("V0", Privilege::Read),
        p("K1", Privilege::Read),
        p("V1", Privilege::Read),
    ];
    let mut fa3_wg_body = vec![
        Stmt::MakeTensor {
            name: "S0".into(),
            rows: SExpr::lit(64),
            cols: SExpr::lit(cfg.bc as i64),
            dtype: DType::F16,
        },
        Stmt::MakeTensor {
            name: "S1".into(),
            rows: SExpr::lit(64),
            cols: SExpr::lit(cfg.bc as i64),
            dtype: DType::F16,
        },
        Stmt::MakeTensor {
            name: "tm".into(),
            rows: SExpr::lit(64),
            cols: SExpr::lit(1),
            dtype: DType::F16,
        },
        // Both QK^T GEMMs issue before the first softmax: the compiler's
        // group-wait analysis retires only the first when its scores are
        // read, leaving the second in flight (FA3's overlap).
        Stmt::Launch {
            task: "szero".into(),
            args: vec![t("S0")],
        },
        Stmt::Launch {
            task: "qk".into(),
            args: vec![t("S0"), t("Q"), t("K0")],
        },
        Stmt::Launch {
            task: "szero".into(),
            args: vec![t("S1")],
        },
        Stmt::Launch {
            task: "qk".into(),
            args: vec![t("S1"), t("Q"), t("K1")],
        },
    ];
    fa3_wg_body.extend(softmax_block("S0"));
    fa3_wg_body.push(Stmt::Launch {
        task: "pv".into(),
        args: vec![t("O"), t("S0"), t("V0")],
    });
    fa3_wg_body.extend(softmax_block("S1"));
    fa3_wg_body.push(Stmt::Launch {
        task: "pv".into(),
        args: vec![t("O"), t("S1"), t("V1")],
    });
    reg.register(TaskVariant {
        task: "fstep3".into(),
        name: "fstep3_wg".into(),
        kind: VariantKind::Inner,
        params: step_params_fa3.clone(),
        body: fa3_wg_body,
    })?;

    // BLOCK-level step: split rows across warpgroups.
    let make_step_tile = |task: &str, params: &[crate::front::task::ParamSig], kv: usize| {
        let mut body = vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "BR".into(),
                value: SExpr::shape("O", 0),
            },
            Stmt::Let {
                name: "D".into(),
                value: SExpr::shape("O", 1),
            },
            Stmt::PartitionBlocks {
                name: "Op".into(),
                tensor: "O".into(),
                tile_rows: v("BR") / v("WGS"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "mp".into(),
                tensor: "m".into(),
                tile_rows: v("BR") / v("WGS"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "lp".into(),
                tensor: "l".into(),
                tile_rows: v("BR") / v("WGS"),
                tile_cols: SExpr::lit(1),
            },
            Stmt::PartitionBlocks {
                name: "Qp".into(),
                tensor: "Q".into(),
                tile_rows: v("BR") / v("WGS"),
                tile_cols: v("D"),
            },
        ];
        let mut args = vec![
            piece("Op", vec![v("w"), SExpr::lit(0)]),
            piece("mp", vec![v("w"), SExpr::lit(0)]),
            piece("lp", vec![v("w"), SExpr::lit(0)]),
            piece("Qp", vec![v("w"), SExpr::lit(0)]),
        ];
        for i in 0..kv {
            args.push(t(&format!("K{i}")));
            args.push(t(&format!("V{i}")));
        }
        body.push(Stmt::PRange {
            vars: vec!["w".into()],
            extents: vec![v("WGS")],
            body: vec![Stmt::Launch {
                task: task.into(),
                args,
            }],
        });
        (body, params.to_vec())
    };

    // FA2 tile step: rename K/V params to K0/V0 for uniformity.
    let mut fa2_tile_params = step_params_fa2.clone();
    fa2_tile_params[4].name = "K0".into();
    fa2_tile_params[5].name = "V0".into();
    let (fa2_tile_body, fa2_tile_params) = make_step_tile("fstep", &fa2_tile_params, 1);
    reg.register(TaskVariant {
        task: "ftile".into(),
        name: "ftile_fa2".into(),
        kind: VariantKind::Inner,
        params: fa2_tile_params,
        body: fa2_tile_body,
    })?;
    let mut fa3_tile_params = step_params_fa3.clone();
    fa3_tile_params[4].name = "K0".into();
    fa3_tile_params[5].name = "V0".into();
    let (fa3_tile_body, fa3_tile_params) = make_step_tile("fstep3", &fa3_tile_params, 2);
    reg.register(TaskVariant {
        task: "ftile3".into(),
        name: "ftile_fa3".into(),
        kind: VariantKind::Inner,
        params: fa3_tile_params,
        body: fa3_tile_body,
    })?;

    // BLOCK-level attention over one Q row-band.
    let fa_params = vec![
        p("O", Privilege::ReadWrite),
        p("Q", Privilege::Read),
        p("K", Privilege::Read),
        p("V", Privilege::Read),
    ];
    let mut fa_block_body = vec![
        Stmt::Tunable { name: "BC".into() },
        Stmt::Let {
            name: "BR".into(),
            value: SExpr::shape("Q", 0),
        },
        Stmt::Let {
            name: "D".into(),
            value: SExpr::shape("Q", 1),
        },
        Stmt::Let {
            name: "SEQ".into(),
            value: SExpr::shape("K", 0),
        },
        Stmt::PartitionBlocks {
            name: "Kp".into(),
            tensor: "K".into(),
            tile_rows: v("BC"),
            tile_cols: v("D"),
        },
        Stmt::PartitionBlocks {
            name: "Vp".into(),
            tensor: "V".into(),
            tile_rows: v("BC"),
            tile_cols: v("D"),
        },
        Stmt::MakeTensor {
            name: "m".into(),
            rows: v("BR"),
            cols: SExpr::lit(1),
            dtype: DType::F16,
        },
        Stmt::MakeTensor {
            name: "l".into(),
            rows: v("BR"),
            cols: SExpr::lit(1),
            dtype: DType::F16,
        },
        Stmt::MakeTensor {
            name: "Oa".into(),
            rows: v("BR"),
            cols: v("D"),
            dtype: DType::F16,
        },
        Stmt::Launch {
            task: "nclear".into(),
            args: vec![t("m")],
        },
        Stmt::Launch {
            task: "vclear".into(),
            args: vec![t("l")],
        },
        Stmt::Launch {
            task: "clear".into(),
            args: vec![t("Oa")],
        },
    ];
    match algorithm {
        Algorithm::Fa2 => {
            fa_block_body.push(Stmt::SRange {
                var: "j".into(),
                extent: v("SEQ") / v("BC"),
                body: vec![Stmt::Launch {
                    task: "ftile".into(),
                    args: vec![
                        t("Oa"),
                        t("m"),
                        t("l"),
                        t("Q"),
                        piece("Kp", vec![v("j"), SExpr::lit(0)]),
                        piece("Vp", vec![v("j"), SExpr::lit(0)]),
                    ],
                }],
            });
        }
        Algorithm::Fa3 => {
            fa_block_body.push(Stmt::SRange {
                var: "j".into(),
                extent: v("SEQ") / (v("BC") * SExpr::lit(2)),
                body: vec![Stmt::Launch {
                    task: "ftile3".into(),
                    args: vec![
                        t("Oa"),
                        t("m"),
                        t("l"),
                        t("Q"),
                        piece("Kp", vec![v("j") * SExpr::lit(2), SExpr::lit(0)]),
                        piece("Vp", vec![v("j") * SExpr::lit(2), SExpr::lit(0)]),
                        piece(
                            "Kp",
                            vec![v("j") * SExpr::lit(2) + SExpr::lit(1), SExpr::lit(0)],
                        ),
                        piece(
                            "Vp",
                            vec![v("j") * SExpr::lit(2) + SExpr::lit(1), SExpr::lit(0)],
                        ),
                    ],
                }],
            });
        }
    }
    fa_block_body.push(Stmt::Launch {
        task: "finish".into(),
        args: vec![t("Oa"), t("l")],
    });
    fa_block_body.push(Stmt::Launch {
        task: "store".into(),
        args: vec![t("Oa"), t("O")],
    });
    reg.register(TaskVariant {
        task: "fa".into(),
        name: "fa_block".into(),
        kind: VariantKind::Inner,
        params: fa_params.clone(),
        body: fa_block_body,
    })?;

    // Head level: row bands of Q/O.
    reg.register(TaskVariant {
        task: "fa".into(),
        name: "fa_head".into(),
        kind: VariantKind::Inner,
        params: fa_params.clone(),
        body: vec![
            Stmt::Tunable { name: "BR".into() },
            Stmt::Let {
                name: "SEQ".into(),
                value: SExpr::shape("Q", 0),
            },
            Stmt::Let {
                name: "D".into(),
                value: SExpr::shape("Q", 1),
            },
            Stmt::PartitionBlocks {
                name: "Qp".into(),
                tensor: "Q".into(),
                tile_rows: v("BR"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "Op".into(),
                tensor: "O".into(),
                tile_rows: v("BR"),
                tile_cols: v("D"),
            },
            Stmt::PRange {
                vars: vec!["i".into()],
                extents: vec![v("SEQ") / v("BR")],
                body: vec![Stmt::Launch {
                    task: "fa".into(),
                    args: vec![
                        piece("Op", vec![v("i"), SExpr::lit(0)]),
                        piece("Qp", vec![v("i"), SExpr::lit(0)]),
                        t("K"),
                        t("V"),
                    ],
                }],
            },
        ],
    })?;

    // Host level: one band of rows per head.
    reg.register(TaskVariant {
        task: "fa".into(),
        name: "fa_host".into(),
        kind: VariantKind::Inner,
        params: fa_params,
        body: vec![
            Stmt::Tunable { name: "H".into() },
            Stmt::Let {
                name: "SEQ".into(),
                value: SExpr::shape("Q", 0) / v("H"),
            },
            Stmt::Let {
                name: "D".into(),
                value: SExpr::shape("Q", 1),
            },
            Stmt::PartitionBlocks {
                name: "Qh".into(),
                tensor: "Q".into(),
                tile_rows: v("SEQ"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "Oh".into(),
                tensor: "O".into(),
                tile_rows: v("SEQ"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "Kh".into(),
                tensor: "K".into(),
                tile_rows: v("SEQ"),
                tile_cols: v("D"),
            },
            Stmt::PartitionBlocks {
                name: "Vh".into(),
                tensor: "V".into(),
                tile_rows: v("SEQ"),
                tile_cols: v("D"),
            },
            Stmt::PRange {
                vars: vec!["h".into()],
                extents: vec![v("H")],
                body: vec![Stmt::Launch {
                    task: "fa".into(),
                    args: vec![
                        piece("Oh", vec![v("h"), SExpr::lit(0)]),
                        piece("Qh", vec![v("h"), SExpr::lit(0)]),
                        piece("Kh", vec![v("h"), SExpr::lit(0)]),
                        piece("Vh", vec![v("h"), SExpr::lit(0)]),
                    ],
                }],
            },
        ],
    })?;

    // ---- mapping ----------------------------------------------------------
    let g4 = vec![MemLevel::Global; 4];
    let reg_mem = MemLevel::Register;
    let sh = MemLevel::Shared;
    let (tile_task, tile_var, step_task, step_var, kv) = match algorithm {
        Algorithm::Fa2 => ("ftile", "ftile_fa2", "fstep", "fstep_wg", 1usize),
        Algorithm::Fa3 => ("ftile3", "ftile_fa3", "fstep3", "fstep3_wg", 2usize),
    };
    let mut step_tile_mems = vec![MemLevel::None, MemLevel::None, MemLevel::None, sh];
    for _ in 0..kv {
        step_tile_mems.push(sh);
        step_tile_mems.push(sh);
    }
    let mut step_wg_mems = vec![reg_mem, reg_mem, reg_mem, sh];
    for _ in 0..kv {
        step_wg_mems.push(sh);
        step_wg_mems.push(sh);
    }

    let mut instances = vec![
        TaskMapping::new("fa_host", "fa_host", ProcLevel::Host, g4.clone())
            .tunable("H", heads as i64)
            .calls(&["fa_head"])
            .entrypoint(),
        TaskMapping::new("fa_head", "fa_head", ProcLevel::Block, g4.clone())
            .tunable("BR", cfg.br as i64)
            .calls(&["fa_block"]),
        TaskMapping::new("fa_block", "fa_block", ProcLevel::Block, g4)
            .tunable("BC", cfg.bc as i64)
            .calls(&[
                "nclear_tile",
                "vclear_tile",
                "clear_tile",
                &format!("{tile_task}_tile"),
                "finish_tile",
                "store_tile",
            ])
            .warpspecialize()
            .pipeline(cfg.pipeline),
        TaskMapping::new(
            &format!("{tile_task}_tile"),
            tile_var,
            ProcLevel::Block,
            step_tile_mems,
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&[&format!("{step_task}_wg")]),
        TaskMapping::new(
            &format!("{step_task}_wg"),
            step_var,
            ProcLevel::Warpgroup,
            step_wg_mems,
        )
        .calls(&[
            "szero_leaf",
            "qk_leaf",
            "sscale_leaf",
            "vcopy_leaf",
            "rmax_leaf",
            "vsub_leaf",
            "vexp_leaf",
            "vmul_leaf",
            "rsum_leaf",
            "pv_leaf",
        ]),
        TaskMapping::new(
            "finish_tile",
            "finish_tile",
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::None],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["fin_leaf"]),
        common::leaf_mapping("fin", vec![reg_mem, reg_mem]),
        common::leaf_mapping("szero", vec![reg_mem]),
        common::leaf_mapping("qk", vec![reg_mem, sh, sh]),
        common::leaf_mapping("sscale", vec![reg_mem]),
        common::leaf_mapping("vcopy", vec![reg_mem, reg_mem]),
        common::leaf_mapping("rmax", vec![reg_mem, reg_mem]),
        common::leaf_mapping("vsub", vec![reg_mem, reg_mem]),
        common::leaf_mapping("vexp", vec![reg_mem]),
        common::leaf_mapping("vmul", vec![reg_mem, reg_mem]),
        common::leaf_mapping("rsum", vec![reg_mem, reg_mem]),
        common::leaf_mapping("pv", vec![reg_mem, reg_mem, sh]),
    ];
    instances.extend(common::clear_mappings("clear", cfg.wgs as i64));
    instances.extend(common::store_mappings("store", cfg.wgs as i64));
    instances.extend(common::vec_clear_mappings("vclear", cfg.wgs as i64));
    instances.extend(common::vec_clear_mappings("nclear", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let rows = heads * seq;
    let args = vec![
        EntryArg {
            name: "O".into(),
            rows,
            cols: head_dim,
            dtype: DType::F16,
        },
        EntryArg {
            name: "Q".into(),
            rows,
            cols: head_dim,
            dtype: DType::F16,
        },
        EntryArg {
            name: "K".into(),
            rows,
            cols: head_dim,
            dtype: DType::F16,
        },
        EntryArg {
            name: "V".into(),
            rows,
            cols: head_dim,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}
