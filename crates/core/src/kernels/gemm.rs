//! The Hopper GEMM of paper Fig. 5, written in the Cypress programming
//! model: hierarchical blocking HOST → BLOCK → WARPGROUP → WARP → THREAD,
//! with the mapping specification carrying tile sizes, memory placement,
//! warp specialization and pipeline depth.

use crate::error::CompileError;
use crate::front::ast::{SExpr, Stmt};
use crate::front::machine::ProcLevel;
use crate::front::mapping::MappingSpec;
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, v};
use crate::kernels::space::{
    gemm_family_candidates, validate_gemm_family, GemmFootprint, MappingConfig, MappingSpace, Shape,
};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Tunable configuration of the GEMM mapping (Fig. 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Block tile rows (`U`).
    pub u: usize,
    /// Block tile columns (`V`).
    pub v: usize,
    /// K-reduction tile width (`W`).
    pub w: usize,
    /// Consumer warpgroups per block (`WGS`).
    pub wgs: usize,
    /// Software pipeline depth.
    pub pipeline: usize,
    /// Warp-specialize the block-level task.
    pub warpspecialize: bool,
}

impl GemmConfig {
    /// The paper's hand-tuned H100 mapping.
    #[must_use]
    pub fn h100() -> Self {
        GemmConfig {
            u: 128,
            v: 256,
            w: 64,
            wgs: 2,
            pipeline: 3,
            warpspecialize: true,
        }
    }

    /// A small mapping that fits the unit-test machine.
    #[must_use]
    pub fn test() -> Self {
        GemmConfig {
            u: 64,
            v: 64,
            w: 32,
            wgs: 1,
            pipeline: 2,
            warpspecialize: true,
        }
    }

    /// Pick a mapping appropriate for `machine` (the shared GEMM-family
    /// dispatch in `crate::kernels::common`).
    #[must_use]
    pub fn for_machine(machine: &MachineConfig) -> Self {
        common::default_gemm_config(machine)
    }
}

/// The GEMM mapping space: shape `[m, n, k]`, enumerating the `V`/`W`
/// tiles, the pipeline depth, and warp specialization (the warpgroup
/// count and the tied row tile `U = 64·wgs` stay at the hand-tuned
/// default).
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmSpace;

impl MappingSpace for GemmSpace {
    fn entry(&self) -> &'static str {
        "gemm"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        MappingConfig::Gemm(GemmConfig::for_machine(machine))
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("gemm")?;
        let c = cfg.as_gemm("gemm")?;
        validate_gemm_family(
            "gemm",
            machine,
            m,
            n,
            k,
            &c,
            GemmFootprint {
                b_tiles: 1,
                extra_bytes: 0,
            },
        )
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        gemm_family_candidates(self, machine, shape, default, true, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n, k] = shape.expect_dims::<3>("gemm")?;
        build_with(m, n, k, cfg.as_gemm("gemm")?)
    }
}

/// Algorithmic FLOPs of a GEMM (what Fig. 13 reports).
#[must_use]
pub fn flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Build the GEMM program for `C[m,n] = A[m,k] @ B[k,n]` with the default
/// mapping for `machine`.
///
/// # Errors
///
/// Returns [`CompileError`] when the default mapping is invalid for this
/// machine/shape combination (tiles that do not divide the problem, or a
/// working set beyond the machine's shared memory).
pub fn build(
    m: usize,
    n: usize,
    k: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, n, k]);
    let cfg = GemmSpace.default_for(machine);
    GemmSpace.validate(machine, &shape, &cfg)?;
    GemmSpace.build(&shape, &cfg)
}

/// Build the GEMM program with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] if the task tree or mapping is malformed
/// (e.g. tile sizes that do not divide the problem).
pub fn build_with(
    m: usize,
    n: usize,
    k: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    register_gemm_tasks(&mut reg)?;
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_mma_chain(&mut reg, "gemm", crate::front::ast::LeafFn::MmaAccum)?;

    let mapping = gemm_mapping(cfg)?;
    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B".into(),
            rows: k,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}

/// Register the host/block/tile levels of the `gemm` task (the `mma` chain
/// below the warpgroup level is shared with other kernels).
pub(crate) fn register_gemm_tasks(reg: &mut TaskRegistry) -> Result<(), CompileError> {
    use crate::front::ast::Privilege;
    let params = vec![
        p("C", Privilege::ReadWrite),
        p("A", Privilege::Read),
        p("B", Privilege::Read),
    ];

    // Fig. 5a `gemm_host`: tile C into U x V blocks, launch a parallel grid.
    reg.register(TaskVariant {
        task: "gemm".into(),
        name: "gemm_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("U"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "Bp".into(),
                tensor: "B".into(),
                tile_rows: v("K"),
                tile_cols: v("V"),
            },
            Stmt::PRange {
                vars: vec!["i".into(), "j".into()],
                extents: vec![v("M") / v("U"), v("N") / v("V")],
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        piece("Cp", vec![v("i"), v("j")]),
                        piece("Ap", vec![v("i"), SExpr::lit(0)]),
                        piece("Bp", vec![SExpr::lit(0), v("j")]),
                    ],
                }],
            },
        ],
    })?;

    // Fig. 5a `gemm_block`: accumulator + sequential K-reduction.
    reg.register(TaskVariant {
        task: "gemm".into(),
        name: "gemm_block".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "W".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::PartitionBlocks {
                name: "Bp".into(),
                tensor: "B".into(),
                tile_rows: v("W"),
                tile_cols: v("N"),
            },
            Stmt::MakeTensor {
                name: "Cacc".into(),
                rows: v("M"),
                cols: v("N"),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "clear".into(),
                args: vec![common::t("Cacc")],
            },
            Stmt::SRange {
                var: "k".into(),
                extent: SExpr::cdiv(v("K"), v("W")),
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        common::t("Cacc"),
                        piece("Ap", vec![SExpr::lit(0), v("k")]),
                        piece("Bp", vec![v("k"), SExpr::lit(0)]),
                    ],
                }],
            },
            Stmt::Launch {
                task: "store".into(),
                args: vec![common::t("Cacc"), common::t("C")],
            },
        ],
    })?;

    // Fig. 5a `gemm_tile`: split rows across warpgroups.
    reg.register(TaskVariant {
        task: "gemm".into(),
        name: "gemm_tile".into(),
        kind: VariantKind::Inner,
        params,
        body: vec![
            Stmt::Tunable { name: "WGS".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("N"),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("M") / v("WGS"),
                tile_cols: v("K"),
            },
            Stmt::PRange {
                vars: vec!["w".into()],
                extents: vec![v("WGS")],
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        piece("Cp", vec![v("w"), SExpr::lit(0)]),
                        piece("Ap", vec![v("w"), SExpr::lit(0)]),
                        common::t("B"),
                    ],
                }],
            },
        ],
    })?;
    Ok(())
}

/// Assemble the GEMM mapping specification (Fig. 5b).
pub(crate) fn gemm_mapping(cfg: GemmConfig) -> Result<MappingSpec, CompileError> {
    MappingSpec::new(common::gemm_tree_instances(
        "gemm_host",
        ProcLevel::Host,
        true,
        &cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        assert_eq!(GemmConfig::h100().wgs, 2);
        assert_eq!(
            GemmConfig::for_machine(&MachineConfig::h100_sxm5()),
            GemmConfig::h100()
        );
        assert_eq!(
            GemmConfig::for_machine(&MachineConfig::test_gpu()),
            GemmConfig::test()
        );
    }

    #[test]
    fn builds_registry_and_mapping() {
        let (reg, mapping, args) = build(128, 128, 64, &MachineConfig::test_gpu()).unwrap();
        assert!(reg.variant("gemm_host").is_ok());
        assert!(reg.variant("gemm_wgmma").is_ok());
        assert_eq!(mapping.entry().instance, "gemm_host");
        assert_eq!(args.len(), 3);
        assert_eq!(flops(2, 3, 4), 48.0);
    }

    #[test]
    fn invalid_shape_is_a_typed_error_not_a_panic() {
        // 100 is not divisible by the default 64-row tile.
        let err = build(100, 128, 64, &MachineConfig::test_gpu());
        assert!(matches!(err, Err(CompileError::Partition(_))), "{err:?}");
    }

    #[test]
    fn space_default_matches_for_machine() {
        for machine in [MachineConfig::test_gpu(), MachineConfig::h100_sxm5()] {
            assert_eq!(
                GemmSpace.default_for(&machine),
                MappingConfig::Gemm(GemmConfig::for_machine(&machine))
            );
        }
    }

    #[test]
    fn candidates_include_the_default_and_are_deterministic() {
        let machine = MachineConfig::h100_sxm5();
        let shape = Shape::of(&[4096, 4096, 4096]);
        let cands = GemmSpace.candidates(&machine, &shape);
        assert!(cands.contains(&GemmSpace.default_for(&machine)));
        assert_eq!(cands, GemmSpace.candidates(&machine, &shape));
        for c in &cands {
            assert!(GemmSpace.validate(&machine, &shape, c).is_ok());
        }
    }
}
