//! The chained dual-GEMM kernel: `C = (A·B1)·B2` in ONE launch — the
//! fused form of a producer→consumer GEMM→GEMM chain in a task graph.
//!
//! This is the graph-level sibling of the Fig. 13c Dual-GEMM: where
//! Fig. 13c fuses two GEMMs that *share* an `A` operand, this kernel
//! fuses two GEMMs *chained* through an intermediate (`T = A·B1`, then
//! `C = T·B2`), the shape a `TaskGraph` produces when one GEMM node's
//! `C` output feeds the next node's `A` slot. Each CTA owns one
//! `U x V` output chunk: it computes its whole row band of the
//! intermediate into **shared memory** (walking `V`-wide column chunks
//! so register accumulators stay bounded), then immediately consumes
//! the band for the second GEMM — the intermediate never makes the HBM
//! round trip and the second kernel launch disappears. Row bands are
//! recomputed once per output-column CTA; in the small/medium regime
//! where fusion pays (kernels that underfill the device and are
//! launch-bound), those SMs were idle anyway, and the runtime's fusion
//! rewriter only applies the rewrite when the simulator confirms the
//! fused kernel wins.
//!
//! Bitwise-equality argument (what `FusionPolicy::Auto` relies on): the
//! functional simulator accumulates GEMMs in unrounded f32 register
//! fragments and every mapping walks each output element's `k`
//! dimension in ascending order, so a GEMM's result is independent of
//! its tiling; the only rounding points are f16 materializations. The
//! chain kernel materializes each intermediate chunk exactly once —
//! after its complete first-GEMM sum, through an f16 shared-memory
//! store, the same single rounding the standalone GEMM performs on its
//! `C` — and the second phase reads those f16 values back, exactly like
//! the consumer kernel of the unfused chain. The runtime's fusion
//! property suite (`cypress-runtime/tests/fusion.rs`) locks this down.

use crate::error::CompileError;
use crate::front::ast::{Privilege, SExpr, Stmt};
use crate::front::machine::{MemLevel, ProcLevel};
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant, VariantKind};
use crate::kernels::common::{self, p, piece, t, v};
use crate::kernels::gemm::GemmConfig;
use crate::kernels::space::{gemm_family_candidates, MappingConfig, MappingSpace, Shape};
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;
use cypress_tensor::DType;

/// Algorithmic FLOPs of the chain: both GEMMs (redundant row-band
/// recomputation is not algorithmic work, as in the paper's convention).
#[must_use]
pub fn flops(m: usize, n: usize, k: usize, mid: usize) -> f64 {
    2.0 * m as f64 * mid as f64 * k as f64 + 2.0 * m as f64 * n as f64 * mid as f64
}

/// The chained dual-GEMM mapping space: shape `[m, n, k, mid]` for
/// `C[m,n] = (A[m,k]·B1[k,mid])·B2[mid,n]`.
///
/// `U` fixes the row band (64 per warpgroup), `V` the output-column
/// chunk per CTA, and `W` tiles both reduction dimensions. Every
/// enumerated dimension is functionally transparent: each intermediate
/// chunk is rounded to f16 exactly once after its complete first-GEMM
/// sum regardless of `V`, `W`, pipeline depth, or warp specialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainSpace;

impl MappingSpace for ChainSpace {
    fn entry(&self) -> &'static str {
        "chain"
    }

    fn default_for(&self, machine: &MachineConfig) -> MappingConfig {
        let mut cfg = GemmConfig::for_machine(machine);
        // A single 64-row warpgroup with chunks at most 128 wide keeps
        // both phases' register accumulators within budget.
        cfg.wgs = 1;
        cfg.u = 64;
        cfg.v = cfg.v.min(128);
        MappingConfig::Gemm(cfg)
    }

    fn validate(
        &self,
        machine: &MachineConfig,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(), CompileError> {
        let [m, n, k, mid] = shape.expect_dims::<4>("chain")?;
        let c = cfg.as_gemm("chain")?;
        if c.wgs == 0 || c.pipeline == 0 {
            return Err(CompileError::Unsupported(
                "`chain` mapping needs wgs >= 1 and pipeline >= 1".into(),
            ));
        }
        if c.u != 64 * c.wgs {
            return Err(CompileError::Partition(format!(
                "`chain` block tile rows {} must equal 64 x wgs",
                c.u
            )));
        }
        for (dim, name, tile, tname) in [
            (m, "M", c.u, "U"),
            (k, "K", c.w, "W"),
            (mid, "MID", c.w, "W"),
            (mid, "MID", c.v, "V"),
            (n, "N", c.v, "V"),
        ] {
            if tile == 0 || dim % tile != 0 {
                return Err(CompileError::Partition(format!(
                    "`chain` tile {tname}={tile} does not divide {name}={dim}"
                )));
            }
        }
        // Both phases' chunk accumulators live in registers at once.
        let frag_regs = 2 * c.u * c.v / (c.wgs * 128);
        if frag_regs + 64 > machine.max_regs_per_thread {
            return Err(CompileError::Unsupported(format!(
                "`chain` chunk accumulators need ~{} registers per thread, machine allows {}",
                frag_regs + 64,
                machine.max_regs_per_thread
            )));
        }
        // Resident at once: the shared-memory intermediate band
        // (u x mid), both phases' pipelined operand tiles (the allocator
        // does not alias across the two reduction loops), and the chunk
        // store staging (the phase-1 and terminal stagings do alias).
        let elem = 2usize;
        let band = c.u * mid * elem;
        let staged = c.pipeline * (c.u * c.w + c.w * c.v) * elem;
        let required = band + 2 * staged + c.u * c.v * elem;
        if required > machine.smem_per_sm {
            return Err(CompileError::OutOfSharedMemory {
                required,
                limit: machine.smem_per_sm,
            });
        }
        Ok(())
    }

    fn candidates(&self, machine: &MachineConfig, shape: &Shape) -> Vec<MappingConfig> {
        let MappingConfig::Gemm(default) = self.default_for(machine) else {
            return Vec::new();
        };
        // The register budget in `validate` filters chunk widths the
        // shared grid proposes beyond 128.
        gemm_family_candidates(self, machine, shape, default, true, true)
    }

    fn build(
        &self,
        shape: &Shape,
        cfg: &MappingConfig,
    ) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
        let [m, n, k, mid] = shape.expect_dims::<4>("chain")?;
        build_with(m, n, k, mid, cfg.as_gemm("chain")?)
    }
}

/// The first config for `(machine, shape)` that validates: the default
/// when it fits, otherwise the first valid candidate of the enumeration
/// (deterministic). `None` when the shape has no valid chain mapping on
/// this machine (indivisible tiles, or an intermediate band beyond
/// shared memory) — the fusion rewriter then simply leaves the chain
/// unfused.
#[must_use]
pub fn config_for(machine: &MachineConfig, shape: &Shape) -> Option<GemmConfig> {
    crate::kernels::space::default_or_first_candidate(&ChainSpace, machine, shape)
        .and_then(|c| c.as_gemm("chain").ok())
}

/// Build the chained dual-GEMM program for `machine`:
/// `C[m,n] = (A[m,k] · B1[k,mid]) · B2[mid,n]`, falling back from the
/// hand-tuned default to the first valid candidate when the default
/// does not fit the shape.
///
/// # Errors
///
/// Returns [`CompileError`] when no mapping in the space is valid for
/// this machine/shape combination.
pub fn build(
    m: usize,
    n: usize,
    k: usize,
    mid: usize,
    machine: &MachineConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let shape = Shape::of(&[m, n, k, mid]);
    let cfg = config_for(machine, &shape).ok_or_else(|| {
        CompileError::Unsupported(format!(
            "`chain` has no valid mapping for {m}x{n}x{k} (mid {mid}) on {}",
            machine.name
        ))
    })?;
    ChainSpace.build(&shape, &MappingConfig::Gemm(cfg))
}

/// Build with an explicit mapping configuration.
///
/// # Errors
///
/// Returns [`CompileError`] on malformed trees or indivisible tilings.
pub fn build_with(
    m: usize,
    n: usize,
    k: usize,
    mid: usize,
    cfg: GemmConfig,
) -> Result<(TaskRegistry, MappingSpec, Vec<EntryArg>), CompileError> {
    let mut reg = TaskRegistry::new();
    crate::kernels::gemm::register_gemm_tasks(&mut reg)?;
    common::register_clear(&mut reg, "clear")?;
    common::register_store(&mut reg, "store")?;
    common::register_mma_chain(&mut reg, "gemm", crate::front::ast::LeafFn::MmaAccum)?;

    let params = vec![
        p("C", Privilege::ReadWrite),
        p("A", Privilege::Read),
        p("B1", Privilege::Read),
        p("B2", Privilege::Read),
    ];

    // Host: one CTA per (row band, output-column chunk). Each CTA reads
    // its A band and the full B1, and the B2 columns of its chunk.
    reg.register(TaskVariant {
        task: "chain".into(),
        name: "chain_host".into(),
        kind: VariantKind::Inner,
        params: params.clone(),
        body: vec![
            Stmt::Tunable { name: "U".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "N".into(),
                value: SExpr::shape("C", 1),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::Let {
                name: "P".into(),
                value: SExpr::shape("B1", 1),
            },
            Stmt::PartitionBlocks {
                name: "Cp".into(),
                tensor: "C".into(),
                tile_rows: v("U"),
                tile_cols: v("V"),
            },
            Stmt::PartitionBlocks {
                name: "Ap".into(),
                tensor: "A".into(),
                tile_rows: v("U"),
                tile_cols: v("K"),
            },
            Stmt::PartitionBlocks {
                name: "B2p".into(),
                tensor: "B2".into(),
                tile_rows: v("P"),
                tile_cols: v("V"),
            },
            Stmt::PRange {
                vars: vec!["i".into(), "j".into()],
                extents: vec![v("M") / v("U"), v("N") / v("V")],
                body: vec![Stmt::Launch {
                    task: "chain".into(),
                    args: vec![
                        piece("Cp", vec![v("i"), v("j")]),
                        piece("Ap", vec![v("i"), SExpr::lit(0)]),
                        t("B1"),
                        piece("B2p", vec![SExpr::lit(0), v("j")]),
                    ],
                }],
            },
        ],
    })?;

    // Block: phase 1 walks the intermediate band's column chunks — each
    // chunk accumulates `Ts[:, jt] = A · B1[:, jt]` in registers and
    // materializes into the shared-memory band (the bitwise f16
    // rounding point). Phase 2 consumes the band as the A operand of
    // `C = Ts · B2`, reduction-tiled by `W`.
    reg.register(TaskVariant {
        task: "chain".into(),
        name: "chain_block".into(),
        kind: VariantKind::Inner,
        params,
        body: vec![
            Stmt::Tunable { name: "W".into() },
            Stmt::Tunable { name: "V".into() },
            Stmt::Let {
                name: "M".into(),
                value: SExpr::shape("C", 0),
            },
            Stmt::Let {
                name: "K".into(),
                value: SExpr::shape("A", 1),
            },
            Stmt::Let {
                name: "P".into(),
                value: SExpr::shape("B1", 1),
            },
            // Phase 1: the intermediate band, one V-wide chunk at a time.
            Stmt::PartitionBlocks {
                name: "A1p".into(),
                tensor: "A".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::PartitionBlocks {
                name: "B1p".into(),
                tensor: "B1".into(),
                tile_rows: v("W"),
                tile_cols: v("V"),
            },
            Stmt::MakeTensor {
                name: "Ts".into(),
                rows: v("M"),
                cols: v("P"),
                dtype: DType::F16,
            },
            Stmt::PartitionBlocks {
                name: "Tsw".into(),
                tensor: "Ts".into(),
                tile_rows: v("M"),
                tile_cols: v("V"),
            },
            Stmt::MakeTensor {
                name: "Tacc".into(),
                rows: v("M"),
                cols: v("V"),
                dtype: DType::F16,
            },
            Stmt::SRange {
                var: "jt".into(),
                extent: SExpr::cdiv(v("P"), v("V")),
                body: vec![
                    Stmt::Launch {
                        task: "clear".into(),
                        args: vec![t("Tacc")],
                    },
                    Stmt::SRange {
                        var: "k".into(),
                        extent: SExpr::cdiv(v("K"), v("W")),
                        body: vec![Stmt::Launch {
                            task: "gemm".into(),
                            args: vec![
                                t("Tacc"),
                                piece("A1p", vec![SExpr::lit(0), v("k")]),
                                piece("B1p", vec![v("k"), v("jt")]),
                            ],
                        }],
                    },
                    Stmt::Launch {
                        task: "store".into(),
                        args: vec![t("Tacc"), piece("Tsw", vec![SExpr::lit(0), v("jt")])],
                    },
                ],
            },
            // Phase 2: C = Ts · B2, straight from shared memory.
            Stmt::PartitionBlocks {
                name: "T2p".into(),
                tensor: "Ts".into(),
                tile_rows: v("M"),
                tile_cols: v("W"),
            },
            Stmt::PartitionBlocks {
                name: "B2q".into(),
                tensor: "B2".into(),
                tile_rows: v("W"),
                tile_cols: v("V"),
            },
            Stmt::MakeTensor {
                name: "Cacc".into(),
                rows: v("M"),
                cols: v("V"),
                dtype: DType::F16,
            },
            Stmt::Launch {
                task: "clear".into(),
                args: vec![t("Cacc")],
            },
            Stmt::SRange {
                var: "q".into(),
                extent: SExpr::cdiv(v("P"), v("W")),
                body: vec![Stmt::Launch {
                    task: "gemm".into(),
                    args: vec![
                        t("Cacc"),
                        piece("T2p", vec![SExpr::lit(0), v("q")]),
                        piece("B2q", vec![v("q"), SExpr::lit(0)]),
                    ],
                }],
            },
            Stmt::Launch {
                task: "store".into(),
                args: vec![t("Cacc"), t("C")],
            },
        ],
    })?;

    let g4 = vec![MemLevel::Global; 4];
    let mut block = TaskMapping::new("chain_block", "chain_block", ProcLevel::Block, g4.clone())
        .tunable("W", cfg.w as i64)
        .tunable("V", cfg.v as i64)
        .calls(&["clear_tile", "gemm_tile", "store_tile"])
        .pipeline(cfg.pipeline);
    if cfg.warpspecialize {
        block = block.warpspecialize();
    }
    let mut instances = vec![
        TaskMapping::new("chain_host", "chain_host", ProcLevel::Host, g4)
            .tunable("U", cfg.u as i64)
            .tunable("V", cfg.v as i64)
            .calls(&["chain_block"])
            .entrypoint(),
        block,
        TaskMapping::new(
            "gemm_tile",
            "gemm_tile",
            ProcLevel::Block,
            vec![MemLevel::None, MemLevel::Shared, MemLevel::Shared],
        )
        .tunable("WGS", cfg.wgs as i64)
        .calls(&["gemm_wgmma"]),
    ];
    instances.extend(common::mma_chain_mappings("gemm", MemLevel::Shared));
    instances.extend(common::clear_mappings("clear", cfg.wgs as i64));
    instances.extend(common::store_mappings("store", cfg.wgs as i64));
    let mapping = MappingSpec::new(instances)?;

    let args = vec![
        EntryArg {
            name: "C".into(),
            rows: m,
            cols: n,
            dtype: DType::F16,
        },
        EntryArg {
            name: "A".into(),
            rows: m,
            cols: k,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B1".into(),
            rows: k,
            cols: mid,
            dtype: DType::F16,
        },
        EntryArg {
            name: "B2".into(),
            rows: mid,
            cols: n,
            dtype: DType::F16,
        },
    ];
    Ok((reg, mapping, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_has_four_params() {
        let (reg, mapping, args) = build(128, 64, 64, 64, &MachineConfig::test_gpu()).unwrap();
        assert!(reg.variant("chain_host").is_ok());
        assert_eq!(mapping.entry().instance, "chain_host");
        assert_eq!(args.len(), 4);
        assert_eq!(
            flops(2, 3, 4, 5),
            2.0 * 2.0 * 5.0 * 4.0 + 2.0 * 2.0 * 3.0 * 5.0
        );
    }

    #[test]
    fn candidates_validate_and_are_deterministic() {
        let machine = MachineConfig::test_gpu();
        let shape = Shape::of(&[128, 64, 64, 64]);
        let cands = ChainSpace.candidates(&machine, &shape);
        assert!(!cands.is_empty());
        assert_eq!(cands, ChainSpace.candidates(&machine, &shape));
        for c in &cands {
            assert!(ChainSpace.validate(&machine, &shape, c).is_ok());
        }
    }

    #[test]
    fn indivisible_shapes_are_typed_errors() {
        let err = build(100, 64, 64, 64, &MachineConfig::test_gpu());
        assert!(matches!(err, Err(CompileError::Unsupported(_))), "{err:?}");
    }
}
