//! Analytical mapping-cost model: predict relative candidate cycles
//! without compiling.
//!
//! The autotuner's exhaustive sweep compiles and simulates every point
//! of a [`MappingSpace`](crate::MappingSpace) — correct, but linear in
//! the candidate count. This module prices a candidate *analytically*,
//! straight from its [`MappingConfig`] + [`Shape`] + [`MachineConfig`]:
//! CTA occupancy from the shared-memory and warp budgets, waves per SM,
//! HBM bytes moved (with the simulator's own L2-reuse discount), WGMMA
//! FLOPs, and a pipeline-stage overlap factor. The byte/FLOP arithmetic
//! is the same checked-`usize` tile math the bytecode lowering bakes
//! into kernel metadata — overflow returns `None` instead of wrapping —
//! so the model prices exactly the working set the engine charges for.
//!
//! Predictions are *relative*, not absolute: the guided tuner
//! (`cypress-runtime`) ranks candidates by [`CostEstimate::cycles`],
//! pays the simulator only for the top-k, and records both the
//! predicted and the measured cycles. Two or three machine constants
//! ([`CostConstants`], stored next to [`MachineConfig`]) absorb what
//! the closed form cannot see; [`calibrate`] re-fits them against
//! simulator measurements and a test locks the stored literals.
//!
//! Everything here is pure `f64`/`usize` arithmetic — no host clocks,
//! no randomness, no transcendental functions — so a ranking computed
//! on one machine or in one session is bit-identical on any other.

use crate::kernels::space::{MappingConfig, Shape};
use cypress_sim::{CostConstants, MachineConfig};

/// Version of the analytical model. Persisted per entry in the tuning
/// table (`cypress-runtime`) so stale predictions are detectable; bump
/// whenever a formula or calibrated constant changes meaning.
pub const COST_MODEL_VERSION: u32 = 1;

/// f16 element size in bytes (every staged operand tile is f16).
const ELEM: usize = 2;

/// The analytical price of one mapping candidate.
///
/// Produced by [`estimate`] (or a space's
/// [`MappingSpace::estimate`](crate::MappingSpace::estimate) override);
/// [`CostEstimate::cycles`] is the rankable summary, the other fields
/// expose the terms it was built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// CTAs in the launch grid.
    pub ctas: usize,
    /// CTAs resident per SM, from the shared-memory / warp / scheduler
    /// budgets (registers are not modeled; the compiler's allocator
    /// remains the authority, as in the exhaustive sweep).
    pub occupancy: usize,
    /// Serial CTA depth per active SM: `ceil(ctas / min(ctas, sms))`.
    pub waves: usize,
    /// Estimated HBM bytes moved after the L2-reuse discount.
    pub hbm_bytes: f64,
    /// Total WGMMA (tensor-core) FLOPs of the launch.
    pub wgmma_flops: f64,
    /// Fraction of the shorter of compute/memory time the software
    /// pipeline and resident CTAs together hide, in `[0, 1)`:
    /// `1 - 1/((pipeline + ws) · min(occupancy, waves))`.
    pub overlap: f64,
    /// Predicted solo launch cycles — the deterministic ranking key.
    pub cycles: f64,
}

/// Per-kernel raw quantities the closed form combines. All derived with
/// checked arithmetic from the tile math.
struct Profile {
    ctas: usize,
    smem_bytes: usize,
    warps_per_cta: usize,
    tc_flops_per_cta: f64,
    load_bytes_per_cta: f64,
    store_bytes_per_cta: f64,
    simt_flops_per_cta: f64,
    sfu_ops_per_cta: f64,
    /// Distinct HBM bytes the whole launch reads (the L2-hit estimate
    /// mirrors the engine: `1 - unique / total_loads`).
    unique_load_bytes: f64,
    /// Inner pipelined iterations per CTA (`K/W`, or the K/V loop).
    iters: f64,
    pipeline: usize,
    /// Counts like an extra pipeline stage: a producer warpgroup keeps
    /// loads in flight during consumer compute.
    warpspecialize: bool,
}

/// Predict the cost of `cfg` for the paper kernel named `entry`
/// (`"gemm"`, `"bgemm"`, `"dual"`, `"gr"`, `"fa"`), using the
/// calibrated [`CostConstants`] for `machine`.
///
/// Returns `None` for unknown entries, mismatched config/shape kinds,
/// tiles that do not divide the problem, or tile math that overflows —
/// callers fall back to the exhaustive sweep. `"fa"` is priced with the
/// FlashAttention-2 footprint; [`AttentionSpace`] overrides
/// [`MappingSpace::estimate`](crate::MappingSpace::estimate) to pass
/// the FA3 flag, which is the accurate path.
///
/// [`AttentionSpace`]: crate::kernels::attention::AttentionSpace
#[must_use]
pub fn estimate(
    entry: &str,
    shape: &Shape,
    cfg: &MappingConfig,
    machine: &MachineConfig,
) -> Option<CostEstimate> {
    estimate_with(
        entry,
        shape,
        cfg,
        machine,
        &CostConstants::for_machine(machine),
    )
}

/// [`estimate`] with explicit constants — what [`calibrate`] sweeps.
///
/// Returns `None` under the same conditions as [`estimate`].
#[must_use]
pub fn estimate_with(
    entry: &str,
    shape: &Shape,
    cfg: &MappingConfig,
    machine: &MachineConfig,
    constants: &CostConstants,
) -> Option<CostEstimate> {
    let profile = match entry {
        "gemm" => gemm_profile(shape, cfg, 1, 1, 0)?,
        "bgemm" => {
            let [l, m, n, k] = *shape.dims().first_chunk::<4>()?;
            if shape.dims().len() != 4 {
                return None;
            }
            let mut p = gemm_profile(&Shape(vec![m, n, k]), cfg, 1, 1, 0)?;
            p.ctas = p.ctas.checked_mul(l)?;
            p.unique_load_bytes *= l as f64;
            p
        }
        // Dual-GEMM stages two B tiles per pipeline stage and issues two
        // WGMMAs per iteration.
        "dual" => gemm_profile(shape, cfg, 2, 2, 0)?,
        // GEMM+Reduction stages the partial-sum vector outside the loop.
        "gr" => {
            let u = match cfg {
                MappingConfig::Gemm(c) => c.u,
                MappingConfig::Attention(_) => return None,
            };
            gemm_profile(shape, cfg, 1, 1, u.checked_mul(ELEM)?)?
        }
        "fa" => attention_profile(shape, cfg, false)?,
        _ => return None,
    };
    Some(combine(&profile, machine, constants))
}

/// Price an attention candidate, with the algorithm made explicit:
/// FA3 (`fa3 = true`) keeps two K/V pairs in flight (twice the staged
/// bytes, half the loop iterations) — exactly the footprint its space
/// validates against.
///
/// Returns `None` for non-attention configs, malformed shapes, or tiles
/// that do not divide the problem.
#[must_use]
pub fn estimate_attention(
    shape: &Shape,
    cfg: &MappingConfig,
    machine: &MachineConfig,
    fa3: bool,
) -> Option<CostEstimate> {
    let profile = attention_profile(shape, cfg, fa3)?;
    Some(combine(
        &profile,
        machine,
        &CostConstants::for_machine(machine),
    ))
}

/// Exact checked division: `None` unless `b` divides `a`.
fn div_exact(a: usize, b: usize) -> Option<usize> {
    if b == 0 || !a.is_multiple_of(b) {
        return None;
    }
    Some(a / b)
}

/// GEMM-family profile. `b_tiles` = B-shaped operand tiles staged per
/// pipeline stage, `wgmmas` = tensor-core ops per staged tile pair
/// (dual-GEMM: 2), `extra_smem` = fixed bytes outside the loop.
fn gemm_profile(
    shape: &Shape,
    cfg: &MappingConfig,
    b_tiles: usize,
    wgmmas: usize,
    extra_smem: usize,
) -> Option<Profile> {
    let [m, n, k] = *shape.dims().first_chunk::<3>()?;
    if shape.dims().len() != 3 {
        return None;
    }
    let c = match cfg {
        MappingConfig::Gemm(c) => *c,
        MappingConfig::Attention(_) => return None,
    };
    if c.u == 0 || c.v == 0 || c.w == 0 || c.pipeline == 0 {
        return None;
    }
    let ctas = div_exact(m, c.u)?.checked_mul(div_exact(n, c.v)?)?;
    // Staged working set: the same formula the space validators bound.
    let staged = c
        .pipeline
        .checked_mul(
            c.u.checked_mul(c.w)?
                .checked_add(b_tiles.checked_mul(c.w)?.checked_mul(c.v)?)?,
        )?
        .checked_mul(ELEM)?;
    let smem_bytes = staged
        .checked_add(c.u.checked_mul(c.v)?.checked_mul(ELEM)?)?
        .checked_add(extra_smem)?;
    // Per-CTA traffic and FLOPs from the tile math: the A panel (u x k)
    // plus `b_tiles` B panels (k x v) stream in, the C tile streams out.
    let loads =
        c.u.checked_add(b_tiles.checked_mul(c.v)?)?
            .checked_mul(k)?
            .checked_mul(ELEM)?;
    let stores = c.u.checked_mul(c.v)?.checked_mul(ELEM)?;
    let tc = 2.0 * wgmmas as f64 * (c.u as f64) * (c.v as f64) * k as f64;
    // Distinct bytes: A once, each B panel once per batch.
    let unique = m
        .checked_mul(k)?
        .checked_add(b_tiles.checked_mul(k)?.checked_mul(n)?)?
        .checked_mul(ELEM)?;
    Some(Profile {
        ctas,
        smem_bytes,
        warps_per_cta: 4 * (c.wgs + usize::from(c.warpspecialize)),
        tc_flops_per_cta: tc,
        load_bytes_per_cta: loads as f64,
        store_bytes_per_cta: stores as f64,
        // Epilogue clear + accumulate of the C tile.
        simt_flops_per_cta: (c.u * c.v * wgmmas) as f64,
        sfu_ops_per_cta: 0.0,
        unique_load_bytes: unique as f64,
        iters: div_exact(k, c.w)? as f64,
        pipeline: c.pipeline,
        warpspecialize: c.warpspecialize,
    })
}

/// FlashAttention profile; `fa3` selects the two-pairs-in-flight
/// footprint (and the doubled K/V step) of the FA3 schedule.
fn attention_profile(shape: &Shape, cfg: &MappingConfig, fa3: bool) -> Option<Profile> {
    let [heads, seq, head_dim] = *shape.dims().first_chunk::<3>()?;
    if shape.dims().len() != 3 {
        return None;
    }
    let c = match cfg {
        MappingConfig::Attention(c) => *c,
        MappingConfig::Gemm(_) => return None,
    };
    if c.br == 0 || c.bc == 0 || c.pipeline == 0 {
        return None;
    }
    let ctas = heads.checked_mul(div_exact(seq, c.br)?)?;
    let in_flight: usize = if fa3 { 4 } else { 2 };
    let kv_step = if fa3 { 2 * c.bc } else { c.bc };
    let smem_bytes = c
        .pipeline
        .checked_mul(in_flight.checked_mul(c.bc)?.checked_add(c.br)?)?
        .checked_add(c.br)?
        .checked_mul(head_dim)?
        .checked_mul(ELEM)?;
    // QK^T and PV: two u x seq x d contractions per row band.
    let tc = 4.0 * (c.br as f64) * seq as f64 * head_dim as f64;
    // Q tile once, the full K and V streams per CTA; O tile out.
    let loads =
        c.br.checked_add(2usize.checked_mul(seq)?)?
            .checked_mul(head_dim)?
            .checked_mul(ELEM)?;
    let stores = c.br.checked_mul(head_dim)?.checked_mul(ELEM)?;
    let unique = 3usize
        .checked_mul(heads)?
        .checked_mul(seq)?
        .checked_mul(head_dim)?
        .checked_mul(ELEM)?;
    // Online softmax: row-max, exp, two rescales over the br x seq score
    // matrix (SIMT), one exp per score (SFU).
    let scores = (c.br as f64) * seq as f64;
    Some(Profile {
        ctas,
        smem_bytes,
        // The FA kernels always run a producer warpgroup.
        warps_per_cta: 4 * (c.wgs + 1),
        tc_flops_per_cta: tc,
        load_bytes_per_cta: loads as f64,
        store_bytes_per_cta: stores as f64,
        simt_flops_per_cta: 6.0 * scores,
        sfu_ops_per_cta: scores,
        unique_load_bytes: unique as f64,
        iters: div_exact(seq, kv_step)? as f64,
        pipeline: c.pipeline,
        warpspecialize: true,
    })
}

/// Fold a kernel profile into a [`CostEstimate`] under `machine`'s
/// physical rates and the calibrated `constants`.
fn combine(p: &Profile, machine: &MachineConfig, constants: &CostConstants) -> CostEstimate {
    let ctas = p.ctas.max(1);
    let active_sms = ctas.min(machine.sms).max(1);
    let occupancy = occupancy(p, machine);
    let waves = ctas.div_ceil(active_sms);

    // Pipeline overlap: `pipeline` staged buffers (plus a producer
    // warpgroup, which keeps one more load in flight) hide all but
    // `1/(depth)` of the shorter of compute/memory time. Resident CTAs
    // multiply the depth: the engine runs `occupancy` CTAs concurrently
    // on each SM timeline, so one CTA's compute hides another's loads
    // even at pipeline depth 1 — a shallow pipeline with high occupancy
    // overlaps as well as a deep pipeline that crowds out its
    // neighbors.
    let resident = occupancy.min(waves).max(1);
    let depth = ((p.pipeline + usize::from(p.warpspecialize)) * resident) as f64;
    let overlap = 1.0 - 1.0 / depth;

    // Device-level throughput times (cycles), each resource at its
    // calibrated sustained rate.
    let active = active_sms as f64;
    let n = ctas as f64;
    let total_loads = p.load_bytes_per_cta * n;
    let total_stores = p.store_bytes_per_cta * n;
    // The engine's L2 model: reuse across CTAs turns repeated reads of
    // the same panels into L2 hits.
    let l2_hit = (1.0 - p.unique_load_bytes / total_loads.max(1.0)).clamp(0.0, 0.995);
    let hbm_bytes = total_loads * (1.0 - l2_hit) + total_stores;

    let tc_rate = machine.tc_flops_per_cycle_per_sm * constants.tc_efficiency;
    let tc = p.tc_flops_per_cta * n / (active * tc_rate);
    let tma = (total_loads + total_stores) / (active * machine.tma_bytes_per_cycle_per_sm);
    let hbm = hbm_bytes / (machine.hbm_bytes_per_cycle * constants.mem_efficiency);
    let l2 = (total_loads + total_stores) / machine.l2_bytes_per_cycle;
    let simt = p.simt_flops_per_cta * n / (active * machine.simt_flops_per_cycle_per_sm);
    let sfu = p.sfu_ops_per_cta * n / (active * machine.sfu_ops_per_cycle_per_sm);

    let mem = tma.max(hbm).max(l2);
    let comp = tc + (1.0 - overlap) * (simt + sfu);
    let span = comp.max(mem) + (1.0 - overlap) * comp.min(mem);

    // Latency the pipeline cannot hide, amortized over resident CTAs:
    // per-CTA launch + fixed overhead, plus the exposed slice of each
    // iteration's TMA round trip.
    let exposed_iter = p.iters * (1.0 - overlap) * (machine.tma_latency + machine.barrier_cycles);
    let serial = (waves as f64 / occupancy as f64)
        * (machine.cta_launch_cycles + constants.cta_overhead_cycles + exposed_iter);

    CostEstimate {
        ctas,
        occupancy,
        waves,
        hbm_bytes,
        wgmma_flops: p.tc_flops_per_cta * n,
        overlap,
        cycles: machine.kernel_launch_cycles + span + serial,
    }
}

/// Analytical occupancy: the engine's limiter mirror (shared memory,
/// resident warps, scheduler slots), minus the register file, which the
/// closed form cannot see without compiling.
fn occupancy(p: &Profile, machine: &MachineConfig) -> usize {
    let by_smem = machine
        .smem_per_sm
        .checked_div(p.smem_bytes)
        .unwrap_or(machine.max_ctas_per_sm);
    let by_warps = machine.max_warps_per_sm / p.warps_per_cta.max(1);
    machine.max_ctas_per_sm.min(by_smem).min(by_warps).max(1)
}

/// One measured point for [`calibrate`]: a kernel/shape/config triple
/// plus the simulator's solo cycles for it.
#[derive(Debug, Clone)]
pub struct CalibrationSample {
    /// Entry task name (`"gemm"`, `"bgemm"`, `"dual"`, `"gr"`, `"fa"`).
    pub entry: String,
    /// Problem shape the sample was measured at.
    pub shape: Shape,
    /// The mapping that was simulated.
    pub config: MappingConfig,
    /// The simulator's solo cycles.
    pub measured_cycles: f64,
}

/// Fit [`CostConstants`] for `machine` from simulator measurements: a
/// deterministic coarse-to-fine grid search minimizing the sum of
/// squared relative errors `(predicted/measured - 1)²`. Samples the
/// model cannot price are skipped; with no usable sample the neutral
/// constants are returned.
///
/// This is how the literals in [`CostConstants::for_machine`] were
/// produced (once, against the five paper kernels); a test re-runs the
/// fit to keep the stored values honest.
#[must_use]
pub fn calibrate(machine: &MachineConfig, samples: &[CalibrationSample]) -> CostConstants {
    let usable: Vec<&CalibrationSample> = samples
        .iter()
        .filter(|s| s.measured_cycles > 0.0)
        .filter(|s| estimate(&s.entry, &s.shape, &s.config, machine).is_some())
        .collect();
    if usable.is_empty() {
        return CostConstants {
            tc_efficiency: 1.0,
            mem_efficiency: 1.0,
            cta_overhead_cycles: 0.0,
        };
    }
    let error = |c: &CostConstants| -> f64 {
        usable
            .iter()
            .map(|s| {
                let est = estimate_with(&s.entry, &s.shape, &s.config, machine, c)
                    .expect("usable samples price");
                let r = est.cycles / s.measured_cycles - 1.0;
                r * r
            })
            .sum()
    };
    let mut best = CostConstants {
        tc_efficiency: 1.0,
        mem_efficiency: 1.0,
        cta_overhead_cycles: 0.0,
    };
    let mut best_err = f64::INFINITY;
    for tc_step in 0..=18 {
        for mem_step in 0..=18 {
            for ovh_step in 0..=16 {
                let c = CostConstants {
                    tc_efficiency: f64::from(10 + 5 * tc_step) / 100.0,
                    mem_efficiency: f64::from(10 + 5 * mem_step) / 100.0,
                    cta_overhead_cycles: 500.0 * f64::from(ovh_step),
                };
                let e = error(&c);
                // Strict `<`: ties keep the earliest grid point, so the
                // fit is deterministic.
                if e < best_err {
                    best_err = e;
                    best = c;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::attention::AttentionConfig;
    use crate::kernels::gemm::GemmConfig;

    fn h100() -> MachineConfig {
        MachineConfig::h100_sxm5()
    }

    #[test]
    fn estimates_are_deterministic_and_finite() {
        let machine = h100();
        let shape = Shape::of(&[4096, 4096, 4096]);
        let cfg = MappingConfig::Gemm(GemmConfig::h100());
        let a = estimate("gemm", &shape, &cfg, &machine).unwrap();
        let b = estimate("gemm", &shape, &cfg, &machine).unwrap();
        assert_eq!(a, b, "pure arithmetic: same inputs, same estimate");
        assert!(a.cycles.is_finite() && a.cycles > 0.0);
        assert!(a.hbm_bytes > 0.0 && a.wgmma_flops > 0.0);
        assert_eq!(a.ctas, (4096 / 128) * (4096 / 256));
    }

    #[test]
    fn unknown_entries_and_mismatched_configs_are_none() {
        let machine = h100();
        let shape = Shape::of(&[4096, 4096, 4096]);
        let gemm = MappingConfig::Gemm(GemmConfig::h100());
        assert!(estimate("mystery", &shape, &gemm, &machine).is_none());
        assert!(estimate("fa", &shape, &gemm, &machine).is_none());
        let attn = MappingConfig::Attention(AttentionConfig::fa2_h100());
        assert!(estimate("gemm", &shape, &attn, &machine).is_none());
        // Tiles that do not divide the shape are unpriceable, not wrong.
        assert!(estimate("gemm", &Shape::of(&[100, 100, 100]), &gemm, &machine).is_none());
        // Wrong rank.
        assert!(estimate("gemm", &Shape::of(&[4096, 4096]), &gemm, &machine).is_none());
        assert!(estimate("bgemm", &shape, &gemm, &machine).is_none());
    }

    #[test]
    fn deeper_pipelines_and_ws_overlap_more() {
        let machine = h100();
        // 512^3 launches fewer CTAs than the machine has SMs, so a
        // single wave runs per SM and overlap is driven purely by the
        // software pipeline.
        let shape = Shape::of(&[512, 512, 512]);
        let base = GemmConfig::h100();
        let price = |pipeline, ws| {
            let cfg = MappingConfig::Gemm(GemmConfig {
                pipeline,
                warpspecialize: ws,
                ..base
            });
            estimate("gemm", &shape, &cfg, &machine).unwrap()
        };
        assert!(price(1, false).overlap < price(2, false).overlap);
        assert!(price(2, false).overlap < price(2, true).overlap);
        assert!(
            price(1, false).cycles > price(3, true).cycles,
            "an unpipelined mapping must price slower than the deep pipeline"
        );
        // On an oversubscribed launch, resident CTAs hide latency even
        // at pipeline depth 1: the engine co-schedules `occupancy` CTAs
        // per SM timeline, and the model prices that in.
        let big = Shape::of(&[4096, 4096, 4096]);
        let shallow = MappingConfig::Gemm(GemmConfig {
            pipeline: 1,
            warpspecialize: false,
            ..base
        });
        let est = estimate("gemm", &big, &shallow, &machine).unwrap();
        assert!(est.occupancy > 1);
        assert!(est.overlap > 0.0);
    }

    #[test]
    fn occupancy_respects_the_smem_budget() {
        let machine = h100();
        let shape = Shape::of(&[4096, 4096, 4096]);
        let small = MappingConfig::Gemm(GemmConfig {
            v: 64,
            pipeline: 1,
            ..GemmConfig::h100()
        });
        let big = MappingConfig::Gemm(GemmConfig {
            v: 256,
            pipeline: 3,
            ..GemmConfig::h100()
        });
        let occ_small = estimate("gemm", &shape, &small, &machine)
            .unwrap()
            .occupancy;
        let occ_big = estimate("gemm", &shape, &big, &machine).unwrap().occupancy;
        assert!(
            occ_small > occ_big,
            "smaller staging must fit more CTAs ({occ_small} vs {occ_big})"
        );
    }

    #[test]
    fn fa3_footprint_differs_from_fa2() {
        let machine = h100();
        let shape = Shape::of(&[16, 4096, 128]);
        let cfg = MappingConfig::Attention(AttentionConfig::fa3_h100());
        let fa2 = estimate_attention(&shape, &cfg, &machine, false).unwrap();
        let fa3 = estimate_attention(&shape, &cfg, &machine, true).unwrap();
        // Twice the staged K/V bytes can only lower occupancy; half the
        // iterations can only lower the exposed latency.
        assert!(fa3.occupancy <= fa2.occupancy);
        assert_ne!(fa2.cycles, fa3.cycles);
    }

    #[test]
    fn calibrate_with_no_samples_is_neutral() {
        let c = calibrate(&h100(), &[]);
        assert_eq!(
            (c.tc_efficiency, c.mem_efficiency, c.cta_overhead_cycles),
            (1.0, 1.0, 0.0)
        );
    }
}
