//! Compiler error types.

use std::error::Error;
use std::fmt;

/// Error produced by the Cypress compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A task or variant name was not found in the registry.
    UnknownTask(String),
    /// A mapping instance name was not found.
    UnknownInstance(String),
    /// The mapping has no (or more than one) entrypoint.
    BadEntrypoint,
    /// A launch site had no mapping dispatch for the launched task.
    NoDispatch {
        /// Instance performing the launch.
        from: String,
        /// Task being launched.
        task: String,
    },
    /// A tunable required by a variant was not bound by the mapping.
    UnboundTunable {
        /// Variant name.
        variant: String,
        /// Tunable name.
        tunable: String,
    },
    /// A scalar variable was referenced before definition.
    UnboundVariable(String),
    /// A tensor or partition name was referenced before definition.
    UnboundName(String),
    /// Argument count mismatch at a launch site.
    ArityMismatch {
        /// Task launched.
        task: String,
        /// Parameters expected.
        expected: usize,
        /// Arguments given.
        actual: usize,
    },
    /// A task accessed or launched with privileges exceeding its own.
    PrivilegeViolation {
        /// Task variant at fault.
        variant: String,
        /// Parameter involved.
        param: String,
        /// Explanation.
        detail: String,
    },
    /// Parallel tasks launched by `prange` perform aliasing writes.
    AliasingWrites {
        /// Variant containing the `prange`.
        variant: String,
        /// Tensor written.
        tensor: String,
    },
    /// Inner task variants may not access tensor elements or call external
    /// functions; leaf variants may not launch sub-tasks (§3.2).
    KindViolation {
        /// Variant at fault.
        variant: String,
        /// Explanation.
        detail: String,
    },
    /// A partition operator failed (shape indivisible, unsupported MMA
    /// fragment, ...).
    Partition(String),
    /// Scalar evaluation failed (division by zero, negative extent).
    Scalar(String),
    /// A tensor mapped to the `none` memory survived copy elimination
    /// (§3.3: the mapping must be changed).
    NoneMemoryMaterialized {
        /// Tensor name in the IR.
        tensor: String,
    },
    /// Shared-memory allocation failed even with maximal aliasing (§4.2.4).
    OutOfSharedMemory {
        /// Bytes required with maximal aliasing.
        required: usize,
        /// The mapping's limit.
        limit: usize,
    },
    /// The program shape is outside what the prototype compiler lowers.
    Unsupported(String),
    /// The generated kernel failed simulator validation.
    Backend(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTask(t) => write!(f, "unknown task or variant `{t}`"),
            CompileError::UnknownInstance(i) => write!(f, "unknown mapping instance `{i}`"),
            CompileError::BadEntrypoint => {
                write!(f, "mapping must declare exactly one entrypoint instance")
            }
            CompileError::NoDispatch { from, task } => {
                write!(
                    f,
                    "instance `{from}` launches task `{task}` but maps no instance for it"
                )
            }
            CompileError::UnboundTunable { variant, tunable } => {
                write!(
                    f,
                    "variant `{variant}` requires tunable `{tunable}` not bound by the mapping"
                )
            }
            CompileError::UnboundVariable(v) => write!(f, "unbound scalar variable `{v}`"),
            CompileError::UnboundName(n) => write!(f, "unbound tensor or partition `{n}`"),
            CompileError::ArityMismatch {
                task,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "task `{task}` expects {expected} arguments, got {actual}"
                )
            }
            CompileError::PrivilegeViolation {
                variant,
                param,
                detail,
            } => {
                write!(
                    f,
                    "privilege violation in `{variant}` on `{param}`: {detail}"
                )
            }
            CompileError::AliasingWrites { variant, tensor } => {
                write!(
                    f,
                    "prange in `{variant}` performs aliasing writes to `{tensor}`"
                )
            }
            CompileError::KindViolation { variant, detail } => {
                write!(f, "task-kind violation in `{variant}`: {detail}")
            }
            CompileError::Partition(d) => write!(f, "partition error: {d}"),
            CompileError::Scalar(d) => write!(f, "scalar evaluation error: {d}"),
            CompileError::NoneMemoryMaterialized { tensor } => write!(
                f,
                "tensor `{tensor}` is mapped to the none memory but could not be eliminated; \
                 change the partitioning or mapping strategy"
            ),
            CompileError::OutOfSharedMemory { required, limit } => write!(
                f,
                "shared-memory allocation failed: {required} bytes required with maximal \
                 aliasing, limit is {limit}; map fewer tensors to shared memory or raise the limit"
            ),
            CompileError::Unsupported(d) => write!(f, "unsupported program shape: {d}"),
            CompileError::Backend(d) => write!(f, "backend validation failed: {d}"),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = CompileError::NoneMemoryMaterialized {
            tensor: "Cacc".into(),
        };
        assert!(e.to_string().contains("change the partitioning"));
        let e = CompileError::OutOfSharedMemory {
            required: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
    }
}
