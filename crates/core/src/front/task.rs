//! Tasks, variants, and the task registry (paper §3.2).
//!
//! A *task* is a named function with one or more *variants* — different
//! implementations targeting different processor levels or algorithms. All
//! variants of a task share a signature (parameter names, dtypes, and
//! privileges). Inner variants decompose; leaf variants compute.

use crate::error::CompileError;
use crate::front::ast::{ArgExpr, Privilege, Stmt};
use cypress_tensor::DType;
use std::collections::HashMap;

/// Inner or leaf (Fig. 3: `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// May partition tensors and launch sub-tasks; may not touch elements.
    Inner,
    /// May access tensor data and call external functions; may not launch.
    Leaf,
}

/// One tensor parameter of a task signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSig {
    /// Parameter name (used by mapping memories and privilege messages).
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Declared privilege.
    pub privilege: Privilege,
}

/// A task variant: implementation of a task for some processor level.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskVariant {
    /// The task this variant implements.
    pub task: String,
    /// The variant's own name (referenced by the mapping).
    pub name: String,
    /// Inner or leaf.
    pub kind: VariantKind,
    /// Shared task signature.
    pub params: Vec<ParamSig>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl TaskVariant {
    /// Check the §3.2 kind restrictions: inner variants may not call
    /// external functions; leaf variants may not launch sub-tasks or
    /// create partitions.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::KindViolation`] on the first violation.
    pub fn check_kind(&self) -> Result<(), CompileError> {
        fn walk(v: &TaskVariant, body: &[Stmt]) -> Result<(), CompileError> {
            for s in body {
                match s {
                    Stmt::CallExternal { .. } if v.kind == VariantKind::Inner => {
                        return Err(CompileError::KindViolation {
                            variant: v.name.clone(),
                            detail: "inner variants may not call external functions".into(),
                        });
                    }
                    Stmt::Launch { .. } | Stmt::SRange { .. } | Stmt::PRange { .. }
                        if v.kind == VariantKind::Leaf =>
                    {
                        return Err(CompileError::KindViolation {
                            variant: v.name.clone(),
                            detail: "leaf variants may not launch sub-tasks".into(),
                        });
                    }
                    Stmt::PartitionBlocks { .. } | Stmt::PartitionMma { .. }
                        if v.kind == VariantKind::Leaf =>
                    {
                        return Err(CompileError::KindViolation {
                            variant: v.name.clone(),
                            detail: "leaf variants may not partition tensors".into(),
                        });
                    }
                    Stmt::SRange { body, .. } | Stmt::PRange { body, .. } => walk(v, body)?,
                    _ => {}
                }
            }
            Ok(())
        }
        walk(self, &self.body)
    }

    /// The privilege of parameter `name`, if it exists.
    #[must_use]
    pub fn param_privilege(&self, name: &str) -> Option<Privilege> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.privilege)
    }
}

/// Registry of all task variants of a program.
#[derive(Debug, Clone, Default)]
pub struct TaskRegistry {
    variants: HashMap<String, TaskVariant>,
}

impl TaskRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        TaskRegistry::default()
    }

    /// Register a variant (name must be unique).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::KindViolation`] if the body violates the
    /// variant's kind, or [`CompileError::UnknownTask`] if a variant of the
    /// same name exists with a different signature.
    pub fn register(&mut self, variant: TaskVariant) -> Result<(), CompileError> {
        variant.check_kind()?;
        // All variants of one task must share the signature (§3.2).
        if let Some(existing) = self
            .variants
            .values()
            .find(|v| v.task == variant.task && v.params != variant.params)
        {
            return Err(CompileError::KindViolation {
                variant: variant.name.clone(),
                detail: format!(
                    "signature differs from variant `{}` of task `{}`",
                    existing.name, variant.task
                ),
            });
        }
        self.variants.insert(variant.name.clone(), variant);
        Ok(())
    }

    /// Look up a variant by name.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnknownTask`] if absent.
    pub fn variant(&self, name: &str) -> Result<&TaskVariant, CompileError> {
        self.variants
            .get(name)
            .ok_or_else(|| CompileError::UnknownTask(name.to_string()))
    }

    /// Iterate all registered variants.
    pub fn iter(&self) -> impl Iterator<Item = &TaskVariant> {
        self.variants.values()
    }
}

/// Convenience helpers for building arguments.
#[must_use]
pub fn targ(name: &str) -> ArgExpr {
    ArgExpr::tensor(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::ast::{LeafFn, SExpr};

    fn sig() -> Vec<ParamSig> {
        vec![ParamSig {
            name: "C".into(),
            dtype: DType::F16,
            privilege: Privilege::Write,
        }]
    }

    #[test]
    fn inner_cannot_call_external() {
        let v = TaskVariant {
            task: "clear".into(),
            name: "clear_inner".into(),
            kind: VariantKind::Inner,
            params: sig(),
            body: vec![Stmt::CallExternal {
                f: LeafFn::Fill(0.0),
                args: vec![targ("C")],
            }],
        };
        assert!(matches!(
            v.check_kind(),
            Err(CompileError::KindViolation { .. })
        ));
    }

    #[test]
    fn leaf_cannot_launch() {
        let v = TaskVariant {
            task: "clear".into(),
            name: "clear_leaf".into(),
            kind: VariantKind::Leaf,
            params: sig(),
            body: vec![Stmt::Launch {
                task: "clear".into(),
                args: vec![targ("C")],
            }],
        };
        assert!(matches!(
            v.check_kind(),
            Err(CompileError::KindViolation { .. })
        ));
        let nested = TaskVariant {
            task: "clear".into(),
            name: "clear_leaf2".into(),
            kind: VariantKind::Leaf,
            params: sig(),
            body: vec![Stmt::SRange {
                var: "i".into(),
                extent: SExpr::lit(2),
                body: vec![Stmt::Launch {
                    task: "clear".into(),
                    args: vec![targ("C")],
                }],
            }],
        };
        assert!(nested.check_kind().is_err());
    }

    #[test]
    fn registry_rejects_signature_mismatch() {
        let mut r = TaskRegistry::new();
        r.register(TaskVariant {
            task: "clear".into(),
            name: "a".into(),
            kind: VariantKind::Leaf,
            params: sig(),
            body: vec![],
        })
        .unwrap();
        let bad = TaskVariant {
            task: "clear".into(),
            name: "b".into(),
            kind: VariantKind::Leaf,
            params: vec![ParamSig {
                name: "C".into(),
                dtype: DType::F16,
                privilege: Privilege::Read,
            }],
            body: vec![],
        };
        assert!(r.register(bad).is_err());
        assert!(r.variant("a").is_ok());
        assert!(r.variant("missing").is_err());
    }
}
