//! The mapping specification (paper §3.3, Fig. 5b).
//!
//! A mapping statically instantiates the task tree: each
//! [`TaskMapping`] *instance* selects a task variant, a processor level,
//! per-parameter memories, tunable bindings, and the instances child
//! launches dispatch to. Instances also carry the processor-specific
//! controls the paper describes: `warpspecialize`, `pipeline` depth, and a
//! shared-memory budget for the resource allocator (§4.2.4).

use crate::error::CompileError;
use crate::front::machine::{MemLevel, ProcLevel};
use std::collections::HashMap;

/// One task-mapping instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMapping {
    /// Instance name (referenced by other instances' `calls`).
    pub instance: String,
    /// Task variant executed by this instance.
    pub variant: String,
    /// Processor level the variant runs on.
    pub proc: ProcLevel,
    /// Memory for each tensor parameter, in signature order.
    pub mems: Vec<MemLevel>,
    /// Tunable bindings.
    pub tunables: HashMap<String, i64>,
    /// Instances child task launches dispatch to (one per child task name).
    pub calls: Vec<String>,
    /// Request warp specialization of this instance's body (§4.2.5).
    pub warpspecialize: bool,
    /// Software pipeline depth for this instance's sequential loop (0 = no
    /// pipelining; the paper's GEMM uses 3).
    pub pipeline: usize,
    /// `true` for the root of the task tree.
    pub entrypoint: bool,
}

impl TaskMapping {
    /// A builder-style constructor with no tunables or calls.
    #[must_use]
    pub fn new(instance: &str, variant: &str, proc: ProcLevel, mems: Vec<MemLevel>) -> Self {
        TaskMapping {
            instance: instance.to_string(),
            variant: variant.to_string(),
            proc,
            mems,
            tunables: HashMap::new(),
            calls: Vec::new(),
            warpspecialize: false,
            pipeline: 0,
            entrypoint: false,
        }
    }

    /// Bind a tunable.
    #[must_use]
    pub fn tunable(mut self, name: &str, value: i64) -> Self {
        self.tunables.insert(name.to_string(), value);
        self
    }

    /// Add child dispatch targets.
    #[must_use]
    pub fn calls(mut self, instances: &[&str]) -> Self {
        self.calls = instances.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Request warp specialization.
    #[must_use]
    pub fn warpspecialize(mut self) -> Self {
        self.warpspecialize = true;
        self
    }

    /// Set the pipeline depth.
    #[must_use]
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = depth;
        self
    }

    /// Mark as the entrypoint.
    #[must_use]
    pub fn entrypoint(mut self) -> Self {
        self.entrypoint = true;
        self
    }
}

/// A full mapping specification: a set of instances, exactly one of which
/// is the entrypoint.
#[derive(Debug, Clone, Default)]
pub struct MappingSpec {
    instances: HashMap<String, TaskMapping>,
    /// Shared-memory budget per thread block for the resource allocator;
    /// `None` uses the machine's full per-SM capacity.
    pub smem_limit: Option<usize>,
}

impl MappingSpec {
    /// Build from a list of instances.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::BadEntrypoint`] unless exactly one instance
    /// is marked `entrypoint`, or [`CompileError::UnknownInstance`] if a
    /// `calls` target is missing.
    pub fn new(instances: Vec<TaskMapping>) -> Result<Self, CompileError> {
        let mut map = HashMap::new();
        let mut entry = 0usize;
        for i in instances {
            if i.entrypoint {
                entry += 1;
            }
            map.insert(i.instance.clone(), i);
        }
        if entry != 1 {
            return Err(CompileError::BadEntrypoint);
        }
        let spec = MappingSpec {
            instances: map,
            smem_limit: None,
        };
        for inst in spec.instances.values() {
            for c in &inst.calls {
                if !spec.instances.contains_key(c) {
                    return Err(CompileError::UnknownInstance(c.clone()));
                }
            }
        }
        Ok(spec)
    }

    /// Set the shared-memory budget per thread block.
    #[must_use]
    pub fn with_smem_limit(mut self, bytes: usize) -> Self {
        self.smem_limit = Some(bytes);
        self
    }

    /// The entrypoint instance.
    #[must_use]
    pub fn entry(&self) -> &TaskMapping {
        self.instances
            .values()
            .find(|i| i.entrypoint)
            .expect("validated on construction")
    }

    /// Look up an instance by name.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnknownInstance`] if absent.
    pub fn instance(&self, name: &str) -> Result<&TaskMapping, CompileError> {
        self.instances
            .get(name)
            .ok_or_else(|| CompileError::UnknownInstance(name.to_string()))
    }

    /// Iterate all instances.
    pub fn iter(&self) -> impl Iterator<Item = &TaskMapping> {
        self.instances.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(name: &str, entry: bool) -> TaskMapping {
        let m = TaskMapping::new(name, "v", ProcLevel::Block, vec![MemLevel::Global]);
        if entry {
            m.entrypoint()
        } else {
            m
        }
    }

    #[test]
    fn exactly_one_entrypoint() {
        assert!(MappingSpec::new(vec![inst("a", false)]).is_err());
        assert!(MappingSpec::new(vec![inst("a", true), inst("b", true)]).is_err());
        let ok = MappingSpec::new(vec![inst("a", true), inst("b", false)]).unwrap();
        assert_eq!(ok.entry().instance, "a");
    }

    #[test]
    fn calls_must_resolve() {
        let a = inst("a", true).calls(&["missing"]);
        assert!(matches!(
            MappingSpec::new(vec![a]),
            Err(CompileError::UnknownInstance(_))
        ));
    }

    #[test]
    fn builder_setters() {
        let m = TaskMapping::new("i", "v", ProcLevel::Block, vec![])
            .tunable("W", 64)
            .warpspecialize()
            .pipeline(3);
        assert_eq!(m.tunables["W"], 64);
        assert!(m.warpspecialize);
        assert_eq!(m.pipeline, 3);
    }
}
