//! The Cypress frontend: logical description and mapping specification.

pub mod ast;
pub mod machine;
pub mod mapping;
pub mod task;

pub use ast::{ArgExpr, LeafFn, Privilege, SExpr, Stmt};
pub use machine::{MemLevel, ProcLevel};
pub use mapping::{MappingSpec, TaskMapping};
pub use task::{ParamSig, TaskRegistry, TaskVariant, VariantKind};
