//! Abstract syntax of the Cypress logical description (paper Fig. 3).
//!
//! A Cypress program is a set of task variants whose bodies are built from
//! these statements. The concrete embedding is Rust constructors instead of
//! the paper's Python eDSL; the grammar is the same: scalar expressions,
//! tunables, tensor creation, the two partitioning operators, sub-task
//! launches (inline, `srange`, `prange`), and `call-external` in leaves.

use cypress_tensor::partition::{MmaLevel, MmaOperand};
use cypress_tensor::DType;
use std::fmt;

/// Scalar expressions (`e` in Fig. 3, restricted to integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// Integer literal.
    Lit(i64),
    /// Scalar variable, tunable, or loop variable.
    Var(String),
    /// Dimension `dim` of tensor `name`'s shape (`C.shape[0]`).
    ShapeDim(String, usize),
    /// Sum.
    Add(Box<SExpr>, Box<SExpr>),
    /// Difference.
    Sub(Box<SExpr>, Box<SExpr>),
    /// Product.
    Mul(Box<SExpr>, Box<SExpr>),
    /// Exact division (errors if inexact — tile sizes must divide).
    Div(Box<SExpr>, Box<SExpr>),
    /// Ceiling division (`cdiv` in the paper's examples).
    CDiv(Box<SExpr>, Box<SExpr>),
    /// Remainder.
    Mod(Box<SExpr>, Box<SExpr>),
}

impl SExpr {
    /// Literal.
    #[must_use]
    pub fn lit(v: i64) -> Self {
        SExpr::Lit(v)
    }

    /// Variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Self {
        SExpr::Var(name.into())
    }

    /// `tensor.shape[dim]`.
    #[must_use]
    pub fn shape(tensor: impl Into<String>, dim: usize) -> Self {
        SExpr::ShapeDim(tensor.into(), dim)
    }

    /// Ceiling division helper.
    #[must_use]
    pub fn cdiv(a: SExpr, b: SExpr) -> Self {
        SExpr::CDiv(Box::new(a), Box::new(b))
    }
}

macro_rules! sexpr_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl std::ops::$trait for SExpr {
            type Output = SExpr;
            fn $method(self, rhs: SExpr) -> SExpr {
                SExpr::$variant(Box::new(self), Box::new(rhs))
            }
        }
    };
}
sexpr_binop!(Add, add, Add);
sexpr_binop!(Sub, sub, Sub);
sexpr_binop!(Mul, mul, Mul);
sexpr_binop!(Div, div, Div);
sexpr_binop!(Rem, rem, Mod);

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Lit(v) => write!(f, "{v}"),
            SExpr::Var(n) => write!(f, "{n}"),
            SExpr::ShapeDim(t, d) => write!(f, "{t}.shape[{d}]"),
            SExpr::Add(a, b) => write!(f, "({a} + {b})"),
            SExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            SExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            SExpr::Div(a, b) => write!(f, "({a} / {b})"),
            SExpr::CDiv(a, b) => write!(f, "cdiv({a}, {b})"),
            SExpr::Mod(a, b) => write!(f, "({a} % {b})"),
        }
    }
}

/// Privileges a task declares on its tensor parameters (Fig. 3: `pr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read-only.
    Read,
    /// Write-only (contents need not be preserved).
    Write,
    /// Read and write.
    ReadWrite,
}

impl Privilege {
    /// `true` if the privilege permits reading.
    #[must_use]
    pub fn can_read(self) -> bool {
        matches!(self, Privilege::Read | Privilege::ReadWrite)
    }

    /// `true` if the privilege permits writing.
    #[must_use]
    pub fn can_write(self) -> bool {
        matches!(self, Privilege::Write | Privilege::ReadWrite)
    }

    /// `true` if `child` does not exceed `self` (a task may not launch a
    /// sub-task requesting more than it holds, §3.2).
    #[must_use]
    pub fn covers(self, child: Privilege) -> bool {
        (!child.can_read() || self.can_read()) && (!child.can_write() || self.can_write())
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Privilege::Read => "read",
            Privilege::Write => "write",
            Privilege::ReadWrite => "read-write",
        };
        f.write_str(s)
    }
}

/// An argument at a launch or `call-external` site.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgExpr {
    /// A whole tensor by name.
    Tensor(String),
    /// A piece of a partition: `P[i, j]`.
    Piece {
        /// Partition name.
        partition: String,
        /// Piece indices.
        indices: Vec<SExpr>,
    },
    /// A scalar value.
    Scalar(SExpr),
}

impl ArgExpr {
    /// Whole-tensor argument.
    #[must_use]
    pub fn tensor(name: impl Into<String>) -> Self {
        ArgExpr::Tensor(name.into())
    }

    /// Partition-piece argument.
    #[must_use]
    pub fn piece(partition: impl Into<String>, indices: Vec<SExpr>) -> Self {
        ArgExpr::Piece {
            partition: partition.into(),
            indices,
        }
    }
}

/// External functions a leaf task may call (`call-external` in Fig. 3).
///
/// The paper's leaves invoke arbitrary CUDA C++ (CuTe dispatch to WGMMA,
/// elementwise math); this reproduction enumerates the external functions
/// the evaluation kernels need, each mapped by code generation onto the
/// simulator's Tensor Core or SIMT instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafFn {
    /// `CuTe_warpgroup_gemm`: `acc += a @ b` on the Tensor Core.
    MmaAccum,
    /// `acc += a @ bᵀ` on the Tensor Core (attention `Q Kᵀ`).
    MmaAccumBT,
    /// Set every element to a constant.
    Fill(f32),
    /// Element-wise copy (data-movement leaf; placement decides the engine).
    CopyExt,
    /// Element-wise `exp`.
    Exp,
    /// Element-wise scale by a constant.
    Scale(f32),
    /// Element-wise sum: `dst = a + b`.
    AddExt,
    /// Element-wise max: `dst = max(a, b)`.
    MaxExt,
    /// Row-wise running max: `dst[i,0] = max(dst[i,0], max_j src[i,j])`.
    RowMaxAccum,
    /// Row-wise running sum: `dst[i,0] += Σ_j src[i,j]`.
    RowSumAccum,
    /// Subtract a broadcast column: `dst[i,j] = src[i,j] - col[i,0]`.
    SubRow,
    /// Multiply by a broadcast column.
    MulRow,
    /// Divide by a broadcast column.
    DivRow,
}

impl LeafFn {
    /// Number of arguments (destination last).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            LeafFn::Fill(_) => 1,
            LeafFn::CopyExt | LeafFn::Exp | LeafFn::Scale(_) => 2,
            LeafFn::RowMaxAccum | LeafFn::RowSumAccum => 2,
            LeafFn::MmaAccum | LeafFn::MmaAccumBT => 3,
            LeafFn::AddExt | LeafFn::MaxExt => 3,
            LeafFn::SubRow | LeafFn::MulRow | LeafFn::DivRow => 3,
        }
    }

    /// `true` if the destination is also read (accumulators).
    #[must_use]
    pub fn dst_reads(self) -> bool {
        matches!(
            self,
            LeafFn::MmaAccum | LeafFn::MmaAccumBT | LeafFn::RowMaxAccum | LeafFn::RowSumAccum
        )
    }
}

/// Statements of a task-variant body (Fig. 3: `s`).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = e` — bind a scalar.
    Let {
        /// Variable name.
        name: String,
        /// Value.
        value: SExpr,
    },
    /// `x = tunable(int)` — bound by the mapping specification.
    Tunable {
        /// Tunable name.
        name: String,
    },
    /// Create a fresh tensor (`make_tensor`); its memory comes from the
    /// mapping of the task instance.
    MakeTensor {
        /// Tensor name.
        name: String,
        /// Rows.
        rows: SExpr,
        /// Columns.
        cols: SExpr,
        /// Element type.
        dtype: DType,
    },
    /// `Xp = partition_by_blocks(X, (r, c))`.
    PartitionBlocks {
        /// Partition name.
        name: String,
        /// Partitioned tensor.
        tensor: String,
        /// Tile rows.
        tile_rows: SExpr,
        /// Tile columns.
        tile_cols: SExpr,
    },
    /// `Xp = partition_by_mma(X, instr, PROC, operand)`.
    PartitionMma {
        /// Partition name.
        name: String,
        /// Partitioned tensor.
        tensor: String,
        /// Target level (typically a `processor` tunable; here fixed per
        /// variant instantiation).
        level: MmaLevel,
        /// Operand role.
        operand: MmaOperand,
    },
    /// Inline launch of a sub-task.
    Launch {
        /// Task name (dispatch resolved by the mapping).
        task: String,
        /// Arguments.
        args: Vec<ArgExpr>,
    },
    /// `for x in srange(e): launch(...)` — sequential task group.
    SRange {
        /// Loop variable.
        var: String,
        /// Extent.
        extent: SExpr,
        /// Body (launches and scalar statements).
        body: Vec<Stmt>,
    },
    /// `for x, y in prange(e1, e2): launch(...)` — parallel task group.
    PRange {
        /// Loop variables (1-3).
        vars: Vec<String>,
        /// Extents, same length as `vars`.
        extents: Vec<SExpr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `call-external(f, args)` — leaf variants only.
    CallExternal {
        /// External function.
        f: LeafFn,
        /// Arguments; the destination is last.
        args: Vec<ArgExpr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_covering() {
        assert!(Privilege::ReadWrite.covers(Privilege::Read));
        assert!(Privilege::ReadWrite.covers(Privilege::Write));
        assert!(!Privilege::Read.covers(Privilege::Write));
        assert!(!Privilege::Write.covers(Privilege::Read));
        assert!(Privilege::Read.covers(Privilege::Read));
    }

    #[test]
    fn sexpr_operators_build_trees() {
        let e = SExpr::var("M") * SExpr::lit(2) + SExpr::shape("C", 1);
        assert_eq!(e.to_string(), "((M * 2) + C.shape[1])");
        assert_eq!(
            SExpr::cdiv(SExpr::var("K"), SExpr::var("W")).to_string(),
            "cdiv(K, W)"
        );
    }

    #[test]
    fn privilege_display() {
        assert_eq!(Privilege::ReadWrite.to_string(), "read-write");
    }
}
