//! The hierarchical logical machine model (paper §3.1, Fig. 2).
//!
//! A machine is described by processor levels and memories with visibility.
//! The model is deliberately open-ended: the paper argues new levels (e.g.
//! Blackwell's paired-SM tensor cores) are added by extending these enums
//! and the description, not the programming model.

use std::fmt;

/// Processor levels of the Hopper machine description.
///
/// Ordered from outermost to innermost; `Ord` follows the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcLevel {
    /// The host CPU that launches kernels.
    Host,
    /// A thread block (CTA) on one SM.
    Block,
    /// A group of four warps that can collectively issue Tensor Core work.
    Warpgroup,
    /// 32 hardware threads.
    Warp,
    /// A single thread.
    Thread,
}

impl ProcLevel {
    /// Number of child processors of this level inside one parent at the
    /// next level up, on Hopper (`None` for levels whose extent is chosen
    /// by the program: grid size, warpgroups per CTA).
    #[must_use]
    pub fn hopper_extent(self) -> Option<usize> {
        match self {
            ProcLevel::Host | ProcLevel::Block | ProcLevel::Warpgroup => None,
            ProcLevel::Warp => Some(4),
            ProcLevel::Thread => Some(32),
        }
    }

    /// `true` for the levels whose parallelism is implicit in the GPU
    /// programming model and flattened by the vectorization pass (§4.2.2).
    #[must_use]
    pub fn is_intra_block(self) -> bool {
        matches!(
            self,
            ProcLevel::Warpgroup | ProcLevel::Warp | ProcLevel::Thread
        )
    }
}

impl fmt::Display for ProcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcLevel::Host => "HOST",
            ProcLevel::Block => "BLOCK",
            ProcLevel::Warpgroup => "WARPGROUP",
            ProcLevel::Warp => "WARP",
            ProcLevel::Thread => "THREAD",
        };
        f.write_str(s)
    }
}

/// Memory levels a tensor can be mapped to (paper Fig. 3: `m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Never materialized at this task's level; must be eliminated by the
    /// compiler or compilation fails (§3.3).
    None,
    /// Device global memory.
    Global,
    /// Per-CTA shared memory.
    Shared,
    /// Per-thread register file (held at warpgroup granularity).
    Register,
}

impl MemLevel {
    /// `true` if processors at `proc` can address this memory on Hopper.
    #[must_use]
    pub fn visible_from(self, proc: ProcLevel) -> bool {
        match self {
            MemLevel::None => true,
            MemLevel::Global => true,
            MemLevel::Shared => proc >= ProcLevel::Block,
            MemLevel::Register => proc >= ProcLevel::Warpgroup,
        }
    }
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::None => "none",
            MemLevel::Global => "global",
            MemLevel::Shared => "shared",
            MemLevel::Register => "register",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering() {
        assert!(ProcLevel::Host < ProcLevel::Block);
        assert!(ProcLevel::Block < ProcLevel::Warpgroup);
        assert!(ProcLevel::Warpgroup < ProcLevel::Warp);
        assert!(ProcLevel::Warp < ProcLevel::Thread);
    }

    #[test]
    fn hopper_extents() {
        assert_eq!(ProcLevel::Warp.hopper_extent(), Some(4));
        assert_eq!(ProcLevel::Thread.hopper_extent(), Some(32));
        assert_eq!(ProcLevel::Block.hopper_extent(), None);
    }

    #[test]
    fn visibility_matches_figure_2() {
        assert!(MemLevel::Global.visible_from(ProcLevel::Host));
        assert!(MemLevel::Global.visible_from(ProcLevel::Thread));
        assert!(!MemLevel::Shared.visible_from(ProcLevel::Host));
        assert!(MemLevel::Shared.visible_from(ProcLevel::Block));
        assert!(MemLevel::Shared.visible_from(ProcLevel::Thread));
        assert!(!MemLevel::Register.visible_from(ProcLevel::Block));
        assert!(MemLevel::Register.visible_from(ProcLevel::Warpgroup));
    }

    #[test]
    fn intra_block_levels() {
        assert!(!ProcLevel::Host.is_intra_block());
        assert!(!ProcLevel::Block.is_intra_block());
        assert!(ProcLevel::Warpgroup.is_intra_block());
        assert!(ProcLevel::Warp.is_intra_block());
        assert!(ProcLevel::Thread.is_intra_block());
    }
}
