//! Dependence analysis (paper §4.2.1).
//!
//! An in-order traversal of the instantiated task tree, starting at the
//! mapping's entrypoint. Scalars, tunables, shapes and partitions are all
//! evaluated statically (Cypress is "amenable to a fully static analysis",
//! §3). Each launch site follows the copy-in/copy-out discipline:
//!
//! 1. allocate a fresh tensor per argument in the callee's mapped memory,
//! 2. copy-in read arguments,
//! 3. recursively lower the callee variant,
//! 4. copy-out written arguments,
//!
//! with privilege-driven event chaining throughout. `srange` lowers to a
//! sequential `for`, `prange` to `pfor` loops whose iterations must not
//! perform aliasing writes — enforced here, which is what makes mapping
//! decisions unable to affect correctness (§3.3).

use crate::error::CompileError;
use crate::front::ast::{ArgExpr, LeafFn, Privilege, SExpr, Stmt};
use crate::front::machine::MemLevel;
use crate::front::mapping::{MappingSpec, TaskMapping};
use crate::front::task::{TaskRegistry, TaskVariant};
use crate::ir::{
    Block, EvIdx, EventRef, EventType, IdxExpr, IrProgram, Op, OpKind, PartId, PartKind, TensorId,
    TensorRef, VarId,
};
use cypress_tensor::partition::{MmaLevel, MmaOperand};
use cypress_tensor::DType;
use std::collections::{HashMap, HashSet};

/// A global tensor bound to the entrypoint task.
#[derive(Debug, Clone)]
pub struct EntryArg {
    /// Name (for diagnostics).
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Element type.
    pub dtype: DType,
}

/// Run dependence analysis: instantiate the task tree into event IR.
///
/// # Errors
///
/// Returns [`CompileError`] for unknown tasks/instances, privilege or
/// task-kind violations, aliasing parallel writes, arity mismatches,
/// unbound tunables, or partition failures.
pub fn analyze(
    registry: &TaskRegistry,
    mapping: &MappingSpec,
    name: &str,
    entry_args: &[EntryArg],
) -> Result<IrProgram, CompileError> {
    let mut a = Analyzer {
        reg: registry,
        map: mapping,
        prog: IrProgram::new(name),
        last_write: HashMap::new(),
        readers: HashMap::new(),
        scopes: vec![Scope::top()],
    };
    let entry = mapping.entry().clone();
    let variant = registry.variant(&entry.variant)?;
    if variant.params.len() != entry_args.len() {
        return Err(CompileError::ArityMismatch {
            task: variant.task.clone(),
            expected: variant.params.len(),
            actual: entry_args.len(),
        });
    }
    let mut frame = Frame::default();
    for (i, (arg, p)) in entry_args.iter().zip(variant.params.iter()).enumerate() {
        let mem = entry.mems.get(i).copied().unwrap_or(MemLevel::Global);
        let id = a.prog.add_tensor(
            arg.name.clone(),
            arg.rows,
            arg.cols,
            arg.dtype,
            mem,
            Some(i),
        );
        frame.tensors.insert(p.name.clone(), id);
        frame.privs.insert(id, p.privilege);
    }
    let body = a.lower_body(&entry, variant, &mut frame)?;
    a.prog.body = body;
    Ok(a.prog)
}

/// Affine scalar value `scale·var + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SVal {
    var: Option<VarId>,
    scale: i64,
    offset: i64,
}

impl SVal {
    fn constant(v: i64) -> Self {
        SVal {
            var: None,
            scale: 0,
            offset: v,
        }
    }

    fn var(v: VarId) -> Self {
        SVal {
            var: Some(v),
            scale: 1,
            offset: 0,
        }
    }

    fn as_const(&self) -> Option<i64> {
        if self.var.is_none() {
            Some(self.offset)
        } else {
            None
        }
    }

    fn to_idx(self) -> IdxExpr {
        IdxExpr {
            var: self.var,
            scale: self.scale,
            offset: self.offset,
        }
    }
}

/// Per-task-variant lexical frame.
#[derive(Debug, Clone, Default)]
struct Frame {
    scalars: HashMap<String, SVal>,
    tensors: HashMap<String, TensorId>,
    parts: HashMap<String, PartId>,
    privs: HashMap<TensorId, Privilege>,
}

/// One loop scope during lowering.
#[derive(Debug)]
struct Scope {
    /// Events created at or after this id belong to the scope.
    first_event: usize,
    /// Parallel-loop variable, if this scope is a `pfor`.
    pfor_var: Option<VarId>,
    /// Dependencies on events outside the scope, lifted to the loop op.
    lifted: Vec<EventRef>,
    /// Tensors created inside the scope.
    created: HashSet<TensorId>,
    /// Tensors written inside the scope.
    writes: HashSet<TensorId>,
    /// Tensors read inside the scope.
    reads: HashSet<TensorId>,
}

impl Scope {
    fn top() -> Self {
        Scope {
            first_event: 0,
            pfor_var: None,
            lifted: Vec::new(),
            created: HashSet::new(),
            writes: HashSet::new(),
            reads: HashSet::new(),
        }
    }

    fn for_loop(first_event: usize, pfor_var: Option<VarId>) -> Self {
        Scope {
            first_event,
            pfor_var,
            lifted: Vec::new(),
            created: HashSet::new(),
            writes: HashSet::new(),
            reads: HashSet::new(),
        }
    }
}

struct Analyzer<'a> {
    reg: &'a TaskRegistry,
    map: &'a MappingSpec,
    prog: IrProgram,
    last_write: HashMap<TensorId, EventRef>,
    readers: HashMap<TensorId, Vec<EventRef>>,
    scopes: Vec<Scope>,
}

impl<'a> Analyzer<'a> {
    // ---- scalar evaluation ------------------------------------------------

    fn eval(&self, frame: &Frame, e: &SExpr) -> Result<SVal, CompileError> {
        let c = |v: Result<SVal, CompileError>| -> Result<i64, CompileError> {
            v?.as_const().ok_or_else(|| {
                CompileError::Scalar("loop variables may only appear affinely".into())
            })
        };
        Ok(match e {
            SExpr::Lit(v) => SVal::constant(*v),
            SExpr::Var(n) => *frame
                .scalars
                .get(n)
                .ok_or_else(|| CompileError::UnboundVariable(n.clone()))?,
            SExpr::ShapeDim(t, d) => {
                let id = self.resolve_tensor(frame, t)?;
                let decl = &self.prog.tensors[id];
                let v = match d {
                    0 => decl.rows,
                    1 => decl.cols,
                    _ => return Err(CompileError::Scalar(format!("shape dim {d} out of range"))),
                };
                SVal::constant(v as i64)
            }
            SExpr::Add(a, b) => {
                let (a, b) = (self.eval(frame, a)?, self.eval(frame, b)?);
                match (a.var, b.var) {
                    (_, None) => SVal {
                        var: a.var,
                        scale: a.scale,
                        offset: a.offset + b.offset,
                    },
                    (None, _) => SVal {
                        var: b.var,
                        scale: b.scale,
                        offset: a.offset + b.offset,
                    },
                    (Some(x), Some(y)) if x == y => SVal {
                        var: Some(x),
                        scale: a.scale + b.scale,
                        offset: a.offset + b.offset,
                    },
                    _ => return Err(CompileError::Scalar("sum of two loop variables".into())),
                }
            }
            SExpr::Sub(a, b) => {
                let (a, b) = (self.eval(frame, a)?, self.eval(frame, b)?);
                if b.var.is_some() && a.var != b.var {
                    return Err(CompileError::Scalar("difference of loop variables".into()));
                }
                if a.var == b.var {
                    SVal {
                        var: None,
                        scale: 0,
                        offset: a.offset - b.offset,
                    }
                } else {
                    SVal {
                        var: a.var,
                        scale: a.scale,
                        offset: a.offset - b.offset,
                    }
                }
            }
            SExpr::Mul(a, b) => {
                let (a, b) = (self.eval(frame, a)?, self.eval(frame, b)?);
                match (a.as_const(), b.as_const()) {
                    (Some(x), _) => SVal {
                        var: b.var,
                        scale: b.scale * x,
                        offset: b.offset * x,
                    },
                    (_, Some(y)) => SVal {
                        var: a.var,
                        scale: a.scale * y,
                        offset: a.offset * y,
                    },
                    _ => return Err(CompileError::Scalar("product of loop variables".into())),
                }
            }
            SExpr::Div(a, b) => {
                let d = c(self.eval(frame, b))?;
                let n = c(self.eval(frame, a))?;
                if d == 0 {
                    return Err(CompileError::Scalar("division by zero".into()));
                }
                if n % d != 0 {
                    return Err(CompileError::Scalar(format!("{n} not divisible by {d}")));
                }
                SVal::constant(n / d)
            }
            SExpr::CDiv(a, b) => {
                let d = c(self.eval(frame, b))?;
                let n = c(self.eval(frame, a))?;
                if d == 0 {
                    return Err(CompileError::Scalar("division by zero".into()));
                }
                SVal::constant(n.div_euclid(d) + i64::from(n.rem_euclid(d) != 0))
            }
            SExpr::Mod(a, b) => {
                let d = c(self.eval(frame, b))?;
                let n = c(self.eval(frame, a))?;
                if d == 0 {
                    return Err(CompileError::Scalar("modulo by zero".into()));
                }
                SVal::constant(n.rem_euclid(d))
            }
        })
    }

    fn resolve_tensor(&self, frame: &Frame, name: &str) -> Result<TensorId, CompileError> {
        frame
            .tensors
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UnboundName(name.to_string()))
    }

    fn resolve_arg(&self, frame: &Frame, arg: &ArgExpr) -> Result<TensorRef, CompileError> {
        match arg {
            ArgExpr::Tensor(n) => Ok(TensorRef::whole(self.resolve_tensor(frame, n)?)),
            ArgExpr::Piece { partition, indices } => {
                let pid = *frame
                    .parts
                    .get(partition)
                    .ok_or_else(|| CompileError::UnboundName(partition.clone()))?;
                let idx: Vec<IdxExpr> = indices
                    .iter()
                    .map(|e| self.eval(frame, e).map(SVal::to_idx))
                    .collect::<Result<_, _>>()?;
                let parent = self.prog.parts[pid].parent;
                Ok(TensorRef {
                    tensor: parent,
                    path: vec![(pid, idx)],
                })
            }
            ArgExpr::Scalar(_) => Err(CompileError::Unsupported("scalar task arguments".into())),
        }
    }

    /// Shape of a reference (folds piece shapes along the path).
    fn ref_shape(&self, r: &TensorRef) -> (usize, usize) {
        match r.path.last() {
            None => {
                let t = &self.prog.tensors[r.tensor];
                (t.rows, t.cols)
            }
            Some((p, _)) => self.prog.parts[*p].piece_shape(),
        }
    }

    // ---- event bookkeeping ------------------------------------------------

    fn register_read(&mut self, t: TensorId, ev: EventRef) {
        self.readers.entry(t).or_default().push(ev);
        for s in &mut self.scopes {
            s.reads.insert(t);
        }
    }

    fn register_write(&mut self, t: TensorId, ev: EventRef) {
        self.last_write.insert(t, ev);
        self.readers.remove(&t);
        for s in &mut self.scopes {
            s.writes.insert(t);
        }
    }

    fn read_deps(&self, t: TensorId) -> Vec<EventRef> {
        self.last_write.get(&t).cloned().into_iter().collect()
    }

    fn write_deps(&self, t: TensorId) -> Vec<EventRef> {
        let mut d = self.read_deps(t);
        if let Some(rs) = self.readers.get(&t) {
            d.extend(rs.iter().cloned());
        }
        d
    }

    /// Emit an op into `block`, routing preconditions defined outside the
    /// current scope to the scope's lifted set (they become the enclosing
    /// loop's preconditions, as in Fig. 8b).
    fn emit(&mut self, block: &mut Block, kind: OpKind, pre: Vec<EventRef>) -> EventRef {
        let scope_start = self.scopes.last().expect("scope stack").first_event;
        let (inner, outer): (Vec<_>, Vec<_>) =
            pre.into_iter().partition(|e| e.event >= scope_start);
        let scope = self.scopes.last_mut().expect("scope stack");
        for o in outer {
            if !scope.lifted.contains(&o) {
                scope.lifted.push(o);
            }
        }
        let result = self.prog.fresh_event();
        block.ops.push(Op {
            result,
            ty: EventType::Unit,
            pre: inner,
            kind,
        });
        EventRef::unit(result)
    }

    /// Check the prange aliasing-write rule for a write to `r` under every
    /// enclosing pfor scope.
    fn check_parallel_write(&self, variant: &str, r: &TensorRef) -> Result<(), CompileError> {
        for (i, s) in self.scopes.iter().enumerate() {
            let Some(v) = s.pfor_var else { continue };
            // Created at or below this scope => private per iteration.
            let created_below = self.scopes[i..]
                .iter()
                .any(|sc| sc.created.contains(&r.tensor));
            if created_below {
                continue;
            }
            // Otherwise the write must target a piece of a disjoint
            // partition indexed by the pfor variable.
            let indexed_disjoint = r
                .path
                .iter()
                .any(|(p, idx)| self.prog.parts[*p].is_disjoint() && idx.iter().any(|e| e.uses(v)));
            if !indexed_disjoint {
                return Err(CompileError::AliasingWrites {
                    variant: variant.to_string(),
                    tensor: self.prog.tensors[r.tensor].name.clone(),
                });
            }
        }
        Ok(())
    }

    // ---- statement lowering -----------------------------------------------

    fn lower_body(
        &mut self,
        inst: &TaskMapping,
        variant: &TaskVariant,
        frame: &mut Frame,
    ) -> Result<Block, CompileError> {
        let mut block = Block::default();
        self.lower_stmts(inst, variant, frame, &variant.body.clone(), &mut block)?;
        Ok(block)
    }

    fn lower_stmts(
        &mut self,
        inst: &TaskMapping,
        variant: &TaskVariant,
        frame: &mut Frame,
        stmts: &[Stmt],
        block: &mut Block,
    ) -> Result<(), CompileError> {
        for stmt in stmts {
            self.lower_stmt(inst, variant, frame, stmt, block)?;
        }
        Ok(())
    }

    fn lower_stmt(
        &mut self,
        inst: &TaskMapping,
        variant: &TaskVariant,
        frame: &mut Frame,
        stmt: &Stmt,
        block: &mut Block,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { name, value } => {
                let v = self.eval(frame, value)?;
                frame.scalars.insert(name.clone(), v);
            }
            Stmt::Tunable { name } => {
                let v = *inst
                    .tunables
                    .get(name)
                    .ok_or_else(|| CompileError::UnboundTunable {
                        variant: variant.name.clone(),
                        tunable: name.clone(),
                    })?;
                frame.scalars.insert(name.clone(), SVal::constant(v));
            }
            Stmt::MakeTensor {
                name,
                rows,
                cols,
                dtype,
            } => {
                let r = self.eval(frame, rows)?.as_const().ok_or_else(|| {
                    CompileError::Scalar("tensor extents must be loop-invariant".into())
                })?;
                let c = self.eval(frame, cols)?.as_const().ok_or_else(|| {
                    CompileError::Scalar("tensor extents must be loop-invariant".into())
                })?;
                if r <= 0 || c <= 0 {
                    return Err(CompileError::Scalar(format!("degenerate tensor {r}x{c}")));
                }
                let id = self.prog.add_tensor(
                    format!("{}.{}", inst.instance, name),
                    r as usize,
                    c as usize,
                    *dtype,
                    MemLevel::None,
                    None,
                );
                // Block-local tensors may fall back to a shared-memory
                // home when copy elimination cannot identify them with
                // one existing allocation (fused kernels re-tile a
                // producer phase's result for the consumer phase).
                self.prog.tensors[id].promotable = true;
                frame.tensors.insert(name.clone(), id);
                frame.privs.insert(id, Privilege::ReadWrite);
                self.scopes
                    .last_mut()
                    .expect("scope stack")
                    .created
                    .insert(id);
            }
            Stmt::PartitionBlocks {
                name,
                tensor,
                tile_rows,
                tile_cols,
            } => {
                let t = self.resolve_tensor(frame, tensor)?;
                let decl = &self.prog.tensors[t];
                let (rows, cols) = (decl.rows, decl.cols);
                let tr = self.eval(frame, tile_rows)?.as_const().unwrap_or(0);
                let tc = self.eval(frame, tile_cols)?.as_const().unwrap_or(0);
                if tr <= 0 || tc <= 0 {
                    return Err(CompileError::Partition(format!("bad tile {tr}x{tc}")));
                }
                let (tr, tc) = (tr as usize, tc as usize);
                if rows % tr != 0 || cols % tc != 0 {
                    return Err(CompileError::Partition(format!(
                        "tile {tr}x{tc} does not divide {rows}x{cols} (tensor {})",
                        self.prog.tensors[t].name
                    )));
                }
                let kind = PartKind::Blocks {
                    tile_rows: tr,
                    tile_cols: tc,
                    grid_rows: rows / tr,
                    grid_cols: cols / tc,
                };
                let pid = self.prog.add_part(name.clone(), t, kind);
                frame.parts.insert(name.clone(), pid);
            }
            Stmt::PartitionMma {
                name,
                tensor,
                level,
                operand,
            } => {
                let t = self.resolve_tensor(frame, tensor)?;
                let decl = &self.prog.tensors[t];
                let (rows, cols) = (decl.rows, decl.cols);
                // Validate against the architected WGMMA partition rules.
                let instr = cypress_tensor::MmaInstr::wgmma_64x256x16();
                cypress_tensor::mma(&[rows, cols], instr, *level, *operand)
                    .map_err(|e| CompileError::Partition(e.to_string()))?;
                let kind = match (level, operand) {
                    (MmaLevel::Warp, MmaOperand::A | MmaOperand::C) => PartKind::Mma {
                        pieces: 4,
                        piece_rows: rows / 4,
                        piece_cols: cols,
                        replicated: false,
                        level: crate::front::machine::ProcLevel::Warp,
                    },
                    (MmaLevel::Thread, MmaOperand::A | MmaOperand::C) => PartKind::Mma {
                        pieces: 32,
                        piece_rows: 2,
                        piece_cols: cols / 4,
                        replicated: false,
                        level: crate::front::machine::ProcLevel::Thread,
                    },
                    (MmaLevel::Warp, MmaOperand::B) => PartKind::Mma {
                        pieces: 4,
                        piece_rows: rows,
                        piece_cols: cols,
                        replicated: true,
                        level: crate::front::machine::ProcLevel::Warp,
                    },
                    (MmaLevel::Thread, MmaOperand::B) => PartKind::Mma {
                        pieces: 32,
                        piece_rows: rows,
                        piece_cols: cols,
                        replicated: true,
                        level: crate::front::machine::ProcLevel::Thread,
                    },
                };
                let pid = self.prog.add_part(name.clone(), t, kind);
                frame.parts.insert(name.clone(), pid);
            }
            Stmt::Launch { task, args } => {
                self.lower_launch(inst, variant, frame, task, args, block)?;
            }
            Stmt::SRange { var, extent, body } => {
                let n = self
                    .eval(frame, extent)?
                    .as_const()
                    .ok_or_else(|| CompileError::Scalar("srange extent must be constant".into()))?;
                let v = self.prog.fresh_var();
                frame.scalars.insert(var.clone(), SVal::var(v));
                self.scopes
                    .push(Scope::for_loop(self.prog.next_event, None));
                let mut inner = Block::default();
                self.lower_stmts(inst, variant, frame, body, &mut inner)?;
                self.close_loop(block, inner, v, n, None)?;
                frame.scalars.remove(var);
            }
            Stmt::PRange {
                vars,
                extents,
                body,
            } => {
                if vars.len() != extents.len() || vars.is_empty() || vars.len() > 3 {
                    return Err(CompileError::Scalar("prange takes 1-3 variables".into()));
                }
                // Determine the processor level from the dispatched launch.
                let proc = self.prange_proc(inst, body)?;
                self.lower_prange(inst, variant, frame, vars, extents, body, proc, block, 0)?;
            }
            Stmt::CallExternal { f, args } => {
                self.lower_call_external(variant, frame, *f, args, block)?;
            }
        }
        Ok(())
    }

    fn prange_proc(
        &self,
        inst: &TaskMapping,
        body: &[Stmt],
    ) -> Result<crate::front::machine::ProcLevel, CompileError> {
        for s in body {
            if let Stmt::Launch { task, .. } = s {
                let callee = self.dispatch(inst, task)?;
                return Ok(callee.proc);
            }
        }
        Err(CompileError::Unsupported(
            "prange body must contain a launch".into(),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_prange(
        &mut self,
        inst: &TaskMapping,
        variant: &TaskVariant,
        frame: &mut Frame,
        vars: &[String],
        extents: &[SExpr],
        body: &[Stmt],
        proc: crate::front::machine::ProcLevel,
        block: &mut Block,
        depth: usize,
    ) -> Result<(), CompileError> {
        if depth == vars.len() {
            return self.lower_stmts(inst, variant, frame, body, block);
        }
        let n = self
            .eval(frame, &extents[depth])?
            .as_const()
            .ok_or_else(|| CompileError::Scalar("prange extent must be constant".into()))?;
        let v = self.prog.fresh_var();
        frame.scalars.insert(vars[depth].clone(), SVal::var(v));
        self.scopes
            .push(Scope::for_loop(self.prog.next_event, Some(v)));
        let mut inner = Block::default();
        self.lower_prange(
            inst,
            variant,
            frame,
            vars,
            extents,
            body,
            proc,
            &mut inner,
            depth + 1,
        )?;
        self.close_loop(block, inner, v, n, Some(proc))?;
        frame.scalars.remove(&vars[depth]);
        Ok(())
    }

    /// Pop the scope and emit the loop op, propagating event state.
    fn close_loop(
        &mut self,
        block: &mut Block,
        inner: Block,
        var: VarId,
        extent: i64,
        pfor: Option<crate::front::machine::ProcLevel>,
    ) -> Result<(), CompileError> {
        let scope = self.scopes.pop().expect("scope stack");
        let result = self.prog.fresh_event();
        let ty = match pfor {
            Some(proc) => EventType::Array(vec![(extent as usize, proc)]),
            None => EventType::Unit,
        };
        let loop_ref = match pfor {
            Some(_) => EventRef {
                event: result,
                idx: vec![EvIdx::All],
            },
            None => EventRef::unit(result),
        };
        // Loop preconditions: deps lifted out of the body. Route those that
        // are outer to the *new* current scope onward.
        let pre = scope.lifted;
        let kind = match pfor {
            Some(proc) => OpKind::Pfor {
                var,
                extent,
                proc,
                body: inner,
            },
            None => OpKind::For {
                var,
                extent,
                body: inner,
            },
        };
        // Re-route pres through the now-current scope.
        let scope_start = self.scopes.last().expect("scope stack").first_event;
        let (inner_pre, outer): (Vec<_>, Vec<_>) =
            pre.into_iter().partition(|e| e.event >= scope_start);
        {
            let cur = self.scopes.last_mut().expect("scope stack");
            for o in outer {
                if !cur.lifted.contains(&o) {
                    cur.lifted.push(o);
                }
            }
        }
        block.ops.push(Op {
            result,
            ty,
            pre: inner_pre,
            kind,
        });
        // Propagate event state: tensors written in the loop now depend on
        // the whole loop; readers likewise.
        for t in &scope.writes {
            self.last_write.insert(*t, loop_ref.clone());
            self.readers.remove(t);
            for s in &mut self.scopes {
                s.writes.insert(*t);
            }
        }
        for t in &scope.reads {
            if !scope.writes.contains(t) {
                self.readers.entry(*t).or_default().push(loop_ref.clone());
                for s in &mut self.scopes {
                    s.reads.insert(*t);
                }
            }
        }
        Ok(())
    }

    fn dispatch(&self, inst: &TaskMapping, task: &str) -> Result<&'a TaskMapping, CompileError> {
        for c in &inst.calls {
            let cand = self.map.instance(c)?;
            let v = self.reg.variant(&cand.variant)?;
            if v.task == task {
                // Safety: instances live as long as the mapping borrow.
                return self.map.instance(c);
            }
        }
        Err(CompileError::NoDispatch {
            from: inst.instance.clone(),
            task: task.to_string(),
        })
    }

    fn lower_launch(
        &mut self,
        inst: &TaskMapping,
        variant: &TaskVariant,
        frame: &mut Frame,
        task: &str,
        args: &[ArgExpr],
        block: &mut Block,
    ) -> Result<(), CompileError> {
        let callee_inst = self.dispatch(inst, task)?.clone();
        let callee_var = self.reg.variant(&callee_inst.variant)?.clone();
        if callee_var.params.len() != args.len() {
            return Err(CompileError::ArityMismatch {
                task: task.to_string(),
                expected: callee_var.params.len(),
                actual: args.len(),
            });
        }

        // Resolve arguments and check privileges against the caller's.
        let mut resolved = Vec::new();
        for (arg, p) in args.iter().zip(callee_var.params.iter()) {
            let r = self.resolve_arg(frame, arg)?;
            let caller_priv = frame
                .privs
                .get(&r.tensor)
                .copied()
                .unwrap_or(Privilege::ReadWrite);
            if !caller_priv.covers(p.privilege) {
                return Err(CompileError::PrivilegeViolation {
                    variant: variant.name.clone(),
                    param: p.name.clone(),
                    detail: format!(
                        "caller holds {caller_priv} but launch of `{task}` requires {}",
                        p.privilege
                    ),
                });
            }
            resolved.push(r);
        }

        // Copy-in/copy-out discipline (§4.2.1 steps 1-4).
        let mut callee_frame = Frame::default();
        let mut fresh_ids = Vec::new();
        for (i, (r, p)) in resolved.iter().zip(callee_var.params.iter()).enumerate() {
            let (rows, cols) = self.ref_shape(r);
            let mem = callee_inst.mems.get(i).copied().unwrap_or(MemLevel::None);
            let fresh = self.prog.add_tensor(
                format!("{}.{}", callee_inst.instance, p.name),
                rows,
                cols,
                p.dtype,
                mem,
                None,
            );
            self.scopes
                .last_mut()
                .expect("scope stack")
                .created
                .insert(fresh);
            if p.privilege.can_read() {
                let pre = self.read_deps(r.tensor);
                let ev = self.emit(
                    block,
                    OpKind::Copy {
                        src: r.clone(),
                        dst: TensorRef::whole(fresh),
                    },
                    pre,
                );
                self.register_read(r.tensor, ev.clone());
                self.register_write(fresh, ev);
            }
            callee_frame.tensors.insert(p.name.clone(), fresh);
            callee_frame.privs.insert(fresh, p.privilege);
            fresh_ids.push(fresh);
        }

        let mut callee_block = self.lower_body(&callee_inst, &callee_var, &mut callee_frame)?;
        block.ops.append(&mut callee_block.ops);

        for (r, (fresh, p)) in resolved
            .iter()
            .zip(fresh_ids.iter().zip(callee_var.params.iter()))
        {
            if p.privilege.can_write() {
                self.check_parallel_write(&variant.name, r)?;
                let mut pre = self.read_deps(*fresh);
                pre.extend(self.write_deps(r.tensor));
                let ev = self.emit(
                    block,
                    OpKind::Copy {
                        src: TensorRef::whole(*fresh),
                        dst: r.clone(),
                    },
                    pre,
                );
                self.register_read(*fresh, ev.clone());
                self.register_write(r.tensor, ev);
            }
        }
        Ok(())
    }

    fn lower_call_external(
        &mut self,
        variant: &TaskVariant,
        frame: &mut Frame,
        f: LeafFn,
        args: &[ArgExpr],
        block: &mut Block,
    ) -> Result<(), CompileError> {
        let refs: Vec<TensorRef> = args
            .iter()
            .map(|a| self.resolve_arg(frame, a))
            .collect::<Result<_, _>>()?;
        if refs.is_empty() {
            return Err(CompileError::Unsupported(
                "call-external with no arguments".into(),
            ));
        }
        let (reads, dst_reads) = leaf_effects(f, refs.len())?;
        let dst = refs.last().expect("nonempty").clone();

        // Privilege enforcement: the leaf may only write parameters its
        // task declared writable, and only read readable ones.
        let dst_priv = frame
            .privs
            .get(&dst.tensor)
            .copied()
            .unwrap_or(Privilege::ReadWrite);
        if !dst_priv.can_write() {
            return Err(CompileError::PrivilegeViolation {
                variant: variant.name.clone(),
                param: self.prog.tensors[dst.tensor].name.clone(),
                detail: "leaf writes a tensor without write privilege".into(),
            });
        }
        for &i in &reads {
            let p = frame
                .privs
                .get(&refs[i].tensor)
                .copied()
                .unwrap_or(Privilege::ReadWrite);
            if !p.can_read() {
                return Err(CompileError::PrivilegeViolation {
                    variant: variant.name.clone(),
                    param: self.prog.tensors[refs[i].tensor].name.clone(),
                    detail: "leaf reads a tensor without read privilege".into(),
                });
            }
        }

        let mut pre = Vec::new();
        for &i in &reads {
            pre.extend(self.read_deps(refs[i].tensor));
        }
        pre.extend(self.write_deps(dst.tensor));
        if dst_reads {
            pre.extend(self.read_deps(dst.tensor));
        }
        self.check_parallel_write(&variant.name, &dst)?;
        let ev = self.emit(
            block,
            OpKind::Call {
                f,
                args: refs.clone(),
            },
            pre,
        );
        for &i in &reads {
            self.register_read(refs[i].tensor, ev.clone());
        }
        self.register_write(dst.tensor, ev);
        Ok(())
    }
}

/// Read/write behaviour of an external function: `(read positions,
/// destination-also-read)`. The destination is always the last argument.
fn leaf_effects(f: LeafFn, arity: usize) -> Result<(Vec<usize>, bool), CompileError> {
    let (expected, dst_reads): (usize, bool) = match f {
        LeafFn::Fill(_) => (1, false),
        LeafFn::CopyExt | LeafFn::Exp | LeafFn::Scale(_) => (2, false),
        LeafFn::MmaAccum | LeafFn::MmaAccumBT => (3, true),
        LeafFn::AddExt | LeafFn::MaxExt => (3, false),
        LeafFn::RowMaxAccum | LeafFn::RowSumAccum => (2, true),
        LeafFn::SubRow | LeafFn::MulRow | LeafFn::DivRow => (3, false),
    };
    if arity != expected {
        return Err(CompileError::ArityMismatch {
            task: format!("{f:?}"),
            expected,
            actual: arity,
        });
    }
    Ok(((0..arity - 1).collect(), dst_reads))
}
