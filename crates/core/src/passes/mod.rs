//! Compiler passes, in the order of the paper's Fig. 6: dependence
//! analysis, vectorization, copy elimination, resource allocation, and
//! warp specialization (with pipelining).

pub mod alloc;
pub mod copyelim;
pub mod depan;
pub mod vectorize;
pub mod warpspec;
