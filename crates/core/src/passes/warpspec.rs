//! Warp specialization, pipelining, and code generation
//! (paper §4.2.5 and §4.2.6).
//!
//! This pass consumes the optimized IR and produces a
//! [`cypress_sim::Kernel`]. It performs, in one walk:
//!
//! - **grid extraction**: the outer BLOCK-level `pfor` nest becomes the
//!   kernel grid, its variables become block indices;
//! - **warp specialization**: the dependence graph is partitioned — every
//!   global→shared copy goes to the DMA warp, everything else to the
//!   compute warpgroups (the partition of Fig. 12); dependence edges that
//!   cross the partition become mbarrier pairs;
//! - **pipelining**: loops containing DMA loads are software-pipelined to
//!   the mapping's depth: pipelined buffers gain a stage dimension indexed
//!   `k % PIPE`, and backwards (write-after-read) dependencies become the
//!   consumer barriers the DMA warp waits on from iteration `PIPE` onward
//!   (the dashed edges of Fig. 12, the `PIPE` logic of Fig. 1b);
//! - **event lowering** (§4.2.6): TMA completion events become mbarrier
//!   arrivals, Tensor Core events become `wgmma` group waits, cross-warp
//!   events become shared-memory barriers, and point-wise event-array
//!   dependencies dissolve into program order;
//! - **fragment re-aggregation**: warp- and thread-level MMA partition
//!   path entries are dropped, so the 128 per-thread pieces of Fig. 4
//!   become one warpgroup-granular instruction (the simulator computes at
//!   fragment granularity; see DESIGN.md §1).

use crate::error::CompileError;
use crate::front::machine::{MemLevel, ProcLevel};
use crate::ir::{
    Block, EventId, EventType, IdxExpr, IrProgram, Op, OpKind, PartKind, TensorId, VarId,
};
use crate::passes::alloc::Allocation;
use cypress_sim::{
    BinOp, Expr, Instr, Kernel, KernelBuilder, RedOp, RoleKind, SimtOp, Slice, UnOp,
};
use std::collections::{HashMap, HashSet};

/// Scheduling options extracted from the mapping specification.
#[derive(Debug, Clone, Copy)]
pub struct SchedOptions {
    /// Split a DMA warp from the compute warpgroups.
    pub warpspecialize: bool,
    /// Software-pipeline depth for loops containing DMA loads.
    pub pipeline: usize,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            warpspecialize: true,
            pipeline: 2,
        }
    }
}

/// Lower the optimized IR to a device kernel.
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] for program shapes outside the
/// prototype's lowering (the paper's compiler has analogous limits), and
/// propagates backend validation failures.
pub fn lower(
    prog: &IrProgram,
    alloc: &Allocation,
    opts: SchedOptions,
) -> Result<Kernel, CompileError> {
    let mut s = Scheduler::new(prog, alloc, opts)?;
    s.build()
}

struct Scheduler<'a> {
    prog: &'a IrProgram,
    opts: SchedOptions,
    /// Block-level pfor vars -> grid dimension (0 = x, 1 = y, 2 = z).
    block_vars: HashMap<VarId, usize>,
    #[allow(dead_code)]
    grid: [usize; 3],
    /// CTA-level body.
    body: &'a Block,
    n_wgs: usize,
    builder: KernelBuilder,
    param_of: HashMap<TensorId, usize>,
    region_of: HashMap<TensorId, usize>,
    frag_of: HashMap<TensorId, usize>,
    /// Pipelined tensors and their stage count.
    stages_of: HashMap<TensorId, usize>,
    /// Producer/consumer mbarriers per DMA-loaded smem tensor.
    prod_bar: HashMap<TensorId, usize>,
    cons_bar: HashMap<TensorId, usize>,
    copyout_bar: Option<usize>,
    /// Mid-kernel store mode: a DMA store is followed by later DMA loads
    /// (the shape fused producer→consumer kernels lower to). Terminal
    /// stores keep the single `copyout_bar` handshake bit for bit;
    /// mid-kernel stores get a per-staging-tensor generational handshake:
    /// compute arrives `ready` once the staging data is written, the DMA
    /// warp stores it, then arrives `done` so compute may overwrite the
    /// staging buffer in the next generation.
    mid_store: bool,
    /// Staging tensor -> barrier the DMA warp waits on before storing
    /// (parties: every compute warpgroup).
    ready_bar: HashMap<TensorId, usize>,
    /// Staging tensor -> barrier the DMA warp arrives at once the store
    /// has landed (parties: the DMA warp alone).
    done_bar: HashMap<TensorId, usize>,
    /// Op (by result id) after which compute arrives at `ready` for
    /// these staging tensors: the last write before the store.
    arrive_ready_after: HashMap<EventId, Vec<TensorId>>,
    /// Op (by result id) before which compute waits on `done` for these
    /// staging tensors from the second generation of the given loop
    /// variable onward: the first write per store generation.
    wait_done_before: HashMap<EventId, Vec<(TensorId, VarId)>>,
    /// IR loop var -> sim loop var.
    var_map: HashMap<VarId, usize>,
    /// The innermost pipelined loop's variable (stage index source).
    stage_var: Option<VarId>,
    /// Enclosing `For` nest at the current emission point, outermost
    /// first, with trip counts. Pipeline stage indices and consumer-wait
    /// guards linearize over this nest, so a main loop that is re-entered
    /// by an outer loop (fused kernels walk chunk loops around their
    /// reduction loops) keeps the producer/consumer skew bounded by the
    /// pipeline depth globally, not merely per entry.
    loop_stack: Vec<(VarId, i64)>,
    _alloc: &'a Allocation,
}

/// Classification of one IR op for the warp-specialization partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    DmaLoad,
    DmaStore,
    Compute,
    Loop,
}

fn classify(prog: &IrProgram, op: &Op) -> Class {
    match &op.kind {
        OpKind::Copy { src, dst } => {
            let sm = prog.tensors[src.tensor].mem;
            let dm = prog.tensors[dst.tensor].mem;
            match (sm, dm) {
                (MemLevel::Global, MemLevel::Shared) => Class::DmaLoad,
                (MemLevel::Shared, MemLevel::Global) => Class::DmaStore,
                _ => Class::Compute,
            }
        }
        OpKind::Call { .. } => Class::Compute,
        OpKind::For { .. } | OpKind::Pfor { .. } => Class::Loop,
    }
}

impl<'a> Scheduler<'a> {
    fn new(
        prog: &'a IrProgram,
        alloc: &'a Allocation,
        opts: SchedOptions,
    ) -> Result<Self, CompileError> {
        // Unwrap the outer BLOCK pfor nest.
        let mut block_vars = HashMap::new();
        let mut grid = [1usize; 3];
        let mut cur: &Block = &prog.body;
        let mut dim = 0;
        loop {
            if cur.ops.len() == 1 {
                if let OpKind::Pfor {
                    var,
                    extent,
                    proc: ProcLevel::Block,
                    body,
                } = &cur.ops[0].kind
                {
                    if dim >= 3 {
                        return Err(CompileError::Unsupported(
                            "more than 3 grid dimensions".into(),
                        ));
                    }
                    block_vars.insert(*var, dim);
                    grid[dim] = *extent as usize;
                    dim += 1;
                    cur = body;
                    continue;
                }
            }
            break;
        }
        if dim == 0 {
            return Err(CompileError::Unsupported(
                "entrypoint must launch a parallel grid of BLOCK-level tasks".into(),
            ));
        }
        // Number of warpgroups: widest WARPGROUP event dimension.
        let mut n_wgs = 1usize;
        fn scan_wgs(b: &Block, n: &mut usize) {
            for op in &b.ops {
                if let EventType::Array(dims) = &op.ty {
                    for (e, p) in dims {
                        if *p == ProcLevel::Warpgroup {
                            *n = (*n).max(*e);
                        }
                    }
                }
                match &op.kind {
                    OpKind::For { body, .. } | OpKind::Pfor { body, .. } => scan_wgs(body, n),
                    _ => {}
                }
            }
        }
        scan_wgs(cur, &mut n_wgs);

        let name = prog.name.clone();
        Ok(Scheduler {
            prog,
            opts,
            block_vars,
            grid,
            body: cur,
            n_wgs,
            builder: KernelBuilder::new(name, grid),
            param_of: HashMap::new(),
            region_of: HashMap::new(),
            frag_of: HashMap::new(),
            stages_of: HashMap::new(),
            prod_bar: HashMap::new(),
            cons_bar: HashMap::new(),
            copyout_bar: None,
            mid_store: false,
            ready_bar: HashMap::new(),
            done_bar: HashMap::new(),
            arrive_ready_after: HashMap::new(),
            wait_done_before: HashMap::new(),
            var_map: HashMap::new(),
            stage_var: None,
            loop_stack: Vec::new(),
            _alloc: alloc,
        })
    }

    fn build(&mut self) -> Result<Kernel, CompileError> {
        // Declare parameters in declaration order.
        let mut params: Vec<&crate::ir::TensorDecl> = self
            .prog
            .tensors
            .iter()
            .filter(|t| t.param.is_some())
            .collect();
        params.sort_by_key(|t| t.param);
        for t in params {
            let idx = self.builder.param(t.name.clone(), t.rows, t.cols, t.dtype);
            self.param_of.insert(t.id, idx);
        }

        // Find DMA-loaded tensors (per loop or prologue) to size stages.
        let mut loaded_in_loop: HashSet<TensorId> = HashSet::new();
        let mut loaded_outside: HashSet<TensorId> = HashSet::new();
        fn scan_loads(
            prog: &IrProgram,
            b: &Block,
            in_loop: bool,
            il: &mut HashSet<TensorId>,
            ol: &mut HashSet<TensorId>,
        ) {
            for op in &b.ops {
                match &op.kind {
                    OpKind::Copy { .. } if classify(prog, op) == Class::DmaLoad => {
                        if let OpKind::Copy { dst, .. } = &op.kind {
                            if in_loop {
                                il.insert(dst.tensor);
                            } else {
                                ol.insert(dst.tensor);
                            }
                        }
                    }
                    OpKind::For { body, .. } => scan_loads(prog, body, true, il, ol),
                    OpKind::Pfor { body, .. } => scan_loads(prog, body, in_loop, il, ol),
                    _ => {}
                }
            }
        }
        scan_loads(
            self.prog,
            self.body,
            false,
            &mut loaded_in_loop,
            &mut loaded_outside,
        );

        // Declare shared regions and register fragments for every tensor
        // that survives in the body.
        let mut used: HashSet<TensorId> = HashSet::new();
        fn scan_used(b: &Block, used: &mut HashSet<TensorId>) {
            for op in &b.ops {
                match &op.kind {
                    OpKind::Copy { src, dst } => {
                        used.insert(src.tensor);
                        used.insert(dst.tensor);
                    }
                    OpKind::Call { args, .. } => {
                        for a in args {
                            used.insert(a.tensor);
                        }
                    }
                    OpKind::For { body, .. } | OpKind::Pfor { body, .. } => scan_used(body, used),
                }
            }
        }
        scan_used(self.body, &mut used);
        let mut used: Vec<TensorId> = used.into_iter().collect();
        used.sort_unstable();
        let pipe = self.opts.pipeline.max(1);
        for &t in &used {
            let d = &self.prog.tensors[t];
            match d.mem {
                MemLevel::Shared => {
                    let stages = if loaded_in_loop.contains(&t) { pipe } else { 1 };
                    let r = self
                        .builder
                        .smem(d.name.clone(), d.rows, d.cols, d.dtype, stages);
                    self.region_of.insert(t, r);
                    self.stages_of.insert(t, stages);
                }
                MemLevel::Register => {
                    let f = self.builder.frag(d.name.clone(), d.rows, d.cols);
                    self.frag_of.insert(t, f);
                }
                MemLevel::Global => {
                    if !self.param_of.contains_key(&t) {
                        return Err(CompileError::Unsupported(format!(
                            "non-parameter global tensor `{}` survives lowering",
                            d.name
                        )));
                    }
                }
                MemLevel::None => {
                    return Err(CompileError::NoneMemoryMaterialized {
                        tensor: d.name.clone(),
                    })
                }
            }
        }

        // Barriers: one prod/cons pair per DMA-loaded smem tensor, plus a
        // copyout barrier if there is a DMA store fed by compute results.
        let mut all_loaded: Vec<TensorId> = loaded_in_loop
            .iter()
            .chain(loaded_outside.iter())
            .copied()
            .collect();
        all_loaded.sort_unstable();
        all_loaded.dedup();
        for t in &all_loaded {
            let p = self.builder.mbar(1);
            self.prod_bar.insert(*t, p);
        }
        let mut in_loop_sorted: Vec<TensorId> = loaded_in_loop.iter().copied().collect();
        in_loop_sorted.sort_unstable();
        for t in &in_loop_sorted {
            let c = self.builder.mbar(self.n_wgs);
            self.cons_bar.insert(*t, c);
        }
        // Program-order class stream: detects whether any DMA store is
        // followed by a DMA load (a mid-kernel store→load chain, the
        // shape fused kernels lower to) and collects stored staging
        // tensors.
        let mut class_stream: Vec<(Class, Option<TensorId>)> = Vec::new();
        fn scan_classes(prog: &IrProgram, b: &Block, out: &mut Vec<(Class, Option<TensorId>)>) {
            for op in &b.ops {
                match &op.kind {
                    OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                        scan_classes(prog, body, out)
                    }
                    OpKind::Copy { src, .. } => {
                        let class = classify(prog, op);
                        let staging = (class == Class::DmaStore).then_some(src.tensor);
                        out.push((class, staging));
                    }
                    OpKind::Call { .. } => out.push((Class::Compute, None)),
                }
            }
        }
        scan_classes(self.prog, self.body, &mut class_stream);
        let has_store = class_stream.iter().any(|(c, _)| *c == Class::DmaStore);
        let last_load = class_stream.iter().rposition(|(c, _)| *c == Class::DmaLoad);
        let first_store = class_stream.iter().position(|(c, _)| *c == Class::DmaStore);
        self.mid_store = matches!((first_store, last_load), (Some(s), Some(l)) if s < l);
        if self.mid_store {
            self.analyze_mid_stores(self.body, None)?;
        } else if has_store {
            self.copyout_bar = Some(self.builder.mbar(self.n_wgs));
        }

        // Pre-allocate sim loop vars for every IR For var.
        fn scan_fors(b: &Block, vars: &mut Vec<VarId>) {
            for op in &b.ops {
                match &op.kind {
                    OpKind::For { var, body, .. } => {
                        vars.push(*var);
                        scan_fors(body, vars);
                    }
                    OpKind::Pfor { body, .. } => scan_fors(body, vars),
                    _ => {}
                }
            }
        }
        let mut fors = Vec::new();
        scan_fors(self.body, &mut fors);
        for v in fors {
            let sv = self.builder.fresh_var();
            self.var_map.insert(v, sv);
        }

        // Emit roles.
        let wgs = self.n_wgs;
        if self.opts.warpspecialize {
            let dma = self.emit_dma(self.body)?;
            self.builder.role(RoleKind::Dma, dma);
            for wg in 0..wgs {
                let body = self.emit_compute(self.body, wg, true)?;
                self.builder.role(RoleKind::Compute(wg), body);
            }
        } else {
            // Bulk-synchronous: warpgroup 0 issues the data movement inline.
            for wg in 0..wgs {
                let body = self.emit_compute(self.body, wg, false)?;
                self.builder.role(RoleKind::Compute(wg), body);
            }
        }

        let b = std::mem::replace(&mut self.builder, KernelBuilder::new("done", [1, 1, 1]));
        Ok(b.build())
    }

    // ---- mid-kernel store analysis ----------------------------------------

    /// For every staging tensor stored in `block`, allocate its
    /// ready/done barrier pair and record where compute arrives (after
    /// the last staging write preceding the store) and where it must
    /// wait for the previous generation's store to land (before the
    /// first staging write, from the second iteration of the enclosing
    /// loop onward). Mid-store mode only.
    fn analyze_mid_stores(
        &mut self,
        block: &'a Block,
        enclosing: Option<VarId>,
    ) -> Result<(), CompileError> {
        let prog = self.prog;
        let mut stored: Vec<TensorId> = Vec::new();
        for op in &block.ops {
            if classify(prog, op) == Class::DmaStore {
                if let OpKind::Copy { src, .. } = &op.kind {
                    if !stored.contains(&src.tensor) {
                        stored.push(src.tensor);
                    }
                }
            }
        }
        for t in stored {
            if self.ready_bar.contains_key(&t) {
                return Err(CompileError::Unsupported(format!(
                    "staging tensor `{}` is stored from more than one block",
                    prog.tensors[t].name
                )));
            }
            let first_store = block
                .ops
                .iter()
                .position(|op| {
                    classify(prog, op) == Class::DmaStore
                        && matches!(&op.kind, OpKind::Copy { src, .. } if src.tensor == t)
                })
                .expect("tensor was collected from a store in this block");
            let writes: Vec<usize> = (0..first_store)
                .filter(|&i| subtree_writes(&block.ops[i], t))
                .collect();
            let Some(&last_write) = writes.last() else {
                return Err(CompileError::Unsupported(format!(
                    "mid-kernel store of `{}` has no preceding staging write",
                    prog.tensors[t].name
                )));
            };
            let ready = self.builder.mbar(self.n_wgs);
            self.ready_bar.insert(t, ready);
            let done = self.builder.mbar(1);
            self.done_bar.insert(t, done);
            self.arrive_ready_after
                .entry(block.ops[last_write].result)
                .or_default()
                .push(t);
            if let Some(var) = enclosing {
                self.wait_done_before
                    .entry(block.ops[writes[0]].result)
                    .or_default()
                    .push((t, var));
            }
        }
        for op in &block.ops {
            match &op.kind {
                OpKind::For { var, body, .. } => self.analyze_mid_stores(body, Some(*var))?,
                OpKind::Pfor { body, .. } => self.analyze_mid_stores(body, enclosing)?,
                _ => {}
            }
        }
        Ok(())
    }

    // ---- DMA role ---------------------------------------------------------

    fn emit_dma(&mut self, block: &Block) -> Result<Vec<Instr>, CompileError> {
        let mut out = Vec::new();
        let mut pending_store = false;
        // Mid-store mode: consecutive stores of one staging tensor form a
        // group; the group is closed (await the stores, release the
        // staging buffer to compute) before any other DMA work.
        let mut open_group: Option<TensorId> = None;
        let mut ready_waited: HashSet<TensorId> = HashSet::new();
        macro_rules! close_group {
            () => {
                if let Some(t) = open_group.take() {
                    out.push(Instr::TmaStoreWait);
                    out.push(Instr::MbarArrive {
                        bar: self.done_bar[&t],
                    });
                }
            };
        }
        for op in &block.ops {
            match classify(self.prog, op) {
                Class::DmaLoad => {
                    let OpKind::Copy { src, dst } = &op.kind else {
                        unreachable!()
                    };
                    // A later load may read just-stored data back (the
                    // fused-chain round trip): the store must land first.
                    close_group!();
                    let s = self.slice(src, 0)?;
                    let d = self.slice(dst, 0)?;
                    let bar = self.prod_bar[&dst.tensor];
                    out.push(Instr::TmaLoad {
                        src: s,
                        dst: d,
                        bar,
                    });
                }
                Class::DmaStore => {
                    let OpKind::Copy { src, dst } = &op.kind else {
                        unreachable!()
                    };
                    if self.mid_store {
                        if open_group != Some(src.tensor) {
                            close_group!();
                            // Wait until every warpgroup has written this
                            // generation of the staging tensor.
                            if ready_waited.insert(src.tensor) {
                                out.push(Instr::MbarWait {
                                    bar: self.ready_bar[&src.tensor],
                                });
                            }
                            open_group = Some(src.tensor);
                        }
                    } else if let Some(co) = self.copyout_bar {
                        if !pending_store {
                            out.push(Instr::MbarWait { bar: co });
                            pending_store = true;
                        }
                    }
                    let s = self.slice(src, 0)?;
                    let d = self.slice(dst, 0)?;
                    out.push(Instr::TmaStore { src: s, dst: d });
                }
                Class::Compute => {}
                Class::Loop => {
                    let (var, extent, body, parallel) = match &op.kind {
                        OpKind::For { var, extent, body } => (*var, *extent, body, false),
                        OpKind::Pfor {
                            var, extent, body, ..
                        } => (*var, *extent, body, true),
                        _ => unreachable!(),
                    };
                    if parallel {
                        return Err(CompileError::Unsupported(
                            "nested non-BLOCK pfor survived vectorization".into(),
                        ));
                    }
                    close_group!();
                    // Loads anywhere below pick the innermost loop as the
                    // pipeline stage index; the WAR guard belongs to the
                    // loop whose body issues the loads directly.
                    let mut il = HashSet::new();
                    let mut ol = HashSet::new();
                    scan_loads_block(self.prog, body, &mut il, &mut ol);
                    let direct = direct_loads(self.prog, body);
                    let prev_stage = self.stage_var;
                    if !il.is_empty() || !ol.is_empty() {
                        self.stage_var = Some(var);
                    }
                    self.loop_stack.push((var, extent));
                    let inner = self.emit_dma(body)?;
                    // Backwards WAR dependencies: from the `stages`-th
                    // global iteration of the nest onward, wait for the
                    // consumer to free each buffer. The ordinal (not the
                    // bare loop variable) keeps the skew bounded when an
                    // outer loop re-enters this one.
                    let guard_ord = self.stage_ordinal(var);
                    self.loop_stack.pop();
                    self.stage_var = prev_stage;
                    if inner.is_empty() {
                        continue;
                    }
                    let sv = self.var_map[&var];
                    let mut guarded = Vec::new();
                    if !direct.is_empty() {
                        let pipe = self.opts.pipeline.max(1) as i64;
                        let mut waits = Vec::new();
                        for t in &direct {
                            if let Some(c) = self.cons_bar.get(t) {
                                waits.push(Instr::MbarWait { bar: *c });
                            }
                        }
                        if !waits.is_empty() {
                            let ord = guard_ord.expect("the loop was on the stack during emission");
                            guarded.push(Instr::If {
                                cond: cypress_sim::Cond::Ge(ord, Expr::lit(pipe)),
                                then_: waits,
                                else_: vec![],
                            });
                        }
                    }
                    guarded.extend(inner);
                    out.push(Instr::Loop {
                        var: sv,
                        count: Expr::lit(extent),
                        body: guarded,
                    });
                }
            }
        }
        close_group!();
        if pending_store {
            out.push(Instr::TmaStoreWait);
        }
        Ok(out)
    }

    // ---- compute roles ----------------------------------------------------

    fn emit_compute(
        &mut self,
        block: &Block,
        wg: usize,
        warpspec: bool,
    ) -> Result<Vec<Instr>, CompileError> {
        let mut st = ComputeState::default();
        // Prologue loads (outside any loop) must also be awaited.
        for op in &block.ops {
            if classify(self.prog, op) == Class::DmaLoad {
                if let OpKind::Copy { dst, .. } = &op.kind {
                    st.dma_loaded.insert(dst.tensor);
                }
            }
        }
        let mut out = self.emit_compute_block(block, wg, warpspec, &mut st)?;
        // Final arrivals: release the copyout barrier after all work.
        if let Some(co) = self.copyout_bar {
            flush_wgmma(&mut out, &mut st, 0);
            out.push(Instr::MbarArrive { bar: co });
        }
        Ok(out)
    }

    #[allow(clippy::too_many_lines)]
    fn emit_compute_block(
        &mut self,
        block: &Block,
        wg: usize,
        warpspec: bool,
        st: &mut ComputeState,
    ) -> Result<Vec<Instr>, CompileError> {
        let mut out = Vec::new();
        for op in &block.ops {
            // Mid-store handshake, wait side: before overwriting a staging
            // tensor for the next store generation, the previous
            // generation's store must have landed.
            if warpspec && self.mid_store {
                if let Some(list) = self.wait_done_before.get(&op.result) {
                    for (t, var) in list.clone() {
                        // Guard on the *global* generation ordinal, not
                        // the bare loop variable: like the pipeline
                        // guards, the skew must stay bounded even when
                        // an outer loop re-enters the store loop.
                        let ord = self
                            .stage_ordinal(var)
                            .unwrap_or_else(|| Expr::var(self.var_map[&var]));
                        out.push(Instr::If {
                            cond: cypress_sim::Cond::Ge(ord, Expr::lit(1)),
                            then_: vec![Instr::MbarWait {
                                bar: self.done_bar[&t],
                            }],
                            else_: vec![],
                        });
                    }
                }
            }
            match classify(self.prog, op) {
                Class::DmaLoad => {
                    if !warpspec && wg == 0 {
                        // Bulk-synchronous mode: warpgroup 0 issues the load.
                        let OpKind::Copy { src, dst } = &op.kind else {
                            unreachable!()
                        };
                        let s = self.slice(src, wg)?;
                        let d = self.slice(dst, wg)?;
                        let bar = self.prod_bar[&dst.tensor];
                        out.push(Instr::TmaLoad {
                            src: s,
                            dst: d,
                            bar,
                        });
                    }
                }
                Class::DmaStore => {
                    if !warpspec && wg == 0 {
                        let OpKind::Copy { src, dst } = &op.kind else {
                            unreachable!()
                        };
                        flush_wgmma(&mut out, st, 0);
                        let s = self.slice(src, wg)?;
                        let d = self.slice(dst, wg)?;
                        out.push(Instr::TmaStore { src: s, dst: d });
                        out.push(Instr::TmaStoreWait);
                    }
                }
                Class::Compute => {
                    // Skip ops that belong to other warpgroups.
                    if !self.op_on_wg(op, wg) {
                        continue;
                    }
                    let (reads, writes) = self.op_data(op, wg)?;
                    // Producer waits: first touch of a DMA-loaded buffer.
                    for t in reads.iter().chain(writes.iter()) {
                        self.wait_prod(&mut out, st, *t);
                    }
                    // Tensor Core hazards (a wgmma issues asynchronously; a
                    // subsequent conflicting op must group-wait first).
                    if !matches!(
                        &op.kind,
                        OpKind::Call {
                            f: crate::front::ast::LeafFn::MmaAccum
                                | crate::front::ast::LeafFn::MmaAccumBT,
                            ..
                        }
                    ) {
                        if let Some(i) = st.last_conflict(&writes, &reads) {
                            let pending = st.outstanding.len() - 1 - i;
                            flush_wgmma(&mut out, st, pending);
                        }
                    }
                    self.emit_op(op, wg, &mut out, st)?;
                }
                Class::Loop => {
                    let (var, extent, body) = match &op.kind {
                        OpKind::For { var, extent, body } => (*var, *extent, body),
                        OpKind::Pfor { .. } => {
                            return Err(CompileError::Unsupported(
                                "nested non-BLOCK pfor survived vectorization".into(),
                            ))
                        }
                        _ => unreachable!(),
                    };
                    let mut il = HashSet::new();
                    let mut ol = HashSet::new();
                    scan_loads_block(self.prog, body, &mut il, &mut ol);
                    // A loop is a main (pipelined) loop when its body
                    // issues loads directly; loops that only contain
                    // deeper load loops must not duplicate the per-
                    // iteration consumer handshake.
                    let direct = direct_loads(self.prog, body);
                    let is_main = !direct.is_empty();
                    let prev_stage = self.stage_var;
                    if !il.is_empty() || !ol.is_empty() {
                        self.stage_var = Some(var);
                    }
                    let mut inner_st = ComputeState::default();
                    if is_main {
                        // Buffers loaded this iteration need prod waits.
                        inner_st.dma_loaded = direct.iter().copied().collect();
                    } else {
                        // Hoist producer waits out of the inner loop — a
                        // wait inside would consume one phase per inner
                        // iteration.
                        let mut touched = HashSet::new();
                        collect_touched(body, &mut touched);
                        let mut need: Vec<TensorId> = touched
                            .iter()
                            .filter(|t| st.dma_loaded.contains(t) && !st.waited.contains(*t))
                            .copied()
                            .collect();
                        need.sort_unstable();
                        for t in need {
                            self.wait_prod(&mut out, st, t);
                        }
                        inner_st.dma_loaded = st.dma_loaded.clone();
                        inner_st.waited = st.waited.clone();
                        inner_st.outstanding = std::mem::take(&mut st.outstanding);
                    }
                    self.loop_stack.push((var, extent));
                    let mut inner = self.emit_compute_block(body, wg, warpspec, &mut inner_st)?;
                    self.loop_stack.pop();
                    // End of iteration: retire Tensor Core work that reads
                    // pipelined buffers, then release them to the DMA warp.
                    if is_main {
                        let mut sorted: Vec<TensorId> =
                            inner_st.dma_loaded.iter().copied().collect();
                        sorted.sort_unstable();
                        if let Some(i) = inner_st.last_conflict(&sorted, &[]) {
                            let pending = inner_st.outstanding.len() - 1 - i;
                            flush_wgmma(&mut inner, &mut inner_st, pending);
                        }
                        for t in &sorted {
                            if let Some(c) = self.cons_bar.get(t) {
                                inner.push(Instr::MbarArrive { bar: *c });
                            }
                        }
                    } else {
                        // Propagate hazards out of the inner loop.
                        st.outstanding = std::mem::take(&mut inner_st.outstanding);
                        st.waited = inner_st.waited.clone();
                    }
                    self.stage_var = prev_stage;
                    if !inner.is_empty() {
                        let sv = self.var_map[&var];
                        out.push(Instr::Loop {
                            var: sv,
                            count: Expr::lit(extent),
                            body: inner,
                        });
                    }
                }
            }
            // Mid-store handshake, arrive side: the staging data for a
            // store generation is complete once its last write retires.
            if warpspec && self.mid_store {
                if let Some(list) = self.arrive_ready_after.get(&op.result) {
                    for t in list.clone() {
                        out.push(Instr::MbarArrive {
                            bar: self.ready_bar[&t],
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Does this op execute on warpgroup `wg`? Ops without a warpgroup
    /// event dimension run on warpgroup 0.
    fn op_on_wg(&self, op: &Op, wg: usize) -> bool {
        match &op.ty {
            EventType::Array(dims) => {
                for (e, p) in dims {
                    if *p == ProcLevel::Warpgroup {
                        return wg < *e;
                    }
                }
                wg == 0
            }
            EventType::Unit => wg == 0,
        }
    }

    /// Base tensors an op reads/writes after truncation.
    fn op_data(&self, op: &Op, _wg: usize) -> Result<(Vec<TensorId>, Vec<TensorId>), CompileError> {
        Ok(match &op.kind {
            OpKind::Copy { src, dst } => (vec![src.tensor], vec![dst.tensor]),
            OpKind::Call { f, args } => {
                let dst = args.last().expect("call has destination").tensor;
                let mut reads: Vec<TensorId> =
                    args[..args.len() - 1].iter().map(|r| r.tensor).collect();
                if f.dst_reads() {
                    reads.push(dst);
                }
                (reads, vec![dst])
            }
            _ => (vec![], vec![]),
        })
    }

    fn wait_prod(&mut self, out: &mut Vec<Instr>, st: &mut ComputeState, t: TensorId) {
        if st.dma_loaded.contains(&t) && !st.waited.contains(&t) {
            if let Some(p) = self.prod_bar.get(&t) {
                out.push(Instr::MbarWait { bar: *p });
                st.waited.insert(t);
            }
        }
    }

    fn emit_op(
        &mut self,
        op: &Op,
        wg: usize,
        out: &mut Vec<Instr>,
        st: &mut ComputeState,
    ) -> Result<(), CompileError> {
        match &op.kind {
            OpKind::Copy { src, dst } => {
                let s = self.slice(src, wg)?;
                let d = self.slice(dst, wg)?;
                out.push(Instr::Simt(SimtOp::Copy { src: s, dst: d }));
            }
            OpKind::Call { f, args } => {
                use crate::front::ast::LeafFn as L;
                let sl = |me: &mut Self, i: usize| me.slice(&args[i], wg);
                match f {
                    L::MmaAccum | L::MmaAccumBT => {
                        let a = sl(self, 0)?;
                        let b = sl(self, 1)?;
                        let acc = sl(self, 2)?;
                        let reads = vec![args[0].tensor, args[1].tensor];
                        let writes = vec![args[2].tensor];
                        out.push(Instr::Wgmma {
                            a,
                            b,
                            acc,
                            accumulate: true,
                            transpose_b: matches!(f, L::MmaAccumBT),
                        });
                        st.outstanding.push(WgmmaHazard { reads, writes });
                    }
                    L::Fill(v) => {
                        let d = sl(self, 0)?;
                        out.push(Instr::Simt(SimtOp::Fill { dst: d, value: *v }));
                    }
                    L::CopyExt => {
                        let s = sl(self, 0)?;
                        let d = sl(self, 1)?;
                        out.push(Instr::Simt(SimtOp::Copy { src: s, dst: d }));
                    }
                    L::Exp => {
                        let s = sl(self, 0)?;
                        let d = sl(self, 1)?;
                        out.push(Instr::Simt(SimtOp::Map {
                            op: UnOp::Exp,
                            src: s,
                            dst: d,
                        }));
                    }
                    L::Scale(c) => {
                        let s = sl(self, 0)?;
                        let d = sl(self, 1)?;
                        out.push(Instr::Simt(SimtOp::Map {
                            op: UnOp::Scale(*c),
                            src: s,
                            dst: d,
                        }));
                    }
                    L::AddExt | L::MaxExt => {
                        let a = sl(self, 0)?;
                        let b = sl(self, 1)?;
                        let d = sl(self, 2)?;
                        let bin = if matches!(f, L::AddExt) {
                            BinOp::Add
                        } else {
                            BinOp::Max
                        };
                        out.push(Instr::Simt(SimtOp::Zip {
                            op: bin,
                            a,
                            b,
                            dst: d,
                        }));
                    }
                    L::RowMaxAccum | L::RowSumAccum => {
                        let s = sl(self, 0)?;
                        let d = sl(self, 1)?;
                        let red = if matches!(f, L::RowMaxAccum) {
                            RedOp::Max
                        } else {
                            RedOp::Sum
                        };
                        out.push(Instr::Simt(SimtOp::RowReduce {
                            op: red,
                            src: s,
                            dst: d,
                            include_dst: true,
                        }));
                    }
                    L::SubRow | L::MulRow | L::DivRow => {
                        let s = sl(self, 0)?;
                        let r = sl(self, 1)?;
                        let d = sl(self, 2)?;
                        let bin = match f {
                            L::SubRow => BinOp::Sub,
                            L::MulRow => BinOp::Mul,
                            _ => BinOp::Div,
                        };
                        out.push(Instr::Simt(SimtOp::RowZip {
                            op: bin,
                            src: s,
                            row: r,
                            dst: d,
                        }));
                    }
                }
            }
            _ => unreachable!("loops handled by the caller"),
        }
        Ok(())
    }

    /// The global iteration ordinal of the loop nest down to (and
    /// including) the loop of `upto`: outer vars weighted by inner trip
    /// counts. For a single non-nested main loop this is just the loop
    /// variable — the classic pipeline index — and nesting generalizes
    /// it so stage rotation and consumer-wait guards survive loop
    /// re-entry.
    fn stage_ordinal(&self, upto: VarId) -> Option<Expr> {
        let pos = self.loop_stack.iter().rposition(|(v, _)| *v == upto)?;
        let mut expr: Option<Expr> = None;
        for (v, e) in &self.loop_stack[..=pos] {
            let sv = self.var_map[v];
            expr = Some(match expr {
                None => Expr::var(sv),
                Some(x) => x * *e + Expr::var(sv),
            });
        }
        expr
    }

    // ---- slices -----------------------------------------------------------

    /// Translate a tensor reference into a simulator slice, truncating the
    /// path at the first warp/thread-level MMA entry (fragment
    /// re-aggregation) and accumulating affine offsets.
    fn slice(&self, r: &crate::ir::TensorRef, wg: usize) -> Result<Slice, CompileError> {
        let decl = &self.prog.tensors[r.tensor];
        let mut row0 = Expr::lit(0);
        let mut col0 = Expr::lit(0);
        let mut rows = decl.rows;
        let mut cols = decl.cols;
        for (pid, idx) in &r.path {
            let part = &self.prog.parts[*pid];
            match &part.kind {
                PartKind::Blocks {
                    tile_rows,
                    tile_cols,
                    ..
                } => {
                    if idx.len() != 2 {
                        return Err(CompileError::Unsupported(
                            "blocks partitions are indexed with 2 coordinates".into(),
                        ));
                    }
                    let ri = self.tr_idx(&idx[0], wg)?;
                    let ci = self.tr_idx(&idx[1], wg)?;
                    row0 = row0 + ri * (*tile_rows as i64);
                    col0 = col0 + ci * (*tile_cols as i64);
                    rows = *tile_rows;
                    cols = *tile_cols;
                }
                PartKind::Mma {
                    level: ProcLevel::Warp | ProcLevel::Thread,
                    ..
                } => {
                    // Fragment re-aggregation: the collective warpgroup
                    // operation covers all warp/thread pieces.
                    break;
                }
                PartKind::Mma { .. } => {
                    return Err(CompileError::Unsupported(
                        "mma partitions above the warp level".into(),
                    ));
                }
            }
        }
        let mut s = if let Some(p) = self.param_of.get(&r.tensor) {
            Slice::param(*p)
        } else if let Some(reg) = self.region_of.get(&r.tensor) {
            let mut s = Slice::smem(*reg);
            if self.stages_of.get(&r.tensor).copied().unwrap_or(1) > 1 {
                let v = self.stage_var.ok_or_else(|| {
                    CompileError::Unsupported("pipelined buffer used outside its loop".into())
                })?;
                let ord = self.stage_ordinal(v).ok_or_else(|| {
                    CompileError::Unsupported("pipelined buffer used outside its loop".into())
                })?;
                let pipe = self.opts.pipeline.max(1) as i64;
                s = s.stage(ord % pipe);
            }
            s
        } else if let Some(f) = self.frag_of.get(&r.tensor) {
            Slice::frag(*f)
        } else {
            return Err(CompileError::Unsupported(format!(
                "tensor `{}` has no physical home",
                decl.name
            )));
        };
        s = s.at(row0, col0).extent(rows, cols);
        Ok(s)
    }

    fn tr_idx(&self, i: &IdxExpr, wg: usize) -> Result<Expr, CompileError> {
        let base: Expr = match i.var {
            None => return Ok(Expr::lit(i.offset)),
            Some(v) => {
                if let Some(dim) = self.block_vars.get(&v) {
                    match dim {
                        0 => Expr::block_x(),
                        1 => Expr::block_y(),
                        _ => Expr::block_z(),
                    }
                } else if let Some(level) = self.prog.proc_vars.get(&v) {
                    match level {
                        ProcLevel::Warpgroup => Expr::lit(wg as i64),
                        other => {
                            return Err(CompileError::Unsupported(format!(
                                "{other}-level index survives fragment re-aggregation"
                            )))
                        }
                    }
                } else if let Some(sv) = self.var_map.get(&v) {
                    Expr::var(*sv)
                } else {
                    return Err(CompileError::Unsupported(format!(
                        "unmapped loop variable i{v}"
                    )));
                }
            }
        };
        Ok(base * i.scale + i.offset)
    }
}

/// Tensors DMA-loaded directly in this block's op list (not nested in a
/// deeper `For`), sorted: the set a loop's per-iteration pipeline
/// handshake covers.
fn direct_loads(prog: &IrProgram, b: &Block) -> Vec<TensorId> {
    let mut out: Vec<TensorId> = b
        .ops
        .iter()
        .filter_map(|op| match &op.kind {
            OpKind::Copy { src, dst }
                if prog.tensors[src.tensor].mem == MemLevel::Global
                    && prog.tensors[dst.tensor].mem == MemLevel::Shared =>
            {
                Some(dst.tensor)
            }
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Does any op in this subtree write tensor `t` (compute writes only —
/// a DMA store *reads* its staging source)?
fn subtree_writes(op: &Op, t: TensorId) -> bool {
    match &op.kind {
        OpKind::Copy { dst, .. } => dst.tensor == t,
        OpKind::Call { args, .. } => args.last().is_some_and(|d| d.tensor == t),
        OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
            body.ops.iter().any(|o| subtree_writes(o, t))
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn scan_loads_block(
    prog: &IrProgram,
    b: &Block,
    il: &mut HashSet<TensorId>,
    ol: &mut HashSet<TensorId>,
) {
    for op in &b.ops {
        match &op.kind {
            OpKind::Copy { src, dst }
                if prog.tensors[src.tensor].mem == MemLevel::Global
                    && prog.tensors[dst.tensor].mem == MemLevel::Shared =>
            {
                ol.insert(dst.tensor);
            }
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                scan_loads_block(prog, body, il, ol);
            }
            _ => {}
        }
    }
}

/// Tensor Core hazard: an outstanding `wgmma`'s read/write sets.
#[derive(Debug, Clone)]
struct WgmmaHazard {
    reads: Vec<TensorId>,
    writes: Vec<TensorId>,
}

#[derive(Debug, Default)]
struct ComputeState {
    outstanding: Vec<WgmmaHazard>,
    dma_loaded: HashSet<TensorId>,
    waited: HashSet<TensorId>,
}

impl ComputeState {
    /// Index of the most recent outstanding `wgmma` conflicting with an op
    /// that reads `reads` and writes `writes`.
    fn last_conflict(&self, writes: &[TensorId], reads: &[TensorId]) -> Option<usize> {
        for (i, h) in self.outstanding.iter().enumerate().rev() {
            let raw = reads.iter().any(|t| h.writes.contains(t));
            let war = writes
                .iter()
                .any(|t| h.reads.contains(t) || h.writes.contains(t));
            if raw || war {
                return Some(i);
            }
        }
        None
    }
}

/// Emit a `wgmma` group wait leaving at most `pending` outstanding.
fn flush_wgmma(out: &mut Vec<Instr>, st: &mut ComputeState, pending: usize) {
    if st.outstanding.len() > pending {
        out.push(Instr::WgmmaWait { pending });
        let keep_from = st.outstanding.len() - pending;
        st.outstanding = st.outstanding.split_off(keep_from);
    }
}

/// Base tensors referenced anywhere in a block subtree.
fn collect_touched(b: &Block, out: &mut HashSet<TensorId>) {
    for op in &b.ops {
        match &op.kind {
            OpKind::Copy { src, dst } => {
                out.insert(src.tensor);
                out.insert(dst.tensor);
            }
            OpKind::Call { args, .. } => {
                for a in args {
                    out.insert(a.tensor);
                }
            }
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => collect_touched(body, out),
        }
    }
}
