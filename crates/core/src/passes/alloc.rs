//! Shared-memory resource allocation (paper §4.2.4, Fig. 11).
//!
//! Tensors mapped to shared memory must be bound to physical allocations.
//! The trade-off is memory pressure versus parallelism: aliasing two
//! logical tensors onto one allocation saves space but serializes their
//! live ranges. Following the paper (and Knight et al.), the allocator
//! starts from the *complete* interference graph — every tensor in its own
//! allocation — and removes auxiliary edges (allowing aliasing) only until
//! the footprint fits the user's budget, thereby aliasing as little as
//! possible. Pairs that end up aliased get write-after-read event
//! dependencies so their live ranges cannot overlap.

use crate::error::CompileError;
use crate::front::machine::MemLevel;
use crate::ir::{Block, IrProgram, OpKind, TensorId};
use std::collections::{HashMap, HashSet};

/// Result of allocation: which region each shared tensor occupies.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Region index per shared tensor.
    pub region_of: HashMap<TensorId, usize>,
    /// Size in bytes of each region (maximum of its tenants, before
    /// pipeline staging multiplies it).
    pub region_bytes: Vec<usize>,
    /// Pairs `(earlier, later)` that alias and therefore require a
    /// write-after-read dependency between their live ranges.
    pub war_pairs: Vec<(TensorId, TensorId)>,
}

impl Allocation {
    /// Total bytes across regions.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.region_bytes.iter().sum()
    }
}

/// Live range of a tensor in a linearized op order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    first: usize,
    last: usize,
}

/// Run allocation for all `Shared`-mapped tensors against `limit` bytes.
///
/// # Errors
///
/// Returns [`CompileError::OutOfSharedMemory`] if even full aliasing of
/// non-interfering tensors cannot fit the budget.
pub fn run(prog: &IrProgram, limit: usize) -> Result<Allocation, CompileError> {
    // 1. Linearize ops and collect live ranges of shared tensors. Uses
    //    inside a loop extend to the whole loop (the loop repeats).
    let mut ranges: HashMap<TensorId, Range> = HashMap::new();
    let mut counter = 0usize;
    collect(prog, &prog.body, &mut counter, &mut ranges, None);
    let shared: Vec<TensorId> = (0..prog.tensors.len())
        .filter(|&t| prog.tensors[t].mem == MemLevel::Shared && ranges.contains_key(&t))
        .collect();
    if shared.is_empty() {
        return Ok(Allocation::default());
    }

    // 2. Real interference edges: overlapping live ranges.
    let interferes = |a: TensorId, b: TensorId| -> bool {
        let (ra, rb) = (ranges[&a], ranges[&b]);
        ra.first <= rb.last && rb.first <= ra.last
    };

    // 3. Start from the complete graph (all auxiliary edges present) and
    //    remove auxiliary (non-interfering) edges, largest-savings first,
    //    until the allocation fits.
    let mut aux: HashSet<(TensorId, TensorId)> = HashSet::new();
    for (i, &a) in shared.iter().enumerate() {
        for &b in &shared[i + 1..] {
            if !interferes(a, b) {
                aux.insert((a, b));
            }
        }
    }
    let mut removable: Vec<(TensorId, TensorId)> = aux.iter().copied().collect();
    removable.sort_by_key(|&(a, b)| {
        std::cmp::Reverse(
            prog.tensors[a]
                .size_bytes()
                .min(prog.tensors[b].size_bytes()),
        )
    });

    loop {
        let alloc = build_allocation(prog, &shared, &aux, &ranges);
        if alloc.total_bytes() <= limit {
            return Ok(alloc);
        }
        // Remove the next auxiliary edge (allow one more aliasing).
        match removable.pop() {
            Some(edge) => {
                aux.remove(&edge);
            }
            None => {
                let alloc = build_allocation(prog, &shared, &aux, &ranges);
                return Err(CompileError::OutOfSharedMemory {
                    required: alloc.total_bytes(),
                    limit,
                });
            }
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn collect(
    prog: &IrProgram,
    block: &Block,
    counter: &mut usize,
    ranges: &mut HashMap<TensorId, Range>,
    enclosing: Option<(usize, usize)>,
) {
    for op in &block.ops {
        *counter += 1;
        let at = *counter;
        match &op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                // Conservatively reserve the loop's whole span.
                let start = at;
                let mut probe = *counter;
                count_ops(body, &mut probe);
                let end = probe + 1;
                collect(prog, body, counter, ranges, Some((start, end)));
                *counter += 1;
            }
            _ => {
                let (lo, hi) = enclosing.unwrap_or((at, at));
                let span = if enclosing.is_some() {
                    (lo, hi)
                } else {
                    (at, at)
                };
                for r in op_tensors(op) {
                    let e = ranges.entry(r).or_insert(Range {
                        first: span.0,
                        last: span.1,
                    });
                    e.first = e.first.min(span.0);
                    e.last = e.last.max(span.1);
                }
            }
        }
    }
}

fn count_ops(block: &Block, counter: &mut usize) {
    for op in &block.ops {
        *counter += 1;
        match &op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                count_ops(body, counter);
                *counter += 1;
            }
            _ => {}
        }
    }
}

fn op_tensors(op: &crate::ir::Op) -> Vec<TensorId> {
    match &op.kind {
        OpKind::Copy { src, dst } => vec![src.tensor, dst.tensor],
        OpKind::Call { args, .. } => args.iter().map(|r| r.tensor).collect(),
        _ => vec![],
    }
}

/// Greedy region assignment honoring both real and auxiliary edges.
fn build_allocation(
    prog: &IrProgram,
    shared: &[TensorId],
    aux: &HashSet<(TensorId, TensorId)>,
    ranges: &HashMap<TensorId, Range>,
) -> Allocation {
    let edge = |a: TensorId, b: TensorId| -> bool {
        let (ra, rb) = (ranges[&a], ranges[&b]);
        let real = ra.first <= rb.last && rb.first <= ra.last;
        real || aux.contains(&(a.min(b), a.max(b)))
            || aux.contains(&(a, b))
            || aux.contains(&(b, a))
    };
    let mut region_of: HashMap<TensorId, usize> = HashMap::new();
    let mut regions: Vec<Vec<TensorId>> = Vec::new();
    for &t in shared {
        let mut placed = false;
        for (i, tenants) in regions.iter_mut().enumerate() {
            if tenants.iter().all(|&o| !edge(t, o)) {
                tenants.push(t);
                region_of.insert(t, i);
                placed = true;
                break;
            }
        }
        if !placed {
            regions.push(vec![t]);
            region_of.insert(t, regions.len() - 1);
        }
    }
    let region_bytes: Vec<usize> = regions
        .iter()
        .map(|ts| {
            ts.iter()
                .map(|&t| prog.tensors[t].size_bytes())
                .max()
                .unwrap_or(0)
        })
        .collect();
    // WAR pairs: aliased tenants ordered by live range.
    let mut war_pairs = Vec::new();
    for tenants in &regions {
        if tenants.len() > 1 {
            let mut sorted = tenants.clone();
            sorted.sort_by_key(|t| ranges[t].first);
            for w in sorted.windows(2) {
                war_pairs.push((w[0], w[1]));
            }
        }
    }
    Allocation {
        region_of,
        region_bytes,
        war_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::ast::LeafFn;
    use crate::ir::{Block, EventType, Op, OpKind, TensorRef};
    use cypress_tensor::DType;

    /// Build a program with `n` shared tensors used by consecutive calls
    /// (disjoint live ranges when `sequential`, overlapping otherwise).
    fn program(n: usize, sequential: bool, bytes_each: usize) -> IrProgram {
        let mut p = IrProgram::new("alloc");
        let elems = bytes_each / 2; // f16
        let ids: Vec<_> = (0..n)
            .map(|i| {
                p.add_tensor(
                    format!("s{i}"),
                    1,
                    elems,
                    DType::F16,
                    MemLevel::Shared,
                    None,
                )
            })
            .collect();
        let mut ops = Vec::new();
        if sequential {
            // t_i written then read, never live together.
            for &t in &ids {
                let e = p.fresh_event();
                ops.push(Op {
                    result: e,
                    ty: EventType::Unit,
                    pre: vec![],
                    kind: OpKind::Call {
                        f: LeafFn::Fill(0.0),
                        args: vec![TensorRef::whole(t)],
                    },
                });
            }
        } else {
            // One call uses all of them: fully interfering.
            let e = p.fresh_event();
            let mut args: Vec<TensorRef> = ids.iter().map(|&t| TensorRef::whole(t)).collect();
            args.push(TensorRef::whole(ids[0]));
            ops.push(Op {
                result: e,
                ty: EventType::Unit,
                pre: vec![],
                kind: OpKind::Call {
                    f: LeafFn::Fill(0.0),
                    args,
                },
            });
        }
        p.body = Block { ops };
        p
    }

    #[test]
    fn no_aliasing_when_memory_is_plentiful() {
        // With room for all tensors the complete interference graph stays:
        // every tensor gets its own region (minimal aliasing, §4.2.4).
        let p = program(3, true, 1024);
        let a = run(&p, 16 * 1024).unwrap();
        assert_eq!(a.region_bytes.len(), 3);
        assert_eq!(a.total_bytes(), 3 * 1024);
        assert!(a.war_pairs.is_empty());
    }

    #[test]
    fn relaxation_aliases_only_under_pressure() {
        // Three 1 KiB tensors with disjoint live ranges and a 2 KiB budget:
        // at least one auxiliary edge must be removed (aliasing), and the
        // aliased pair gets a write-after-read dependency.
        let p = program(3, true, 1024);
        let a = run(&p, 2 * 1024).unwrap();
        assert!(a.total_bytes() <= 2 * 1024, "{}", a.total_bytes());
        assert!(!a.war_pairs.is_empty());
    }

    #[test]
    fn truly_interfering_tensors_cannot_alias() {
        // Live ranges overlap: no amount of relaxation helps; the §4.2.4
        // out-of-memory diagnostic fires.
        let p = program(3, false, 1024);
        let err = run(&p, 2 * 1024);
        assert!(
            matches!(err, Err(CompileError::OutOfSharedMemory { required, .. }) if required == 3 * 1024)
        );
    }

    #[test]
    fn empty_program_allocates_nothing() {
        let p = IrProgram::new("empty");
        let a = run(&p, 1024).unwrap();
        assert_eq!(a.total_bytes(), 0);
        assert!(a.region_of.is_empty());
    }
}
