//! Copy elimination (paper §4.2.3, Fig. 10).
//!
//! The copy-in/copy-out discipline of dependence analysis introduces a
//! fresh allocation and a pair of copies at every launch site; this pass
//! removes the ones that imply no real data movement, leaving exactly the
//! copies that cross memory levels (which code generation turns into TMA
//! transfers and register↔shared staging). The rewrite patterns are:
//!
//! - **self-copy elimination** (Fig. 10d): `copy(t, t)` is erased,
//! - **duplicate elimination** (Fig. 10c): a repeated identical copy with
//!   no intervening write is erased,
//! - **copy propagation** (the engine behind Fig. 10a spill elimination):
//!   `copy(a, X); copy(X, b)` forwards to `copy(a, b)`,
//! - **allocation forwarding** (Fig. 10a/10b generalized): a fresh
//!   allocation whose only external partner is a single reference `r`
//!   — via copy-ins, copy-outs, or both — is replaced by `r` everywhere,
//!   provided the forwarding implies no memory-level change (`none`-mapped
//!   tensors, or equal memories),
//! - **piece identification**: a `none`-mapped parent tensor used only
//!   through structurally identical per-processor pieces is identified
//!   with the (register) allocation those pieces are copied to/from —
//!   this is how the block-level accumulator of Fig. 5 ends up existing
//!   only as per-warpgroup register fragments,
//! - **dead-copy elimination**: copies into tensors never read again.
//!
//! Per §4.2.3, event-eliminating (spill-style) patterns run before
//! dependence-preserving ones; `Options::spill_first` exposes the ordering
//! for the ablation benchmark.

use crate::error::CompileError;
use crate::front::machine::{MemLevel, ProcLevel};
use crate::ir::{Block, EventId, EventRef, IdxExpr, IrProgram, Op, OpKind, TensorId, TensorRef};
use std::collections::{HashMap, HashSet};

/// Pass options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Apply event-eliminating patterns before dependence-preserving ones
    /// (the paper's ordering heuristic; disable for the ablation).
    pub spill_first: bool,
    /// Maximum fixpoint rounds (safety bound).
    pub max_rounds: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            spill_first: true,
            max_rounds: 512,
        }
    }
}

/// Statistics for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Copies removed.
    pub removed_copies: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

/// Run copy elimination to fixpoint.
///
/// # Errors
///
/// Returns [`CompileError::NoneMemoryMaterialized`] if a `none`-mapped
/// tensor survives (§3.3 requires the user to adjust the mapping).
pub fn run(prog: &mut IrProgram, opts: Options) -> Result<Stats, CompileError> {
    let mut stats = Stats::default();
    for round in 0..opts.max_rounds {
        stats.rounds = round + 1;
        let before = prog.copy_count();
        let mut changed = false;
        if opts.spill_first {
            changed |= copy_propagation(prog);
            changed |= forward_allocations(prog);
            changed |= materialize_none(prog);
            changed |= identify_pieces(prog);
            changed |= hoist_invariant_copies(prog);
            changed |= self_copies(prog);
            changed |= duplicate_copies(prog);
            changed |= dead_copies(prog);
        } else {
            changed |= self_copies(prog);
            changed |= duplicate_copies(prog);
            changed |= dead_copies(prog);
            changed |= copy_propagation(prog);
            changed |= forward_allocations(prog);
            changed |= materialize_none(prog);
            changed |= identify_pieces(prog);
            changed |= hoist_invariant_copies(prog);
        }
        stats.removed_copies += before.saturating_sub(prog.copy_count());
        if !changed {
            break;
        }
    }
    check_none_memory(prog)?;
    Ok(stats)
}

// ---- canonical references -------------------------------------------------

/// Canonical index: processor-level variables of the same level compare
/// equal (two warpgroup-level `pfor` variables denote the same processor
/// index after vectorization).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CanonIdx {
    Const(i64),
    Loop(usize, i64, i64),
    Proc(ProcLevel, i64, i64),
}

fn canon_idx(prog: &IrProgram, i: &IdxExpr) -> CanonIdx {
    match i.var {
        None => CanonIdx::Const(i.offset),
        Some(v) => match prog.proc_vars.get(&v) {
            Some(p) => CanonIdx::Proc(*p, i.scale, i.offset),
            None => CanonIdx::Loop(v, i.scale, i.offset),
        },
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonRef {
    tensor: TensorId,
    path: Vec<(CanonPart, Vec<CanonIdx>)>,
}

/// Partitions compare structurally: two partitions of the same parent with
/// the same decomposition are the same partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CanonPart {
    Blocks(usize, usize),
    Mma(usize, usize, usize, bool),
}

fn canon_part(prog: &IrProgram, p: usize) -> CanonPart {
    match &prog.parts[p].kind {
        crate::ir::PartKind::Blocks {
            tile_rows,
            tile_cols,
            ..
        } => CanonPart::Blocks(*tile_rows, *tile_cols),
        crate::ir::PartKind::Mma {
            pieces,
            piece_rows,
            piece_cols,
            replicated,
            ..
        } => CanonPart::Mma(*pieces, *piece_rows, *piece_cols, *replicated),
    }
}

fn canon_ref(prog: &IrProgram, r: &TensorRef) -> CanonRef {
    CanonRef {
        tensor: r.tensor,
        path: r
            .path
            .iter()
            .map(|(p, idx)| {
                (
                    canon_part(prog, *p),
                    idx.iter().map(|i| canon_idx(prog, i)).collect(),
                )
            })
            .collect(),
    }
}

// ---- generic traversal helpers ---------------------------------------------

fn for_each_op<'b>(block: &'b Block, f: &mut impl FnMut(&'b Op)) {
    for op in &block.ops {
        f(op);
        match &op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => for_each_op(body, f),
            _ => {}
        }
    }
}

fn for_each_op_mut(block: &mut Block, f: &mut impl FnMut(&mut Op)) {
    for op in &mut block.ops {
        f(op);
        match &mut op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => for_each_op_mut(body, f),
            _ => {}
        }
    }
}

/// All tensor references of an op (reads and writes), excluding loop bodies.
fn op_refs(op: &Op) -> Vec<&TensorRef> {
    match &op.kind {
        OpKind::Copy { src, dst } => vec![src, dst],
        OpKind::Call { args, .. } => args.iter().collect(),
        _ => vec![],
    }
}

fn op_refs_mut(op: &mut Op) -> Vec<&mut TensorRef> {
    match &mut op.kind {
        OpKind::Copy { src, dst } => vec![src, dst],
        OpKind::Call { args, .. } => args.iter_mut().collect(),
        _ => vec![],
    }
}

/// Tensors an op reads / writes (base tensors).
fn op_reads_writes(op: &Op) -> (Vec<TensorId>, Vec<TensorId>) {
    match &op.kind {
        OpKind::Copy { src, dst } => (vec![src.tensor], vec![dst.tensor]),
        OpKind::Call { f, args } => {
            let dst = args.last().expect("calls have a destination").tensor;
            let mut reads: Vec<TensorId> =
                args[..args.len() - 1].iter().map(|r| r.tensor).collect();
            if f.dst_reads() {
                reads.push(dst);
            }
            (reads, vec![dst])
        }
        _ => (vec![], vec![]),
    }
}

/// Remove ops whose result event is listed, substituting references to
/// their events with each op's own preconditions.
fn remove_ops(prog: &mut IrProgram, remove: &HashSet<EventId>) {
    if remove.is_empty() {
        return;
    }
    // Collect substitutions first.
    let mut subst: HashMap<EventId, Vec<EventRef>> = HashMap::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        if remove.contains(&op.result) {
            subst.insert(op.result, op.pre.clone());
        }
    });
    // Filter blocks.
    fn filter(block: &mut Block, remove: &HashSet<EventId>) {
        block.ops.retain(|o| !remove.contains(&o.result));
        for op in &mut block.ops {
            match &mut op.kind {
                OpKind::For { body, .. } | OpKind::Pfor { body, .. } => filter(body, remove),
                _ => {}
            }
        }
    }
    let mut body = std::mem::take(&mut prog.body);
    filter(&mut body, remove);
    prog.body = body;
    // Substitute events (chasing chains).
    let mut body = std::mem::take(&mut prog.body);
    for_each_op_mut(&mut body, &mut |op| {
        let mut new_pre = Vec::new();
        for pre in op.pre.drain(..) {
            expand(&pre, &subst, &mut new_pre, 0);
        }
        // Deduplicate.
        let mut seen = Vec::new();
        for p in new_pre {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        op.pre = seen;
    });
    prog.body = body;
}

fn expand(
    e: &EventRef,
    subst: &HashMap<EventId, Vec<EventRef>>,
    out: &mut Vec<EventRef>,
    depth: usize,
) {
    if depth > 64 {
        return;
    }
    match subst.get(&e.event) {
        None => out.push(e.clone()),
        Some(replacements) => {
            for r in replacements {
                expand(r, subst, out, depth + 1);
            }
        }
    }
}

/// Rewrite every reference with base tensor `t` to compose with `r`.
fn rewrite_base(prog: &mut IrProgram, t: TensorId, r: &TensorRef) {
    let mut body = std::mem::take(&mut prog.body);
    for_each_op_mut(&mut body, &mut |op| {
        for rf in op_refs_mut(op) {
            if rf.tensor == t {
                let suffix = std::mem::take(&mut rf.path);
                rf.tensor = r.tensor;
                rf.path = r.path.clone();
                rf.path.extend(suffix);
            }
        }
    });
    prog.body = body;
}

// ---- patterns ---------------------------------------------------------------

/// Fig. 10d: `copy(t, t)` (canonically equal references) is erased.
fn self_copies(prog: &mut IrProgram) -> bool {
    let mut remove = HashSet::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        if let OpKind::Copy { src, dst } = &op.kind {
            if canon_ref(prog, src) == canon_ref(prog, dst) {
                remove.insert(op.result);
            }
        }
    });
    let changed = !remove.is_empty();
    remove_ops(prog, &remove);
    changed
}

/// Fig. 10c: duplicate copies within one block with no intervening write.
fn duplicate_copies(prog: &mut IrProgram) -> bool {
    let mut remove = HashSet::new();
    fn scan(prog: &IrProgram, block: &Block, remove: &mut HashSet<EventId>) {
        for (i, op) in block.ops.iter().enumerate() {
            if let OpKind::Copy { src, dst } = &op.kind {
                let (cs, cd) = (canon_ref(prog, src), canon_ref(prog, dst));
                for later in &block.ops[i + 1..] {
                    let (_, writes) = op_reads_writes(later);
                    if let OpKind::Copy { src: s2, dst: d2 } = &later.kind {
                        if canon_ref(prog, s2) == cs && canon_ref(prog, d2) == cd {
                            remove.insert(later.result);
                            continue;
                        }
                    }
                    if writes.contains(&src.tensor) || writes.contains(&dst.tensor) {
                        break;
                    }
                    if matches!(later.kind, OpKind::For { .. } | OpKind::Pfor { .. }) {
                        break;
                    }
                }
            }
            match &op.kind {
                OpKind::For { body, .. } | OpKind::Pfor { body, .. } => scan(prog, body, remove),
                _ => {}
            }
        }
    }
    scan(prog, &prog.body.clone(), &mut remove);
    let changed = !remove.is_empty();
    remove_ops(prog, &remove);
    changed
}

/// `copy(a, X); ...; copy(X, b)` with no intervening write to `X` or `a`
/// forwards the second copy's source to `a` (the spill-elimination engine).
fn copy_propagation(prog: &mut IrProgram) -> bool {
    let mut changed = false;
    fn scan(prog_ro: &IrProgram, block: &mut Block, changed: &mut bool) {
        for i in 0..block.ops.len() {
            if let OpKind::Copy { src: a, dst: x } = &block.ops[i].kind {
                let (a, x) = (a.clone(), x.clone());
                let (ca, cx) = (canon_ref(prog_ro, &a), canon_ref(prog_ro, &x));
                if ca == cx {
                    continue;
                }
                let mut j = i + 1;
                while j < block.ops.len() {
                    let (_, writes) = op_reads_writes(&block.ops[j]);
                    if let OpKind::Copy { src: s2, .. } = &block.ops[j].kind {
                        if canon_ref(prog_ro, s2) == cx {
                            if let OpKind::Copy { src: s2m, .. } = &mut block.ops[j].kind {
                                *s2m = a.clone();
                                *changed = true;
                            }
                            j += 1;
                            continue;
                        }
                    }
                    if writes.contains(&x.tensor)
                        || writes.contains(&a.tensor)
                        || matches!(block.ops[j].kind, OpKind::For { .. } | OpKind::Pfor { .. })
                    {
                        break;
                    }
                    j += 1;
                }
            }
            match &mut block.ops[i].kind {
                OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                    scan(prog_ro, body, changed)
                }
                _ => {}
            }
        }
    }
    let prog_ro = prog.clone();
    let mut body = std::mem::take(&mut prog.body);
    scan(&prog_ro, &mut body, &mut changed);
    prog.body = body;
    changed
}

/// Allocation forwarding: a fresh tensor whose copy partners all name the
/// same external reference `r` is replaced by `r` when no memory-level
/// change is implied.
fn forward_allocations(prog: &mut IrProgram) -> bool {
    // Gather, per tensor: copy-in/out partner refs and whether other uses
    // exist as whole-tensor copies.
    #[derive(Default)]
    struct Uses {
        partners: Vec<(TensorRef, EventId)>,
        other_whole_copies: usize,
    }
    let mut uses: HashMap<TensorId, Uses> = HashMap::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        if let OpKind::Copy { src, dst } = &op.kind {
            if dst.path.is_empty() && src.tensor != dst.tensor {
                uses.entry(dst.tensor)
                    .or_default()
                    .partners
                    .push((src.clone(), op.result));
            } else if dst.path.is_empty() {
                uses.entry(dst.tensor).or_default().other_whole_copies += 1;
            }
            if src.path.is_empty() && src.tensor != dst.tensor {
                uses.entry(src.tensor)
                    .or_default()
                    .partners
                    .push((dst.clone(), op.result));
            } else if src.path.is_empty() {
                uses.entry(src.tensor).or_default().other_whole_copies += 1;
            }
        }
    });

    // Forward at most one allocation per invocation: a rewrite invalidates
    // the collected partner references, so the fixpoint loop recomputes
    // them before the next forwarding.
    let candidates: Vec<TensorId> = (0..prog.tensors.len()).collect();
    for t in candidates {
        let decl = &prog.tensors[t];
        if decl.param.is_some() {
            continue;
        }
        let Some(u) = uses.get(&t) else { continue };
        if u.other_whole_copies > 0 {
            continue;
        }
        // Only *upstream* partners qualify: the reference the launch site's
        // copy-in/copy-out named, which belongs to the caller's frame and
        // was therefore created before `t`. Copies where `t` feeds a later
        // child allocation are downstream and collapse on later rounds.
        let upstream: Vec<&(TensorRef, EventId)> =
            u.partners.iter().filter(|(p, _)| p.tensor < t).collect();
        let Some((first_ref, _)) = upstream.first().map(|x| (*x).clone()) else {
            continue;
        };
        let first = canon_ref(prog, &first_ref);
        if !upstream.iter().all(|(p, _)| canon_ref(prog, p) == first) {
            continue;
        }
        let r = first_ref;
        if r.tensor == t {
            continue;
        }
        let r_mem = prog.tensors[r.tensor].mem;
        let ok_mem = decl.mem == MemLevel::None || decl.mem == r_mem;
        if !ok_mem {
            continue;
        }
        // Forward: rewrite refs, turning the partner copies into self-copies
        // removed on the next self-copy sweep.
        rewrite_base(prog, t, &r);
        return true;
    }
    false
}

/// Piece identification: a `none`-mapped parent used exclusively through
/// canonically identical per-processor pieces is identified with the
/// materialized tensor those pieces are copied to/from.
fn identify_pieces(prog: &mut IrProgram) -> bool {
    // One identification per invocation (see `forward_allocations`).
    for t in 0..prog.tensors.len() {
        if prog.tensors[t].mem != MemLevel::None || prog.tensors[t].param.is_some() {
            continue;
        }
        // Collect all refs with base t and copy partners of piece refs.
        let mut piece_canons: HashSet<Vec<(CanonPart, Vec<CanonIdx>)>> = HashSet::new();
        let mut whole_uses = 0usize;
        let mut any_use = false;
        let mut partner: Option<TensorRef> = None;
        for_each_op(&prog.body.clone(), &mut |op| {
            let refs = op_refs(op);
            let uses_t: Vec<&&TensorRef> = refs.iter().filter(|r| r.tensor == t).collect();
            if uses_t.is_empty() {
                return;
            }
            any_use = true;
            for r in &uses_t {
                if r.path.is_empty() {
                    whole_uses += 1;
                } else {
                    // Only the first path entry must be the per-processor
                    // piece; deeper entries ride along.
                    let c = canon_ref(
                        prog,
                        &TensorRef {
                            tensor: t,
                            path: vec![r.path[0].clone()],
                        },
                    );
                    piece_canons.insert(c.path);
                }
            }
            // Copy between a single-level piece of t and a whole tensor:
            // candidate identification partner. Several distinct partners
            // are fine — the remaining ones collapse into the chosen one
            // by allocation forwarding on later rounds.
            if let OpKind::Copy { src, dst } = &op.kind {
                let pair = if src.tensor == t && src.path.len() == 1 && dst.path.is_empty() {
                    Some(dst)
                } else if dst.tensor == t && dst.path.len() == 1 && src.path.is_empty() {
                    Some(src)
                } else {
                    None
                };
                if let Some(p) = pair {
                    if partner.is_none()
                        && prog.tensors[p.tensor].mem != MemLevel::None
                        && p.tensor != t
                    {
                        partner = Some((*p).clone());
                    }
                }
            }
        });
        let Some(r) = partner else { continue };
        if !any_use || whole_uses > 0 || piece_canons.len() != 1 {
            continue;
        }
        // Identify: strip the leading piece entry and redirect to r.
        let mut body = std::mem::take(&mut prog.body);
        for_each_op_mut(&mut body, &mut |op| {
            for rf in op_refs_mut(op) {
                if rf.tensor == t {
                    let mut suffix = std::mem::take(&mut rf.path);
                    suffix.remove(0);
                    rf.tensor = r.tensor;
                    rf.path = r.path.clone();
                    rf.path.extend(suffix);
                }
            }
        });
        prog.body = body;
        return true;
    }
    false
}

/// A `none`-mapped tensor used only through whole-tensor copies is
/// identified with its first materialized copy partner (the whole-tensor
/// analogue of `identify_pieces`; attention's score matrix `S` takes this
/// route into a register fragment).
fn materialize_none(prog: &mut IrProgram) -> bool {
    for t in 0..prog.tensors.len() {
        if prog.tensors[t].mem != MemLevel::None || prog.tensors[t].param.is_some() {
            continue;
        }
        let mut partner: Option<TensorId> = None;
        let mut piece_uses = 0usize;
        let mut any = false;
        for_each_op(&prog.body.clone(), &mut |op| {
            for r in op_refs(op) {
                if r.tensor == t {
                    any = true;
                    if !r.path.is_empty() {
                        piece_uses += 1;
                    }
                }
            }
            if let OpKind::Copy { src, dst } = &op.kind {
                let other = if src.tensor == t && src.path.is_empty() && dst.path.is_empty() {
                    Some(dst.tensor)
                } else if dst.tensor == t && dst.path.is_empty() && src.path.is_empty() {
                    Some(src.tensor)
                } else {
                    None
                };
                if let Some(o) = other {
                    if partner.is_none() && o != t && prog.tensors[o].mem != MemLevel::None {
                        let same_shape = prog.tensors[o].rows == prog.tensors[t].rows
                            && prog.tensors[o].cols == prog.tensors[t].cols;
                        if same_shape {
                            partner = Some(o);
                        }
                    }
                }
            }
        });
        let Some(o) = partner else { continue };
        if !any || piece_uses > 0 {
            continue;
        }
        rewrite_base(prog, t, &TensorRef::whole(o));
        return true;
    }
    false
}

/// Fig. 10b (spill hoisting, simplified to the loop-invariant case):
/// a copy inside a `for` whose references do not use the loop variable,
/// whose source is never written, and whose destination is written only by
/// this copy, moves to the loop preamble. This hoists attention's Q-tile
/// load out of the K/V loop.
fn hoist_invariant_copies(prog: &mut IrProgram) -> bool {
    // Tensors written anywhere (by op kind).
    let mut writers: HashMap<TensorId, usize> = HashMap::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        let (_, writes) = op_reads_writes(op);
        for w in writes {
            *writers.entry(w).or_default() += 1;
        }
    });
    let mut hoisted = false;
    fn scan(block: &mut Block, writers: &HashMap<TensorId, usize>, hoisted: &mut bool) {
        let mut i = 0;
        while i < block.ops.len() {
            let mut lift: Option<Op> = None;
            if let OpKind::For { var, body, .. } = &mut block.ops[i].kind {
                let var = *var;
                // Recurse first.
                scan(body, writers, hoisted);
                if let Some(pos) = body.ops.iter().position(|op| {
                    if let OpKind::Copy { src, dst } = &op.kind {
                        !src.uses_var(var)
                            && !dst.uses_var(var)
                            && writers.get(&src.tensor).copied().unwrap_or(0) == 0
                            && writers.get(&dst.tensor).copied().unwrap_or(0) == 1
                            && dst.path.is_empty()
                    } else {
                        false
                    }
                }) {
                    let mut op = body.ops.remove(pos);
                    // The hoisted copy keeps no intra-loop preconditions.
                    op.pre.clear();
                    lift = Some(op);
                }
            }
            if let Some(op) = lift {
                block.ops.insert(i, op);
                *hoisted = true;
                i += 1;
            }
            i += 1;
        }
    }
    let mut body = std::mem::take(&mut prog.body);
    scan(&mut body, &writers, &mut hoisted);
    prog.body = body;
    hoisted
}

/// Remove copies into tensors that are never read and are not parameters.
fn dead_copies(prog: &mut IrProgram) -> bool {
    let mut read: HashSet<TensorId> = HashSet::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        let (reads, _) = op_reads_writes(op);
        read.extend(reads);
    });
    let mut remove = HashSet::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        if let OpKind::Copy { dst, .. } = &op.kind {
            if prog.tensors[dst.tensor].param.is_none() && !read.contains(&dst.tensor) {
                remove.insert(op.result);
            }
        }
    });
    let changed = !remove.is_empty();
    remove_ops(prog, &remove);
    changed
}

/// §3.3: every tensor mapped to the `none` memory must have been
/// eliminated entirely — except promotable block-local tensors
/// (`make_tensor`), which fall back to a shared-memory home when no
/// identification applies. That is the fused-kernel shape: a producer
/// phase writes the tensor through one partition and a consumer phase
/// re-tiles it through another, so no single existing allocation can
/// stand in for it, and materializing it on-chip (rather than erroring)
/// is exactly the intermediate-stays-in-shared-memory behavior fusion
/// exists for. Writes into the shared home round to the tensor's
/// declared dtype, which is also what keeps fused results bitwise equal
/// to the unfused chain.
fn check_none_memory(prog: &mut IrProgram) -> Result<(), CompileError> {
    let mut surviving: HashSet<TensorId> = HashSet::new();
    for_each_op(&prog.body.clone(), &mut |op| {
        for r in op_refs(op) {
            surviving.insert(r.tensor);
        }
    });
    for t in surviving {
        if prog.tensors[t].mem == MemLevel::None {
            if prog.tensors[t].promotable {
                prog.tensors[t].mem = MemLevel::Shared;
            } else {
                return Err(CompileError::NoneMemoryMaterialized {
                    tensor: prog.tensors[t].name.clone(),
                });
            }
        }
    }
    Ok(())
}
