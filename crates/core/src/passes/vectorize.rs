//! Vectorization (paper §4.2.2, Fig. 9).
//!
//! Flattens the `pfor` loops that are implicit in the GPU programming model
//! — warpgroups, warps, and threads — leaving the flattened loop variable
//! in place as a *processor index*. Event arrays produced inside a
//! flattened loop are promoted with a new dimension; point-wise
//! dependencies become indexed references (`e3[j]`), and post-loop
//! synchronization becomes broadcast indexing (`e4[:]`), exactly as in
//! Fig. 9b/9c.
//!
//! `pfor` loops at the BLOCK level are *not* flattened: they map onto the
//! kernel grid during code generation.

use crate::ir::{Block, EvIdx, EventRef, EventType, IrProgram, Op, OpKind};
use std::collections::{HashMap, HashSet};

/// Run vectorization in place.
pub fn run(prog: &mut IrProgram) {
    let mut body = std::mem::take(&mut prog.body);
    let mut promos: HashMap<usize, (usize, Vec<EvIdx>)> = HashMap::new();
    vectorize_block(prog, &mut body, &mut promos);
    prog.body = body;
}

/// Recursively vectorize a block. `promos` maps a flattened loop's event id
/// to the substitute (the body's yield event) plus the index prefix to
/// prepend when rewriting references.
fn vectorize_block(
    prog: &mut IrProgram,
    block: &mut Block,
    promos: &mut HashMap<usize, (usize, Vec<EvIdx>)>,
) {
    let mut out: Vec<Op> = Vec::new();
    for mut op in std::mem::take(&mut block.ops) {
        // Rewrite preconditions against earlier flattenings first.
        for pre in &mut op.pre {
            rewrite_ref(pre, promos);
        }
        match op.kind {
            OpKind::Pfor {
                var,
                extent,
                proc,
                mut body,
            } if proc.is_intra_block() => {
                // Innermost first.
                vectorize_block(prog, &mut body, promos);
                prog.proc_vars.insert(var, proc);
                let loop_pre = op.pre;
                // Every event defined anywhere inside the flattened loop is
                // promoted with the new dimension, and intra-subtree
                // references become point-wise.
                let mut subtree_events = HashSet::new();
                collect_events(&body, &mut subtree_events);
                promote_subtree(&mut body, extent as usize, proc, var, &subtree_events);
                let yield_event = body.ops.last().map(|o| o.result);
                for mut b in body.ops {
                    // The loop's lifted preconditions apply to every body op
                    // that had no intra-body predecessor.
                    if b.pre.is_empty() {
                        b.pre = loop_pre.clone();
                    }
                    out.push(b);
                }
                // References to the loop event become references to the
                // yield event with the same indices (the promoted dimension
                // aligns with the loop's).
                if let Some(y) = yield_event {
                    promos.insert(op.result, (y, Vec::new()));
                }
            }
            OpKind::Pfor {
                var,
                extent,
                proc,
                mut body,
            } => {
                vectorize_block(prog, &mut body, promos);
                op.kind = OpKind::Pfor {
                    var,
                    extent,
                    proc,
                    body,
                };
                out.push(op);
            }
            OpKind::For {
                var,
                extent,
                mut body,
            } => {
                vectorize_block(prog, &mut body, promos);
                op.kind = OpKind::For { var, extent, body };
                out.push(op);
            }
            _ => out.push(op),
        }
    }
    block.ops = out;
}

fn collect_events(block: &Block, out: &mut HashSet<usize>) {
    for op in &block.ops {
        out.insert(op.result);
        match &op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => collect_events(body, out),
            _ => {}
        }
    }
}

fn promote_subtree(
    block: &mut Block,
    extent: usize,
    proc: crate::front::machine::ProcLevel,
    var: usize,
    subtree: &HashSet<usize>,
) {
    for op in &mut block.ops {
        op.ty = op.ty.promoted(extent, proc);
        for pre in &mut op.pre {
            if subtree.contains(&pre.event) {
                pre.idx.insert(0, EvIdx::Var(var));
            }
        }
        match &mut op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => {
                promote_subtree(body, extent, proc, var, subtree);
            }
            _ => {}
        }
    }
}

fn rewrite_ref(r: &mut EventRef, promos: &HashMap<usize, (usize, Vec<EvIdx>)>) {
    // Chase substitutions (a loop may yield another flattened loop's op).
    while let Some((target, prefix)) = promos.get(&r.event) {
        r.event = *target;
        let mut idx = prefix.clone();
        idx.extend(r.idx.iter().copied());
        r.idx = idx;
    }
}

/// Pad every event reference's index list to the rank of the referenced
/// event's type with broadcasts. Called after vectorization so later passes
/// can rely on full-rank indices.
pub fn normalize_ranks(prog: &mut IrProgram) {
    let mut types: HashMap<usize, usize> = HashMap::new();
    collect_ranks(&prog.body, &mut types);
    let mut body = std::mem::take(&mut prog.body);
    pad_block(&mut body, &types);
    prog.body = body;
}

fn collect_ranks(block: &Block, types: &mut HashMap<usize, usize>) {
    for op in &block.ops {
        let rank = match &op.ty {
            EventType::Unit => 0,
            EventType::Array(d) => d.len(),
        };
        types.insert(op.result, rank);
        match &op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => collect_ranks(body, types),
            _ => {}
        }
    }
}

fn pad_block(block: &mut Block, types: &HashMap<usize, usize>) {
    for op in &mut block.ops {
        for pre in &mut op.pre {
            let rank = types.get(&pre.event).copied().unwrap_or(0);
            while pre.idx.len() < rank {
                pre.idx.push(EvIdx::All);
            }
        }
        match &mut op.kind {
            OpKind::For { body, .. } | OpKind::Pfor { body, .. } => pad_block(body, types),
            _ => {}
        }
    }
}
