//! Pseudo-CUDA pretty printer.
//!
//! The paper's prototype emits CUDA C++ (§4); this reproduction targets the
//! simulator, but renders each compiled kernel as warp-specialized
//! pseudo-CUDA so the generated structure can be inspected and
//! golden-tested against the shape of Fig. 1b.

use cypress_sim::{Cond, Expr, Instr, Kernel, RoleKind, SimtOp};
use std::fmt::Write as _;

/// Render `kernel` as pseudo-CUDA.
#[must_use]
pub fn render(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "__global__ void {}(", kernel.name);
    for (i, p) in kernel.params.iter().enumerate() {
        let comma = if i + 1 == kernel.params.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {}* {} /* {}x{} */{comma}",
            p.dtype, p.name, p.rows, p.cols
        );
    }
    let _ = writeln!(
        out,
        ") {{  // grid ({}, {}, {})",
        kernel.grid[0], kernel.grid[1], kernel.grid[2]
    );
    for s in &kernel.smem {
        let _ = writeln!(
            out,
            "  __shared__ {} {}[{}][{}][{}];",
            s.dtype, s.name, s.stages, s.rows, s.cols
        );
    }
    for (i, m) in kernel.mbars.iter().enumerate() {
        let _ = writeln!(
            out,
            "  __shared__ barrier bar{i};  // expects {}",
            m.expected
        );
    }
    for f in &kernel.frags {
        let _ = writeln!(
            out,
            "  float {}[{}][{}];  // registers, per warpgroup",
            f.name, f.rows, f.cols
        );
    }
    for role in &kernel.roles {
        match role.kind {
            RoleKind::Dma => {
                let _ = writeln!(
                    out,
                    "  if (warp_id() == {}) {{  // DMA warp",
                    kernel.num_compute_warpgroups() * 4
                );
            }
            RoleKind::Compute(i) => {
                let _ = writeln!(
                    out,
                    "  if (warpgroup_id() == {i}) {{  // compute warpgroup {i}"
                );
            }
        }
        for instr in &role.body {
            render_instr(kernel, instr, 2, &mut out);
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_instr(k: &Kernel, instr: &Instr, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match instr {
        Instr::TmaLoad { src, dst, bar } => {
            let _ = writeln!(
                out,
                "{pad}TMA_load({} -> {}, bar{bar});",
                slice(k, src),
                slice(k, dst)
            );
        }
        Instr::TmaStore { src, dst } => {
            let _ = writeln!(
                out,
                "{pad}TMA_store({} -> {});",
                slice(k, src),
                slice(k, dst)
            );
        }
        Instr::TmaStoreWait => {
            let _ = writeln!(out, "{pad}tma_store_wait();");
        }
        Instr::CpAsyncLoad { src, dst, bar } => {
            let _ = writeln!(
                out,
                "{pad}cp_async({} -> {}, bar{bar});",
                slice(k, src),
                slice(k, dst)
            );
        }
        Instr::MbarArrive { bar } => {
            let _ = writeln!(out, "{pad}arrive(bar{bar});");
        }
        Instr::MbarWait { bar } => {
            let _ = writeln!(out, "{pad}wait(bar{bar});");
        }
        Instr::Wgmma {
            a,
            b,
            acc,
            transpose_b,
            ..
        } => {
            let t = if *transpose_b {
                ", /*transpose B*/"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{pad}wgmma({} , {} -> {}{t});",
                slice(k, a),
                slice(k, b),
                slice(k, acc)
            );
        }
        Instr::WgmmaWait { pending } => {
            let _ = writeln!(out, "{pad}warpgroup_wait<{pending}>();");
        }
        Instr::Simt(op) => render_simt(k, op, &pad, out),
        Instr::NamedBarrier { id, parties } => {
            let _ = writeln!(out, "{pad}bar.sync({id}, {parties});");
        }
        Instr::Syncthreads => {
            let _ = writeln!(out, "{pad}__syncthreads();");
        }
        Instr::Loop { var, count, body } => {
            let _ = writeln!(
                out,
                "{pad}for (int i{var} = 0; i{var} < {count}; ++i{var}) {{"
            );
            for i in body {
                render_instr(k, i, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Instr::If { cond, then_, else_ } => {
            let c = match cond {
                Cond::Ge(a, b) => format!("{a} >= {b}"),
                Cond::Lt(a, b) => format!("{a} < {b}"),
                Cond::Eq(a, b) => format!("{a} == {b}"),
            };
            let _ = writeln!(out, "{pad}if ({c}) {{");
            for i in then_ {
                render_instr(k, i, depth + 1, out);
            }
            if else_.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for i in else_ {
                    render_instr(k, i, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn render_simt(k: &Kernel, op: &SimtOp, pad: &str, out: &mut String) {
    match op {
        SimtOp::Fill { dst, value } => {
            let _ = writeln!(out, "{pad}fill({}, {value});", slice(k, dst));
        }
        SimtOp::Copy { src, dst } => {
            let _ = writeln!(out, "{pad}copy({} -> {});", slice(k, src), slice(k, dst));
        }
        SimtOp::Map { op, src, dst } => {
            let _ = writeln!(
                out,
                "{pad}map({op:?}, {} -> {});",
                slice(k, src),
                slice(k, dst)
            );
        }
        SimtOp::Zip { op, a, b, dst } => {
            let _ = writeln!(
                out,
                "{pad}zip({op:?}, {}, {} -> {});",
                slice(k, a),
                slice(k, b),
                slice(k, dst)
            );
        }
        SimtOp::RowReduce {
            op,
            src,
            dst,
            include_dst,
        } => {
            let _ = writeln!(
                out,
                "{pad}row_reduce({op:?}, {} -> {}, running={include_dst});",
                slice(k, src),
                slice(k, dst)
            );
        }
        SimtOp::RowZip { op, src, row, dst } => {
            let _ = writeln!(
                out,
                "{pad}row_zip({op:?}, {}, {} -> {});",
                slice(k, src),
                slice(k, row),
                slice(k, dst)
            );
        }
    }
}

fn slice(k: &Kernel, s: &cypress_sim::Slice) -> String {
    let name = match s.mem {
        cypress_sim::MemRef::Param(i) => k.params[i].name.clone(),
        cypress_sim::MemRef::Smem(i) => k.smem[i].name.clone(),
        cypress_sim::MemRef::Frag(i) => k.frags[i].name.clone(),
    };
    let stage = if matches!(s.stage, Expr::Lit(0)) {
        String::new()
    } else {
        format!("[{}]", s.stage)
    };
    format!(
        "{name}{stage}[{}:{}x{}][{}:{}x1]",
        s.row0, s.rows, 1, s.col0, s.cols
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_sim::{KernelBuilder, RoleKind, Slice};
    use cypress_tensor::DType;

    #[test]
    fn renders_structure() {
        let mut b = KernelBuilder::new("k", [2, 1, 1]);
        let a = b.param("A", 8, 8, DType::F16);
        let sa = b.smem("sA", 8, 8, DType::F16, 2);
        let bar = b.mbar(1);
        b.role(
            RoleKind::Dma,
            vec![Instr::TmaLoad {
                src: Slice::param(a).extent(8, 8),
                dst: Slice::smem(sa).extent(8, 8),
                bar,
            }],
        );
        b.role(RoleKind::Compute(0), vec![Instr::MbarWait { bar }]);
        let k = b.build();
        let s = render(&k);
        assert!(s.contains("__global__ void k("));
        assert!(s.contains("TMA_load"));
        assert!(s.contains("// DMA warp"));
        assert!(s.contains("wait(bar0)"));
        assert!(s.contains("__shared__ f16 sA[2][8][8];"));
    }
}
