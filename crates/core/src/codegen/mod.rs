//! Final code generation artifacts: the device kernel (produced by
//! [`crate::passes::warpspec`]) and a pseudo-CUDA rendering for inspection.

pub mod cuda;
