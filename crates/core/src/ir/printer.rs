//! Textual form of the IR, mirroring the notation of the paper's Fig. 8/9.
//!
//! Used by golden tests and the `compiler_pipeline` example to show the IR
//! after each pass.

use super::{Block, EvIdx, EventRef, EventType, IdxExpr, IrProgram, OpKind, TensorRef};
use std::fmt::Write as _;

/// Render a whole program.
#[must_use]
pub fn print_program(p: &IrProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", p.name);
    for t in &p.tensors {
        let param = t.param.map(|i| format!(" param{i}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "  %t{} = tensor [{}x{} {}] @{}{}",
            t.id, t.rows, t.cols, t.dtype, t.mem, param
        );
    }
    for pt in &p.parts {
        let _ = writeln!(
            out,
            "  %p{} = partition %t{} {:?}",
            pt.id, pt.parent, pt.kind
        );
    }
    print_block(p, &p.body, 1, &mut out);
    out.push('}');
    out.push('\n');
    out
}

#[allow(clippy::only_used_in_recursion)]
fn print_block(p: &IrProgram, b: &Block, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for op in &b.ops {
        let ty = fmt_type(&op.ty);
        let pre = fmt_pre(&op.pre);
        match &op.kind {
            OpKind::Copy { src, dst } => {
                let _ = writeln!(
                    out,
                    "{pad}%e{}: {ty} = copy({}, {}), {pre}",
                    op.result,
                    fmt_ref(src),
                    fmt_ref(dst)
                );
            }
            OpKind::Call { f, args } => {
                let a: Vec<String> = args.iter().map(fmt_ref).collect();
                let _ = writeln!(
                    out,
                    "{pad}%e{}: {ty} = call({f:?}, {}), {pre}",
                    op.result,
                    a.join(", ")
                );
            }
            OpKind::For { var, extent, body } => {
                let _ = writeln!(
                    out,
                    "{pad}%e{}: {ty} = for i{var} in [0, {extent}), {pre} do",
                    op.result
                );
                print_block(p, body, indent + 1, out);
            }
            OpKind::Pfor {
                var,
                extent,
                proc,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}%e{}: {ty} = pfor i{var} in [0, {extent}) @{proc}, {pre} do",
                    op.result
                );
                print_block(p, body, indent + 1, out);
            }
        }
    }
}

fn fmt_type(t: &EventType) -> String {
    match t {
        EventType::Unit => "()".to_string(),
        EventType::Array(dims) => {
            let d: Vec<String> = dims.iter().map(|(n, p)| format!("({n}, {p})")).collect();
            format!("[{}]", d.join(", "))
        }
    }
}

fn fmt_pre(pre: &[EventRef]) -> String {
    let items: Vec<String> = pre.iter().map(fmt_event).collect();
    format!("{{{}}}", items.join(", "))
}

fn fmt_event(e: &EventRef) -> String {
    if e.idx.is_empty() {
        return format!("%e{}", e.event);
    }
    let idx: Vec<String> = e
        .idx
        .iter()
        .map(|i| match i {
            EvIdx::All => ":".to_string(),
            EvIdx::Var(v) => format!("i{v}"),
        })
        .collect();
    format!("%e{}[{}]", e.event, idx.join(", "))
}

fn fmt_idx(i: &IdxExpr) -> String {
    match (i.var, i.scale, i.offset) {
        (None, _, o) => format!("{o}"),
        (Some(v), 1, 0) => format!("i{v}"),
        (Some(v), s, 0) => format!("{s}*i{v}"),
        (Some(v), 1, o) => format!("i{v}+{o}"),
        (Some(v), s, o) => format!("{s}*i{v}+{o}"),
    }
}

fn fmt_ref(r: &TensorRef) -> String {
    let mut s = format!("%t{}", r.tensor);
    for (p, idx) in &r.path {
        let i: Vec<String> = idx.iter().map(fmt_idx).collect();
        let _ = write!(s, ".%p{}[{}]", p, i.join(", "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::machine::{MemLevel, ProcLevel};
    use cypress_tensor::DType;

    #[test]
    fn prints_fig8_like_shapes() {
        let mut p = IrProgram::new("clear");
        let c = p.add_tensor("C", 64, 64, DType::F16, MemLevel::None, None);
        let e0 = p.fresh_event();
        let v = p.fresh_var();
        let e1 = p.fresh_event();
        let body = Block {
            ops: vec![super::super::Op {
                result: e1,
                ty: EventType::Unit,
                pre: vec![],
                kind: OpKind::Call {
                    f: crate::front::ast::LeafFn::Fill(0.0),
                    args: vec![TensorRef::whole(c)],
                },
            }],
        };
        p.body.ops.push(super::super::Op {
            result: e0,
            ty: EventType::Array(vec![(4, ProcLevel::Warp)]),
            pre: vec![],
            kind: OpKind::Pfor {
                var: v,
                extent: 4,
                proc: ProcLevel::Warp,
                body,
            },
        });
        let s = print_program(&p);
        assert!(s.contains("pfor i0 in [0, 4) @WARP"), "{s}");
        assert!(s.contains("[(4, WARP)]"), "{s}");
        assert!(s.contains("call(Fill(0.0), %t0)"), "{s}");
    }
}
