//! Cypress's event-based intermediate representation (paper §4.1, Fig. 7).
//!
//! The IR is a tree of blocks containing *operations* — copies, leaf-task
//! calls, and sequential/parallel loops — linked by *events*. Every
//! potentially asynchronous operation produces an event; operations carry
//! precondition event sets. Parallel loops produce *event arrays* whose
//! dimensions are annotated with processor levels; indexing an array with a
//! variable expresses point-wise dependence, and broadcast indexing `[:]`
//! expresses synchronization of the whole processor dimension (§4.1).
//!
//! Events are an intermediate construct only: code generation lowers them
//! to hardware synchronization and no dynamic tracking survives (§4.2.6).

pub mod printer;

use crate::front::ast::LeafFn;
use crate::front::machine::{MemLevel, ProcLevel};
use cypress_tensor::DType;
use std::collections::HashMap;

/// Identifier of an event (SSA value).
pub type EventId = usize;
/// Identifier of a logical tensor allocation.
pub type TensorId = usize;
/// Identifier of a partition.
pub type PartId = usize;
/// Identifier of a loop variable.
pub type VarId = usize;

/// A logical tensor allocation in the IR.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDecl {
    /// Identifier.
    pub id: TensorId,
    /// Debug name.
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Element type.
    pub dtype: DType,
    /// Mapped memory. `None`-mapped tensors must be eliminated (§3.3)
    /// or, for promotable block-local tensors, given a shared-memory
    /// home by copy elimination.
    pub mem: MemLevel,
    /// `Some(i)` if this is the `i`-th kernel parameter.
    pub param: Option<usize>,
    /// Block-local tensor (from `make_tensor`) that may be materialized
    /// in shared memory when copy elimination cannot identify it with a
    /// single existing allocation — how fused kernels keep a producer
    /// phase's result on-chip for a consumer phase that re-tiles it.
    pub promotable: bool,
}

impl TensorDecl {
    /// Bytes this tensor would occupy if materialized.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.rows * self.cols * self.dtype.size_bytes()
    }
}

/// How a partition decomposes its parent (IR-level record of the paper's
/// two partitioning operators).
#[derive(Debug, Clone, PartialEq)]
pub enum PartKind {
    /// Tiling into `tile_rows × tile_cols` boxes over a `grid_rows ×
    /// grid_cols` grid.
    Blocks {
        /// Tile rows.
        tile_rows: usize,
        /// Tile columns.
        tile_cols: usize,
        /// Grid rows.
        grid_rows: usize,
        /// Grid columns.
        grid_cols: usize,
    },
    /// Tensor-Core-mandated partition: `pieces` views with shape
    /// `piece_rows × piece_cols`; `replicated` for the collective `B`
    /// operand.
    Mma {
        /// Number of pieces.
        pieces: usize,
        /// Rows of one piece.
        piece_rows: usize,
        /// Columns of one piece.
        piece_cols: usize,
        /// `true` if every piece aliases the whole parent (operand B).
        replicated: bool,
        /// Processor level of the pieces.
        level: ProcLevel,
    },
}

/// A partition declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PartDecl {
    /// Identifier.
    pub id: PartId,
    /// Debug name.
    pub name: String,
    /// Partitioned tensor.
    pub parent: TensorId,
    /// Decomposition.
    pub kind: PartKind,
}

impl PartDecl {
    /// Shape of one piece.
    #[must_use]
    pub fn piece_shape(&self) -> (usize, usize) {
        match &self.kind {
            PartKind::Blocks {
                tile_rows,
                tile_cols,
                ..
            } => (*tile_rows, *tile_cols),
            PartKind::Mma {
                piece_rows,
                piece_cols,
                ..
            } => (*piece_rows, *piece_cols),
        }
    }

    /// `true` if distinct pieces never overlap (writes cannot race).
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        match &self.kind {
            PartKind::Blocks { .. } => true,
            PartKind::Mma { replicated, .. } => !replicated,
        }
    }
}

/// An affine index `scale·var + offset` (var optional).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdxExpr {
    /// The variable, if any.
    pub var: Option<VarId>,
    /// Coefficient of the variable.
    pub scale: i64,
    /// Constant offset.
    pub offset: i64,
}

impl IdxExpr {
    /// A constant index.
    #[must_use]
    pub fn constant(v: i64) -> Self {
        IdxExpr {
            var: None,
            scale: 0,
            offset: v,
        }
    }

    /// A bare variable.
    #[must_use]
    pub fn var(v: VarId) -> Self {
        IdxExpr {
            var: Some(v),
            scale: 1,
            offset: 0,
        }
    }

    /// `true` if the index mentions `v`.
    #[must_use]
    pub fn uses(&self, v: VarId) -> bool {
        self.var == Some(v)
    }
}

/// Reference to a tensor or a (possibly nested) partition piece of it.
///
/// The `path` applies partitions successively: `%t0.%p1[i].%p2[j]` selects
/// piece `j` of partition `p2` *within* piece `i` of partition `p1` of the
/// base tensor. Nested paths arise when copy elimination forwards a child
/// task's fresh allocation into a piece of its parent (§4.2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRef {
    /// The referenced base tensor.
    pub tensor: TensorId,
    /// Successive partition selections, outermost first.
    pub path: Vec<(PartId, Vec<IdxExpr>)>,
}

impl TensorRef {
    /// Reference to the whole tensor.
    #[must_use]
    pub fn whole(tensor: TensorId) -> Self {
        TensorRef {
            tensor,
            path: Vec::new(),
        }
    }

    /// Reference to a single partition piece.
    #[must_use]
    pub fn piece(tensor: TensorId, part: PartId, idx: Vec<IdxExpr>) -> Self {
        TensorRef {
            tensor,
            path: vec![(part, idx)],
        }
    }

    /// Append a nested piece selection.
    #[must_use]
    pub fn then(mut self, part: PartId, idx: Vec<IdxExpr>) -> Self {
        self.path.push((part, idx));
        self
    }

    /// `true` if any piece index along the path mentions `v`.
    #[must_use]
    pub fn uses_var(&self, v: VarId) -> bool {
        self.path
            .iter()
            .any(|(_, idx)| idx.iter().any(|i| i.uses(v)))
    }
}

/// Event types (Fig. 7: `et`): unit or a processor-annotated array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventType {
    /// A single completion event.
    Unit,
    /// An array of events, one dimension per flattened parallel loop.
    Array(Vec<(usize, ProcLevel)>),
}

impl EventType {
    /// Promote by prepending a dimension (vectorization, §4.2.2).
    #[must_use]
    pub fn promoted(&self, extent: usize, proc: ProcLevel) -> EventType {
        match self {
            EventType::Unit => EventType::Array(vec![(extent, proc)]),
            EventType::Array(dims) => {
                let mut d = vec![(extent, proc)];
                d.extend(dims.iter().copied());
                EventType::Array(d)
            }
        }
    }
}

/// One index of an event-array reference (Fig. 7: `ei`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvIdx {
    /// Broadcast `[:]`: all events of the dimension must complete.
    All,
    /// Point-wise: the event of iteration/processor `var`.
    Var(VarId),
}

/// Reference to an event, possibly indexing an event array.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRef {
    /// The referenced event.
    pub event: EventId,
    /// One entry per array dimension (empty for unit events).
    pub idx: Vec<EvIdx>,
}

impl EventRef {
    /// Reference to a unit event.
    #[must_use]
    pub fn unit(event: EventId) -> Self {
        EventRef {
            event,
            idx: Vec::new(),
        }
    }

    /// `true` if every index is a broadcast.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        !self.idx.is_empty() && self.idx.iter().all(|i| matches!(i, EvIdx::All))
    }
}

/// Operation kinds (Fig. 7: `o`).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Explicit copy between tensors (`copy(src, dst)`).
    Copy {
        /// Source reference.
        src: TensorRef,
        /// Destination reference.
        dst: TensorRef,
    },
    /// Leaf-task invocation (`call(f, args)`); destination argument last.
    Call {
        /// External function.
        f: LeafFn,
        /// Arguments, destination last.
        args: Vec<TensorRef>,
    },
    /// Sequential loop.
    For {
        /// Loop variable.
        var: VarId,
        /// Trip count (concrete: sizes are known at compile time).
        extent: i64,
        /// Body.
        body: Block,
    },
    /// Parallel loop over processors at `proc`.
    Pfor {
        /// Loop variable.
        var: VarId,
        /// Extent.
        extent: i64,
        /// Processor level of the iterations.
        proc: ProcLevel,
        /// Body.
        body: Block,
    },
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// The completion event this operation produces.
    pub result: EventId,
    /// Type of the produced event.
    pub ty: EventType,
    /// Precondition events.
    pub pre: Vec<EventRef>,
    /// The operation.
    pub kind: OpKind,
}

/// A straight-line block of operations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Operations in program order.
    pub ops: Vec<Op>,
}

/// A complete IR program.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Program name.
    pub name: String,
    /// Tensor declarations, indexed by [`TensorId`].
    pub tensors: Vec<TensorDecl>,
    /// Partition declarations, indexed by [`PartId`].
    pub parts: Vec<PartDecl>,
    /// Top-level block (the entrypoint task's body).
    pub body: Block,
    /// Loop variables that became processor indices after vectorization.
    pub proc_vars: HashMap<VarId, ProcLevel>,
    /// Next fresh event id.
    pub next_event: usize,
    /// Next fresh variable id.
    pub next_var: usize,
}

impl IrProgram {
    /// An empty program.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        IrProgram {
            name: name.into(),
            tensors: Vec::new(),
            parts: Vec::new(),
            body: Block::default(),
            proc_vars: HashMap::new(),
            next_event: 0,
            next_var: 0,
        }
    }

    /// Allocate a fresh event id.
    pub fn fresh_event(&mut self) -> EventId {
        self.next_event += 1;
        self.next_event - 1
    }

    /// Allocate a fresh loop variable.
    pub fn fresh_var(&mut self) -> VarId {
        self.next_var += 1;
        self.next_var - 1
    }

    /// Declare a tensor.
    pub fn add_tensor(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        dtype: DType,
        mem: MemLevel,
        param: Option<usize>,
    ) -> TensorId {
        let id = self.tensors.len();
        self.tensors.push(TensorDecl {
            id,
            name: name.into(),
            rows,
            cols,
            dtype,
            mem,
            param,
            promotable: false,
        });
        id
    }

    /// Declare a partition.
    pub fn add_part(
        &mut self,
        name: impl Into<String>,
        parent: TensorId,
        kind: PartKind,
    ) -> PartId {
        let id = self.parts.len();
        self.parts.push(PartDecl {
            id,
            name: name.into(),
            parent,
            kind,
        });
        id
    }

    /// Count operations recursively (used by tests and pass statistics).
    #[must_use]
    pub fn op_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.ops
                .iter()
                .map(|o| match &o.kind {
                    OpKind::For { body, .. } | OpKind::Pfor { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Count copies recursively.
    #[must_use]
    pub fn copy_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.ops
                .iter()
                .map(|o| match &o.kind {
                    OpKind::Copy { .. } => 1,
                    OpKind::For { body, .. } | OpKind::Pfor { body, .. } => count(body),
                    _ => 0,
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_type_promotion() {
        let t = EventType::Unit.promoted(32, ProcLevel::Thread);
        assert_eq!(t, EventType::Array(vec![(32, ProcLevel::Thread)]));
        let t2 = t.promoted(4, ProcLevel::Warp);
        assert_eq!(
            t2,
            EventType::Array(vec![(4, ProcLevel::Warp), (32, ProcLevel::Thread)])
        );
    }

    #[test]
    fn idx_expr_uses() {
        assert!(IdxExpr::var(3).uses(3));
        assert!(!IdxExpr::var(3).uses(2));
        assert!(!IdxExpr::constant(5).uses(5));
    }

    #[test]
    fn tensor_ref_var_usage() {
        let r = TensorRef::piece(0, 0, vec![IdxExpr::constant(0), IdxExpr::var(7)]);
        assert!(r.uses_var(7));
        assert!(!r.uses_var(8));
        assert!(!TensorRef::whole(0).uses_var(7));
    }

    #[test]
    fn broadcast_detection() {
        let b = EventRef {
            event: 0,
            idx: vec![EvIdx::All, EvIdx::All],
        };
        assert!(b.is_broadcast());
        let p = EventRef {
            event: 0,
            idx: vec![EvIdx::Var(1)],
        };
        assert!(!p.is_broadcast());
        assert!(!EventRef::unit(0).is_broadcast());
    }

    #[test]
    fn program_counters() {
        let mut p = IrProgram::new("t");
        assert_eq!(p.fresh_event(), 0);
        assert_eq!(p.fresh_event(), 1);
        assert_eq!(p.fresh_var(), 0);
        let t = p.add_tensor("A", 4, 4, DType::F16, MemLevel::Global, Some(0));
        assert_eq!(t, 0);
        assert_eq!(p.tensors[t].size_bytes(), 32);
        assert_eq!(p.op_count(), 0);
    }
}
