//! The Cypress programming model and compiler.
//!
//! This crate reproduces the primary contribution of *Task-Based Tensor
//! Computations on Modern GPUs* (PLDI 2025): a task-based programming
//! model with sequential semantics for GPUs with asynchronous
//! fixed-function units, and a compiler that lowers task trees to
//! warp-specialized device code with all communication and synchronization
//! inferred.
//!
//! A Cypress program has two parts (§3):
//!
//! - the **logical description** ([`front::task`], [`front::ast`]): tasks
//!   over tensors with declared privileges, decomposed via `srange` /
//!   `prange` and the `blocks` / `mma` partitioning operators;
//! - the **mapping specification** ([`front::mapping`]): which variant
//!   runs at which processor level, where each tensor lives, tunable
//!   values, warp specialization and pipeline depth.
//!
//! [`compile::CypressCompiler`] runs the pass pipeline of Fig. 6 —
//! dependence analysis, vectorization, copy elimination, resource
//! allocation, warp specialization — and emits a [`cypress_sim::Kernel`]
//! plus pseudo-CUDA. [`kernels`] contains the evaluation programs (GEMM,
//! batched/dual GEMM, GEMM+reduction, FlashAttention-2/3).
//!
//! # Example
//!
//! ```
//! use cypress_core::kernels::gemm;
//! use cypress_core::compile::{CompilerOptions, CypressCompiler};
//! use cypress_sim::MachineConfig;
//!
//! let (registry, mapping, args) = gemm::build(256, 256, 128, &MachineConfig::test_gpu())?;
//! let compiler = CypressCompiler::new(CompilerOptions {
//!     machine: MachineConfig::test_gpu(),
//!     ..Default::default()
//! });
//! let compiled = compiler.compile(&registry, &mapping, "gemm", &args)?;
//! assert!(compiled.kernel.has_dma_warp());
//! # Ok::<(), cypress_core::CompileError>(())
//! ```

pub mod codegen;
pub mod compile;
pub mod error;
pub mod fingerprint;
pub mod front;
pub mod ir;
pub mod kernels;
pub mod passes;

pub use compile::{Compiled, CompilerOptions, CypressCompiler};
pub use error::CompileError;
pub use fingerprint::fingerprint;
pub use front::{
    ArgExpr, LeafFn, MappingSpec, MemLevel, ParamSig, Privilege, ProcLevel, SExpr, Stmt,
    TaskMapping, TaskRegistry, TaskVariant, VariantKind,
};
pub use kernels::cost::{CostEstimate, COST_MODEL_VERSION};
pub use kernels::space::{MappingConfig, MappingSpace, Shape};
pub use passes::depan::EntryArg;
