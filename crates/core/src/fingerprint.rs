//! Stable fingerprints of compiler inputs, for compiled-kernel caching.
//!
//! A fingerprint identifies everything that determines the output of
//! [`crate::compile::CypressCompiler::compile`]: the task registry, the
//! mapping specification, the entry task name, the entry argument shapes,
//! the target machine, and the compiler options that change codegen. Two
//! invocations with equal fingerprints produce the same [`cypress_sim::Kernel`],
//! so a runtime (see the `cypress-runtime` crate) can skip the Fig. 6 pass
//! pipeline entirely on a fingerprint match.
//!
//! The hash is FNV-1a over a canonical rendering of the inputs. Maps are
//! visited in sorted key order, so the value is independent of `HashMap`
//! iteration order (which differs between processes and instances); it is
//! deterministic for the lifetime of a build, which is the cache's domain.

use crate::front::mapping::MappingSpec;
use crate::front::task::TaskRegistry;
use crate::passes::depan::EntryArg;
use cypress_sim::MachineConfig;

/// A 64-bit FNV-1a accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh accumulator at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Fold `bytes` into the accumulator.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Fold a string (with a terminator so `"ab","c"` != `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xFF]);
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a full compiler invocation.
///
/// Covers `(registry, mapping, entry, entry_args, machine, spill_first)` —
/// the complete input of [`crate::compile::CypressCompiler::compile`] as far
/// as the produced kernel is concerned (`dump_ir` only adds diagnostics).
#[must_use]
pub fn fingerprint(
    registry: &TaskRegistry,
    mapping: &MappingSpec,
    entry: &str,
    entry_args: &[EntryArg],
    machine: &MachineConfig,
    spill_first: bool,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("cypress-fingerprint-v1");
    h.write_str(entry);
    h.write_str(&format!("spill_first={spill_first}"));

    // Machine: the Debug rendering covers every public field and contains
    // no maps, so it is canonical.
    h.write_str(&format!("{machine:?}"));

    for arg in entry_args {
        h.write_str(&format!(
            "arg {} {}x{} {:?}",
            arg.name, arg.rows, arg.cols, arg.dtype
        ));
    }

    // Registry: variants sorted by name. A variant's Debug rendering is
    // canonical (Vec- and enum-shaped all the way down).
    let mut variants: Vec<_> = registry.iter().collect();
    variants.sort_by(|a, b| a.name.cmp(&b.name));
    for v in variants {
        h.write_str(&format!("{v:?}"));
    }

    // Mapping: instances sorted by name, tunables sorted by key (the one
    // map-shaped field inside `TaskMapping`).
    let mut instances: Vec<_> = mapping.iter().collect();
    instances.sort_by(|a, b| a.instance.cmp(&b.instance));
    for m in instances {
        h.write_str(&format!(
            "inst {} variant {} proc {:?} mems {:?} calls {:?} ws {} pipe {} entry {}",
            m.instance,
            m.variant,
            m.proc,
            m.mems,
            m.calls,
            m.warpspecialize,
            m.pipeline,
            m.entrypoint
        ));
        let mut tunables: Vec<_> = m.tunables.iter().collect();
        tunables.sort();
        for (k, val) in tunables {
            h.write_str(&format!("tun {k}={val}"));
        }
    }
    h.write_str(&format!("smem_limit {:?}", mapping.smem_limit));

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm;

    #[test]
    fn equal_inputs_equal_fingerprints() {
        let machine = MachineConfig::test_gpu();
        let (r1, m1, a1) = gemm::build(128, 128, 64, &machine).unwrap();
        let (r2, m2, a2) = gemm::build(128, 128, 64, &machine).unwrap();
        // Separately-built registries/mappings hash identically even though
        // their HashMaps have different iteration orders.
        assert_eq!(
            fingerprint(&r1, &m1, "gemm", &a1, &machine, true),
            fingerprint(&r2, &m2, "gemm", &a2, &machine, true),
        );
    }

    #[test]
    fn different_inputs_differ() {
        let machine = MachineConfig::test_gpu();
        let (r, m, a) = gemm::build(128, 128, 64, &machine).unwrap();
        let base = fingerprint(&r, &m, "gemm", &a, &machine, true);
        let (r2, m2, a2) = gemm::build(128, 128, 128, &machine).unwrap();
        assert_ne!(base, fingerprint(&r2, &m2, "gemm", &a2, &machine, true));
        assert_ne!(base, fingerprint(&r, &m, "gemm", &a, &machine, false));
        assert_ne!(
            base,
            fingerprint(&r, &m, "gemm", &a, &MachineConfig::h100_sxm5(), true)
        );
        assert_ne!(base, fingerprint(&r, &m, "other", &a, &machine, true));
    }

    #[test]
    fn fused_kernels_fingerprint_stably_and_distinctly() {
        // Fused kernels need no fingerprint combinator: a fused program
        // is an ordinary `(registry, mapping, entry, args)` tuple, so
        // the existing fingerprint is stable across rebuilds and
        // distinct from the primitive kernels the fusion replaced —
        // exactly what the runtime's kernel cache keys on.
        use crate::kernels::{chain, reduction};
        let machine = MachineConfig::test_gpu();
        let (rc1, mc1, ac1) = chain::build(64, 64, 64, 64, &machine).unwrap();
        let (rc2, mc2, ac2) = chain::build(64, 64, 64, 64, &machine).unwrap();
        let fused = fingerprint(&rc1, &mc1, "chain", &ac1, &machine, true);
        assert_eq!(
            fused,
            fingerprint(&rc2, &mc2, "chain", &ac2, &machine, true),
            "rebuilt fused programs hit the same cache entry"
        );
        let (rg, mg, ag) = gemm::build(64, 64, 64, &machine).unwrap();
        assert_ne!(fused, fingerprint(&rg, &mg, "gemm", &ag, &machine, true));
        let (rr, mr, ar) = reduction::build(64, 64, &machine).unwrap();
        assert_ne!(fused, fingerprint(&rr, &mr, "reduce", &ar, &machine, true));
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_str("x");
        a.write_str("y");
        let mut b = Fnv64::new();
        b.write_str("y");
        b.write_str("x");
        assert_ne!(a.finish(), b.finish());
    }
}
