//! Functional correctness of the baseline kernels: each hand-scheduled
//! device program must compute the same results as the host oracles (they
//! share the simulator with the Cypress compiler's output, so this also
//! guards the comparison's fairness).

use cypress_baselines::hand::{attention_kernel, gemm_kernel, AttentionSchedule, GemmSchedule};
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_gemm_schedule(warpspec: bool) -> GemmSchedule {
    GemmSchedule {
        tm: 64,
        tn: 64,
        tk: 32,
        wgs: 1,
        pipe: 2,
        warpspec,
        dual: false,
        serialize_dual: !warpspec,
        reduction: false,
        smem_reduction: !warpspec,
    }
}

#[test]
fn expert_gemm_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let k = gemm_kernel("t", 1, 128, 64, 96, small_gemm_schedule(true));
    let mut rng = StdRng::seed_from_u64(31);
    let a = Tensor::random(DType::F16, &[128, 96], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[96, 64], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[128, 64]);
    let want = reference::matmul(&a, &b, DType::F16).unwrap();
    let run = Simulator::new(machine)
        .run_functional(&k, vec![c, a, b])
        .unwrap();
    assert!(run.params[0].relative_error(&want).unwrap() < 2e-2);
}

#[test]
fn bulk_sync_gemm_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let k = gemm_kernel("t", 1, 64, 64, 128, small_gemm_schedule(false));
    let mut rng = StdRng::seed_from_u64(32);
    let a = Tensor::random(DType::F16, &[64, 128], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[128, 64], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[64, 64]);
    let want = reference::matmul(&a, &b, DType::F16).unwrap();
    let run = Simulator::new(machine)
        .run_functional(&k, vec![c, a, b])
        .unwrap();
    assert!(run.params[0].relative_error(&want).unwrap() < 2e-2);
}

#[test]
fn dual_gemm_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let s = GemmSchedule {
        dual: true,
        ..small_gemm_schedule(true)
    };
    let k = gemm_kernel("t", 1, 64, 64, 64, s);
    let mut rng = StdRng::seed_from_u64(33);
    let a = Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7);
    let b1 = Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7);
    let b2 = Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7);
    let c = Tensor::zeros(DType::F16, &[64, 64]);
    let c1 = reference::matmul(&a, &b1, DType::F32).unwrap();
    let c2 = reference::matmul(&a, &b2, DType::F32).unwrap();
    let mut want = Tensor::zeros(DType::F16, &[64, 64]);
    for i in 0..64 * 64 {
        want.data_mut()[i] = DType::F16.quantize(c1.data()[i] + c2.data()[i]);
    }
    let run = Simulator::new(machine)
        .run_functional(&k, vec![c, a, b1, b2])
        .unwrap();
    assert!(run.params[0].relative_error(&want).unwrap() < 2e-2);
}

#[test]
fn gemm_reduction_matches_reference() {
    let machine = MachineConfig::test_gpu();
    let s = GemmSchedule {
        reduction: true,
        ..small_gemm_schedule(true)
    };
    let k = gemm_kernel("t", 1, 64, 64, 64, s);
    let mut rng = StdRng::seed_from_u64(34);
    let a = Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7);
    let b = Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7);
    let c = Tensor::zeros(DType::F16, &[64, 64]);
    let y = Tensor::zeros(DType::F16, &[64, 1]);
    let want_c = reference::matmul(&a, &b, DType::F16).unwrap();
    let want_y = reference::row_sum(&a, DType::F16).unwrap();
    let run = Simulator::new(machine)
        .run_functional(&k, vec![c, a, b, y])
        .unwrap();
    assert!(run.params[0].relative_error(&want_c).unwrap() < 2e-2);
    assert!(run.params[3].relative_error(&want_y).unwrap() < 2e-2);
}

fn attention_schedule(pingpong: bool, persistent: bool, bulk_sync: bool) -> AttentionSchedule {
    AttentionSchedule {
        br: 128,
        bc: 64,
        wgs: 2,
        pipe: 1,
        pingpong,
        persistent,
        bulk_sync,
    }
}

fn check_attention(s: AttentionSchedule, heads: usize, seq: usize, d: usize) {
    let machine = MachineConfig::test_gpu();
    let k = attention_kernel("t", heads, seq, d, machine.sms, s);
    let mut rng = StdRng::seed_from_u64(35);
    let rows = heads * seq;
    let q = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let kk = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let v = Tensor::random(DType::F16, &[rows, d], &mut rng, -1.0, 1.0);
    let o = Tensor::zeros(DType::F16, &[rows, d]);
    let run = Simulator::new(machine)
        .run_functional(&k, vec![o, q.clone(), kk.clone(), v.clone()])
        .unwrap();
    for h in 0..heads {
        let sl = |t: &Tensor| {
            Tensor::from_data(
                DType::F16,
                &[seq, d],
                t.data()[h * seq * d..(h + 1) * seq * d].to_vec(),
            )
            .unwrap()
        };
        let want = reference::attention(&sl(&q), &sl(&kk), &sl(&v), DType::F16).unwrap();
        let err = sl(&run.params[0]).relative_error(&want).unwrap();
        assert!(err < 3e-2, "head {h} relative error {err}");
    }
}

#[test]
fn warp_specialized_fa2_matches_reference() {
    check_attention(attention_schedule(false, false, false), 1, 256, 64);
}

#[test]
fn pingpong_fa3_matches_reference() {
    check_attention(attention_schedule(true, false, false), 1, 256, 64);
}

#[test]
fn persistent_fa3_matches_reference() {
    check_attention(attention_schedule(true, true, false), 2, 256, 64);
}

#[test]
fn bulk_sync_attention_matches_reference() {
    check_attention(attention_schedule(false, false, true), 1, 256, 64);
}
