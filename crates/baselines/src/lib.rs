//! Baseline comparators for the Cypress evaluation (paper §5).
//!
//! - [`cublas`]: expert hand-scheduled GEMM/batched-GEMM with tile
//!   autotuning, standing in for the closed-source vendor library;
//! - [`cudnn`]: expert fused attention (persistent, pingpong, autotuned);
//! - [`triton`]: a heuristic tile-level schedule with the behaviours the
//!   paper observed in Triton — `cp.async` instead of TMA, bulk-synchronous
//!   barriers, no load/compute overlap in fused bodies, shared-memory
//!   reduction accumulators;
//! - [`thunderkittens`]: hand-written warp-specialized FlashAttention-2;
//! - [`fa3`]: the reference FlashAttention-3 (pingpong + persistent).
//!
//! Every baseline produces a [`cypress_sim::Kernel`] executed by the same
//! simulator as the Cypress compiler's output, so comparisons isolate
//! *scheduling structure*, exactly as DESIGN.md §1 argues.

pub mod hand;

use cypress_sim::{Kernel, MachineConfig, Simulator};

/// Pick the fastest kernel among `candidates` by timing simulation —
/// the stand-in for a vendor library's autotuner.
///
/// Constructs one [`Simulator`] for the whole sweep; callers timing
/// many shapes should build the simulator once themselves and use
/// [`autotune_with`].
#[must_use]
pub fn autotune(machine: &MachineConfig, candidates: Vec<Kernel>) -> Kernel {
    autotune_with(&Simulator::new(machine.clone()), candidates)
}

/// [`autotune`] over a caller-owned [`Simulator`]: every candidate is
/// timed through the same simulator instance, so a sweep over many
/// shapes (or a bench loop) pays for simulator setup exactly once.
/// Ties in simulated cycles keep the earliest candidate, making the
/// winner deterministic in candidate order.
#[must_use]
pub fn autotune_with(sim: &Simulator, candidates: Vec<Kernel>) -> Kernel {
    candidates
        .into_iter()
        .filter_map(|k| {
            let t = sim.run_timing(&k).ok()?.cycles;
            Some((k, t))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one candidate must validate")
        .0
}

/// cuBLAS-class GEMM baselines.
pub mod cublas {
    use super::hand::{gemm_kernel, GemmSchedule};
    use cypress_sim::{Kernel, MachineConfig, Simulator};

    /// Autotuned FP16 GEMM.
    #[must_use]
    pub fn gemm(m: usize, n: usize, k: usize, machine: &MachineConfig) -> Kernel {
        gemm_with(m, n, k, &Simulator::new(machine.clone()))
    }

    /// [`gemm`] timed through a caller-owned simulator — a loop over
    /// many GEMM shapes shares one [`Simulator`] across all its
    /// autotuning sweeps.
    #[must_use]
    pub fn gemm_with(m: usize, n: usize, k: usize, sim: &Simulator) -> Kernel {
        let mut cands = Vec::new();
        for (tm, tn, wgs) in [
            (128, 256, 2),
            (256, 128, 2),
            (128, 128, 2),
            (128, 128, 1),
            (64, 256, 1),
        ] {
            if !m.is_multiple_of(tm) || !n.is_multiple_of(tn) {
                continue;
            }
            let s = GemmSchedule {
                tm,
                tn,
                wgs,
                ..GemmSchedule::expert()
            };
            cands.push(gemm_kernel("cublas_gemm", 1, m, n, k, s));
        }
        super::autotune_with(sim, cands)
    }

    /// Batched GEMM (fixed heuristic tile — the library covers many batch
    /// shapes with one kernel, which is why Cypress edges it out at the
    /// largest size in Fig. 13b).
    #[must_use]
    pub fn batched_gemm(l: usize, m: usize, n: usize, k: usize) -> Kernel {
        let s = GemmSchedule {
            tm: 128,
            tn: 128,
            ..GemmSchedule::expert()
        };
        gemm_kernel("cublas_batched", l, m, n, k, s)
    }
}

/// Triton-class baselines (§5.2's observed heuristics).
pub mod triton {
    use super::hand::{attention_kernel, gemm_kernel, AttentionSchedule, GemmSchedule};
    use cypress_sim::Kernel;

    /// Plain GEMM: bulk-synchronous, `cp.async`, `num_stages = 4`.
    #[must_use]
    pub fn gemm(m: usize, n: usize, k: usize) -> Kernel {
        gemm_kernel("triton_gemm", 1, m, n, k, GemmSchedule::triton())
    }

    /// Batched GEMM.
    #[must_use]
    pub fn batched_gemm(l: usize, m: usize, n: usize, k: usize) -> Kernel {
        gemm_kernel("triton_batched", l, m, n, k, GemmSchedule::triton())
    }

    /// Dual-GEMM: the B2 load is not overlapped with the first GEMM.
    #[must_use]
    pub fn dual_gemm(m: usize, n: usize, k: usize) -> Kernel {
        let s = GemmSchedule {
            dual: true,
            serialize_dual: true,
            pipe: 2,
            ..GemmSchedule::triton()
        };
        gemm_kernel("triton_dual", 1, m, n, k, s)
    }

    /// GEMM+Reduction: waits on the Tensor Core before reducing, keeps the
    /// accumulator in shared memory, and — the dominant cost — loses its
    /// software pipelining to the fused reduction (the loop-carried
    /// shared-memory accumulator defeats the `num_stages` pipeliner), so
    /// loads are exposed every iteration.
    #[must_use]
    pub fn gemm_reduction(m: usize, n: usize, k: usize) -> Kernel {
        let s = GemmSchedule {
            reduction: true,
            smem_reduction: true,
            pipe: 1,
            ..GemmSchedule::triton()
        };
        gemm_kernel("triton_gemm_red", 1, m, n, k, s)
    }

    /// FlashAttention-2, bulk-synchronous.
    #[must_use]
    pub fn attention(heads: usize, seq: usize, d: usize, sms: usize) -> Kernel {
        let s = AttentionSchedule {
            br: 128,
            bc: 128,
            wgs: 2,
            pipe: 2,
            pingpong: false,
            persistent: false,
            bulk_sync: true,
        };
        attention_kernel("triton_fa2", heads, seq, d, sms, s)
    }
}

/// ThunderKittens-class FlashAttention-2 (warp-specialized, hand-tuned).
pub mod thunderkittens {
    use super::hand::{attention_kernel, AttentionSchedule};
    use cypress_sim::Kernel;

    /// Warp-specialized FA2.
    #[must_use]
    pub fn attention(heads: usize, seq: usize, d: usize, sms: usize) -> Kernel {
        let s = AttentionSchedule {
            br: 128,
            bc: 128,
            wgs: 2,
            pipe: 2,
            pingpong: false,
            persistent: false,
            bulk_sync: false,
        };
        attention_kernel("tk_fa2", heads, seq, d, sms, s)
    }
}

/// Reference FlashAttention-3 (pingpong scheduling, persistent kernels).
pub mod fa3 {
    use super::hand::{attention_kernel, AttentionSchedule};
    use cypress_sim::Kernel;

    /// The reference FA3 kernel.
    #[must_use]
    pub fn attention(heads: usize, seq: usize, d: usize, sms: usize) -> Kernel {
        let s = AttentionSchedule {
            br: 128,
            bc: 64,
            wgs: 2,
            pipe: 2,
            pingpong: true,
            persistent: true,
            bulk_sync: false,
        };
        attention_kernel("fa3_ref", heads, seq, d, sms, s)
    }
}

/// cuDNN-class fused attention (autotuned expert kernel).
pub mod cudnn {
    use super::hand::{attention_kernel, AttentionSchedule};
    use cypress_sim::{Kernel, MachineConfig, Simulator};

    /// Autotuned fused attention.
    #[must_use]
    pub fn attention(heads: usize, seq: usize, d: usize, machine: &MachineConfig) -> Kernel {
        attention_with(heads, seq, d, &Simulator::new(machine.clone()))
    }

    /// [`attention`] timed through a caller-owned simulator — shares
    /// one [`Simulator`] across a sweep of attention shapes.
    #[must_use]
    pub fn attention_with(heads: usize, seq: usize, d: usize, sim: &Simulator) -> Kernel {
        let machine = sim.machine();
        let mut cands = Vec::new();
        for (bc, pingpong) in [(64, true), (128, true), (128, false)] {
            if !seq.is_multiple_of(2 * bc) {
                continue;
            }
            let s = AttentionSchedule {
                br: 128,
                bc,
                wgs: 2,
                pipe: 2,
                pingpong,
                persistent: true,
                bulk_sync: false,
            };
            cands.push(attention_kernel(
                "cudnn_attn",
                heads,
                seq,
                d,
                machine.sms,
                s,
            ));
        }
        super::autotune_with(sim, cands)
    }
}
